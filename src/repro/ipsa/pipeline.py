"""The elastic pipeline and its selector (paper Sec. 2.3).

All TSPs are chained; the selector picks which TSP feeds the TM
(ingress end) and which receives TM output (egress start), so the
ingress/egress split is a runtime configuration, not a silicon
property.  Bypassed TSPs are skipped and kept in a low-power state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.ipsa.tm import TrafficManager
from repro.ipsa.tsp import Tsp, TspState
from repro.net.packet import Packet
from repro.obs.trace import DropReason


class PipelineError(Exception):
    """Raised on inconsistent selector configuration."""


@dataclass
class SelectorConfig:
    """Which TSPs are active and where the TM boundary sits."""

    tm_input: Optional[int] = None  # last ingress TSP
    tm_output: Optional[int] = None  # first egress TSP
    active: Set[int] = field(default_factory=set)

    @classmethod
    def from_json(cls, data: dict) -> "SelectorConfig":
        return cls(
            tm_input=data.get("tm_input"),
            tm_output=data.get("tm_output"),
            active=set(data.get("active", [])),
        )

    def validate(self, n_tsps: int) -> None:
        for index in self.active:
            if not 0 <= index < n_tsps:
                raise PipelineError(f"active TSP {index} out of range")
        if (
            self.tm_input is not None
            and self.tm_output is not None
            and self.tm_input >= self.tm_output
        ):
            raise PipelineError(
                f"TM input {self.tm_input} must precede TM output {self.tm_output}"
            )


class ElasticPipeline:
    """The TSP chain + selector + TM."""

    def __init__(self, n_tsps: int = 8, tm: Optional[TrafficManager] = None) -> None:
        if n_tsps <= 0:
            raise ValueError("n_tsps must be positive")
        self.tsps = [Tsp(i) for i in range(n_tsps)]
        self.selector = SelectorConfig()
        self.tm = tm or TrafficManager()
        #: Invalidation callback (reason str) installed by the owning
        #: switch: template writes and selector moves must drop the
        #: device's compiled stage plans (repro.dp cache coherence).
        self.on_change = None

    def __len__(self) -> int:
        return len(self.tsps)

    def _changed(self, reason: str) -> None:
        callback = self.on_change
        if callback is not None:
            callback(reason)

    def configure_selector(self, selector: SelectorConfig) -> None:
        selector.validate(len(self.tsps))
        self.selector = selector
        for tsp in self.tsps:
            if tsp.index in selector.active and tsp.stages:
                tsp.state = TspState.ACTIVE
            else:
                tsp.state = TspState.BYPASSED
        self._changed("selector")

    def ingress_tsps(self) -> List[Tsp]:
        if self.selector.tm_input is None:
            return []
        return [
            t
            for t in self.tsps[: self.selector.tm_input + 1]
            if t.active and t.side == "ingress"
        ]

    def egress_tsps(self) -> List[Tsp]:
        if self.selector.tm_output is None:
            return []
        return [
            t
            for t in self.tsps[self.selector.tm_output :]
            if t.active and t.side == "egress"
        ]

    def active_tsps(self) -> List[Tsp]:
        return [t for t in self.tsps if t.active]

    def process_multi(self, packet: Packet, device, meter=None) -> List[Packet]:
        """Run one packet through ingress, the TM (with multicast
        replication), and egress.  Returns every surviving copy.

        Compatibility wrapper over the unified execution core
        (:mod:`repro.dp`); drop accounting matches the old in-pipeline
        behavior.  The switch front door calls the core directly.
        """
        from repro.dp.hooks import resolve_hooks

        core = device.dp
        tracer = getattr(device, "tracer", None)
        if tracer is not None and tracer.current is None:
            tracer = None
        outcome = core.process(packet, resolve_hooks(device), meter)
        for reason in outcome.copy_drops:
            self._note_drop(device, tracer, reason)
        if not outcome.outputs and not outcome.copy_drops:
            if outcome.drop_reason is not None:
                self._note_drop(device, tracer, outcome.drop_reason)
        return list(outcome.outputs)

    @staticmethod
    def _note_drop(device, tracer, reason: DropReason) -> None:
        note = getattr(device, "note_drop", None)
        if note is not None:
            note(reason)
        if tracer is not None:
            tracer.note_drop(reason)

    def process(self, packet: Packet, device, meter=None) -> Optional[Packet]:
        """Unicast view of :meth:`process_multi` (first surviving copy)."""
        outputs = self.process_multi(packet, device, meter)
        return outputs[0] if outputs else None

    def write_templates(self, templates: List[dict]) -> int:
        """Download templates into their TSPs; returns words written."""
        words = 0
        for template in templates:
            index = template["tsp"]
            if not 0 <= index < len(self.tsps):
                raise PipelineError(f"template targets unknown TSP {index}")
            words += self.tsps[index].write_template(template)
        if templates:
            self._changed("template_write")
        return words

"""IpsaSwitch: the complete ipbm behavioral device.

Consumes rp4bc's JSON outputs -- nothing else crosses the boundary:

* :meth:`load_config` performs the initial full load;
* :meth:`apply_update` performs an in-service update: drain the
  pipeline via back pressure, write the new TSP templates, patch the
  header linkage (``link_header``), create/recycle tables, and
  reconfigure the selector.  Existing table entries survive; only new
  tables need population -- the rP4 flow's key advantage in Table 1.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.compiler.lowering import action_from_json, builtin_actions, lower_table
from repro.dp import frontdoor
from repro.dp.core import IpsaCore
from repro.dp.frontdoor import PACKET_BYTES_BOUNDS, BatchResult, PortOut
from repro.ipsa.pipeline import ElasticPipeline, SelectorConfig
from repro.net.headers import FieldDef, HeaderType
from repro.net.linkage import HeaderLinkageTable
from repro.obs.clock import Clock
from repro.obs.metrics import MetricsRegistry, Sample
from repro.obs.prof import Profiler
from repro.obs.timeline import TimelineRecorder
from repro.obs.trace import DropReason, PacketTracer
from repro.tables.actions import ActionDef
from repro.tables.meters import MeterBank
from repro.tables.registers import ExternStore
from repro.tables.table import Table


class SwitchError(Exception):
    """Raised on malformed configuration."""


@dataclass
class UpdateStats:
    """What an in-service update cost."""

    drained_packets: int = 0  # in-flight packets *discarded* at drain
    completed_packets: int = 0  # in-flight packets finished on the old plan
    held_packets: int = 0  # waiting upstream during the stall
    templates_written: int = 0
    template_words: int = 0
    links_added: int = 0
    links_removed: int = 0
    tables_created: List[str] = field(default_factory=list)
    tables_removed: List[str] = field(default_factory=list)
    stall_seconds: float = 0.0
    epoch: int = 0  # dp plan epoch after the update (0 = in-place path)


# -- schema registration helpers ------------------------------------------
#
# Module-level so the transactional update path can build *shadow*
# header/linkage state from the same code the live load path uses.


def ensure_instance(header_types: Dict[str, HeaderType], linkage: HeaderLinkageTable, instance: str) -> None:
    """Resolve an instance name to a header type, aliasing
    ``inner_<type>`` instances onto their base type (the standard
    P4 idiom for encapsulated headers)."""
    if instance in header_types:
        return
    if instance.startswith("inner_"):
        base = instance[len("inner_") :]
        base_type = header_types.get(base)
        if base_type is not None:
            header_types[instance] = base_type
            selector = linkage.selector(base)
            if selector is not None:
                linkage.set_selector(instance, selector)
            return
    # Unknown instance: tolerated -- parsing simply stops there
    # until the type is loaded (matches the JIT parser contract).


def register_header(
    header_types: Dict[str, HeaderType],
    linkage: HeaderLinkageTable,
    name: str,
    spec: dict,
) -> None:
    """Install one header type (and its selector/links) into the given
    schema dictionaries -- live or shadow."""
    fields = [FieldDef(fname, width) for fname, width in spec["fields"]]
    varlen = spec.get("varlen")
    if varlen is not None:
        vname, count_field, unit = varlen

        def stack_bytes(values: dict, _count=count_field, _unit=unit) -> int:
            return int(values.get(_count, 0)) * _unit

        header_types[name] = HeaderType(
            name, fields, varlen_field=vname, varlen_bytes=stack_bytes
        )
    else:
        header_types[name] = HeaderType(name, fields)
    selector = spec.get("selector")
    if selector is not None:
        linkage.set_selector(name, selector)
    for tag, nxt in spec.get("links", []):
        ensure_instance(header_types, linkage, nxt)
        linkage.add_link(name, nxt, tag)


def table_from_spec(name: str, spec: dict) -> Table:
    """Lower one table spec to a :class:`Table` (shared by live create
    and shadow staging)."""
    if "keys" not in spec:
        raise SwitchError(f"table {name!r} spec carries no key layout")
    return lower_table(
        name,
        [tuple(k) for k in spec["keys"]],
        int(spec.get("size", spec.get("depth", 1024))),
        default_action=spec.get("default_action", "NoAction"),
    )


class IpsaSwitch:
    """The ipbm reference software switch."""

    def __init__(self, n_tsps: int = 8) -> None:
        self.pipeline = ElasticPipeline(n_tsps)
        self.header_types: Dict[str, HeaderType] = {}
        self.linkage = HeaderLinkageTable()
        self.actions: Dict[str, ActionDef] = builtin_actions()
        self.tables: Dict[str, Table] = {}
        self.metadata_defaults: Dict[str, int] = {}
        self.first_header = "ethernet"
        self.packets_in = 0
        self.packets_out = 0
        self.packets_dropped = 0
        self.punted = 0
        # Back-pressure machinery: while an update is in progress the
        # intake is paused and arriving packets wait upstream.
        self.rx_queue: "deque[Tuple[bytes, int]]" = deque()
        self.paused = False
        self.externs = ExternStore()
        self.meters = MeterBank()
        self.clock = 0  # logical time: one tick per injected packet
        # Observability: the registry is the canonical export surface
        # (collectors read the live counters above at collect time);
        # the tracer is opt-in and None on the hot path by default.
        self.drop_reasons: Dict[str, int] = {}
        self.tracer: Optional[PacketTracer] = None
        self.profiler: Optional[Profiler] = None
        # INT instrumentation: both stay None on the untelemetered hot
        # path.  ``int_clock`` stamps ingress/egress timestamps for
        # push_int; ``int_collector`` (duck-typed: observe_strip) is
        # fed by pop_int at sink nodes.
        self.int_clock: Optional[Clock] = None
        self.int_collector = None
        self.int_node: Optional[str] = None
        # Flight recorder: a device-bound handle (duck-typed: record)
        # hung here by HealthEngine.add_source.  Only control-plane
        # paths (txn abort/commit, rollback) write to it -- the packet
        # hot path never reads it.
        self.flight_recorder = None
        self.timelines = TimelineRecorder()
        self.metrics = MetricsRegistry()
        self._packet_bytes = self.metrics.histogram(
            "device.packet_bytes", PACKET_BYTES_BOUNDS
        )
        # The shared dataplane execution core: compiled stage plans,
        # invalidated whenever the pipeline or table set changes.
        self.dp = IpsaCore(self)
        self.dp.register_metrics(self.metrics)
        self.pipeline.on_change = self.dp.invalidate
        self._register_metrics()

    # -- observability -----------------------------------------------------

    def _register_metrics(self) -> None:
        metrics = self.metrics
        metrics.add_collector("device", self._device_samples)
        metrics.add_collector(
            "tsps",
            lambda: (
                s for tsp in self.pipeline.tsps for s in tsp.metrics_samples()
            ),
        )
        metrics.add_collector("tm", lambda: self.pipeline.tm.metrics_samples())
        metrics.add_collector(
            "tables",
            lambda: (
                s
                for table in list(self.tables.values())
                for s in table.metrics_samples()
            ),
        )
        metrics.add_collector("sketches", self._sketch_samples)
        metrics.add_collector("meters", lambda: self.meters.metrics_samples())

    def _device_samples(self):
        yield Sample("device.packets_in", self.packets_in)
        yield Sample("device.packets_out", self.packets_out)
        yield Sample("device.packets_dropped", self.packets_dropped)
        yield Sample("device.punted", self.punted)
        yield Sample("device.rx_queue_depth", len(self.rx_queue), {}, "gauge")
        yield Sample("device.active_tsps", self.active_tsp_count(), {}, "gauge")
        for reason, count in self.drop_reasons.items():
            yield Sample("device.drops", count, {"reason": reason})

    def _sketch_samples(self):
        for name, sketch in self.externs.sketches.items():
            labels = {"sketch": name}
            yield Sample("sketch.updates", sketch.updates, dict(labels))
            yield Sample("sketch.columns", sketch.columns, dict(labels), "gauge")
            yield Sample("sketch.rows", len(sketch.rows), dict(labels), "gauge")

    def note_drop(self, reason: DropReason) -> None:
        """Attribute one (copy-level) drop to a taxonomy reason."""
        key = reason.value
        self.drop_reasons[key] = self.drop_reasons.get(key, 0) + 1

    def enable_tracing(self, capacity: int = 256) -> PacketTracer:
        """Attach (and return) a per-packet tracer; idempotent."""
        if self.tracer is None:
            self.tracer = PacketTracer(capacity=capacity)
        return self.tracer

    def disable_tracing(self) -> Optional[PacketTracer]:
        """Detach the tracer (hot path returns to the untraced fast
        path); returns it so captured traces stay readable."""
        tracer, self.tracer = self.tracer, None
        return tracer

    def enable_profiling(self, clock: Optional[Clock] = None) -> Profiler:
        """Attach (and return) the wall-time profiler; idempotent."""
        if self.profiler is None:
            self.profiler = Profiler(clock=clock)
        return self.profiler

    def disable_profiling(self) -> Optional[Profiler]:
        """Detach the profiler (hot path returns to the unprofiled
        fast path); returns it so accumulated records stay readable."""
        profiler, self.profiler = self.profiler, None
        return profiler

    def enable_int(self, clock: Optional[Clock] = None) -> Clock:
        """Turn on INT timestamping: the front door stamps
        ``ingress_ts_ns`` on arrivals and ``push_int`` reads this clock
        for egress timestamps.  Idempotent."""
        if self.int_clock is None:
            from repro.obs.clock import MONOTONIC

            self.int_clock = clock if clock is not None else MONOTONIC
        return self.int_clock

    def disable_int(self) -> Optional[Clock]:
        """Turn INT timestamping off (hot path returns to the
        unstamped fast path); returns the detached clock."""
        clock, self.int_clock = self.int_clock, None
        return clock

    def attach_int_collector(self, collector, node: Optional[str] = None) -> None:
        """Attach a sink-side INT collector; ``pop_int`` reports each
        stripped hop stack to it (duck-typed: ``observe_strip``).
        ``node`` labels this device in the collector's records."""
        self.int_collector = collector
        self.int_node = node

    # -- configuration (the Control Channel Module) -----------------------

    def _register_header(self, name: str, spec: dict) -> None:
        register_header(self.header_types, self.linkage, name, spec)

    def _ensure_instance(self, instance: str) -> None:
        ensure_instance(self.header_types, self.linkage, instance)

    def load_config(self, config: dict) -> None:
        """Initial full load of an rp4bc device configuration."""
        self.header_types.clear()
        self.linkage = HeaderLinkageTable()
        self.actions = builtin_actions()
        self.tables.clear()
        for name, spec in config.get("headers", {}).items():
            self._register_header(name, spec)
        # Re-run link resolution now every type exists.
        for name, spec in config.get("headers", {}).items():
            for tag, nxt in spec.get("links", []):
                self._ensure_instance(nxt)
        self.metadata_defaults = {
            name: 0 for name, _width in config.get("metadata", [])
        }
        for name, spec in config.get("actions", {}).items():
            self.actions[name] = action_from_json(spec)
        for name, spec in config.get("tables", {}).items():
            self._create_table(name, spec)
        self.pipeline.write_templates(config.get("templates", []))
        self.pipeline.configure_selector(
            SelectorConfig.from_json(config.get("selector", {}))
        )
        self.dp.invalidate("load_config")

    def _create_table(self, name: str, spec: dict) -> None:
        self.tables[name] = table_from_spec(name, spec)
        self.dp.invalidate("tables")

    def set_table(self, name: str, table: Table) -> None:
        """Repoint a table name at a different :class:`Table` object.

        The compiled stage plans hold direct table references, so a
        repoint must invalidate them (counted under ``table_repoint``).
        """
        self.tables[name] = table
        self.dp.invalidate("table_repoint")

    # -- traffic ------------------------------------------------------------

    def inject(self, data: bytes, port: int = 0, meter=None) -> Optional[PortOut]:
        """Push one packet through the device."""
        return frontdoor.inject(self.dp, data, port, meter)

    def inject_multi(self, data: bytes, port: int = 0) -> List[PortOut]:
        """Like :meth:`inject`, but returns every copy a multicast
        group produced (unicast packets return a one-element list)."""
        return frontdoor.inject_multi(self.dp, data, port)

    def inject_batch(self, trace, meter=None) -> BatchResult:
        """Push a ``(data, port)`` trace through, amortizing the front
        door (see :func:`repro.dp.frontdoor.inject_batch`)."""
        return frontdoor.inject_batch(self.dp, trace, meter)

    # -- queued intake (back-pressure semantics) -----------------------------

    def enqueue(self, data: bytes, port: int = 0) -> None:
        """Queue a packet at the intake (processed by :meth:`pump`)."""
        self.rx_queue.append((data, port))

    def pump(self, limit: Optional[int] = None) -> List[PortOut]:
        """Process queued packets; a paused intake processes nothing.

        Returns the forwarded outputs (drops are counted, not returned).
        """
        outputs: List[PortOut] = []
        processed = 0
        while self.rx_queue and not self.paused:
            if limit is not None and processed >= limit:
                break
            data, port = self.rx_queue.popleft()
            out = self.inject(data, port)
            processed += 1
            if out is not None:
                outputs.append(out)
        return outputs

    # -- in-service update ---------------------------------------------------

    def drain(self) -> int:
        """Back-pressure drain: flush the TM so no packet is in flight.

        Packets in the rx queue stay there (they are *upstream* of the
        pipeline; back pressure makes them wait out the update).
        """
        return len(self.pipeline.tm.drain())

    def quiesce(self, plan=None) -> List[PortOut]:
        """Complete every in-flight TM packet through ``plan``'s
        egress stages (default: the current plan) and emit it, instead
        of discarding it.

        The transactional commit passes the *pre-flip* plan: packets
        that entered under the old epoch finish under the old plan --
        after the pointer swap, outside the stall window -- so the
        update loses no traffic.  Returns the emitted outputs.
        """
        from repro.dp.exec import run_tsp_plan
        from repro.dp.frontdoor import _emit_one
        from repro.dp.hooks import resolve_hooks

        plan = plan if plan is not None else self.dp.plan()
        hooks = resolve_hooks(self)
        tm = self.pipeline.tm
        outputs: List[PortOut] = []
        while True:
            queued = tm.dequeue()
            if queued is None:
                return outputs
            dropped = False
            for tsp_plan in plan.egress:
                run_tsp_plan(tsp_plan, queued, self, hooks)
                if queued.metadata.get("drop"):
                    self.note_drop(DropReason.EGRESS_ACTION)
                    dropped = True
                    break
            if not dropped:
                outputs.append(_emit_one(self.dp, hooks, None, queued))

    def begin_update(self, update: dict) -> "IpsaUpdateTransaction":
        """Open a prepare/validate/commit/abort transaction for an
        rp4bc UpdatePlan JSON (see :mod:`repro.runtime.txn`)."""
        from repro.runtime.txn import IpsaUpdateTransaction

        return IpsaUpdateTransaction(self, update)

    def apply_update(self, update: dict) -> UpdateStats:
        """In-service update from an rp4bc UpdatePlan JSON.

        Expected keys: ``templates`` (for rewritten TSPs only),
        ``selector``, ``link_headers`` [[pre, tag, next]],
        ``unlink_headers`` [[pre, tag]], ``new_actions`` {name: spec},
        ``new_tables`` {name: {keys, size}}, ``freed_tables`` [name].

        This is the transactional one-shot: shadow state is prepared
        and validated while old plans keep serving, then committed with
        a stall window covering only the pointer flip.  Any pre-commit
        failure aborts with zero live-state mutation and re-raises the
        original exception.  The pre-refactor stop-the-world path
        survives as :meth:`apply_update_inplace` (the bench baseline).
        """
        txn = self.begin_update(update)
        txn.prepare()
        txn.validate()
        return txn.commit()

    def apply_update_inplace(self, update: dict) -> UpdateStats:
        """The pre-transactional stop-the-world update: pause intake,
        drain (discarding in-flight packets), patch live state in
        place, recompile under the pause.  Kept as the bench harness's
        before/after baseline for the ``update_stall`` scenario."""
        stats = UpdateStats()
        timeline = self.timelines.begin("apply_update_inplace")

        self.paused = True  # back pressure: intake waits out the update
        stats.drained_packets = self.drain()
        stats.held_packets = len(self.rx_queue)
        timeline.phase(
            "drain",
            drained_packets=stats.drained_packets,
            held_packets=stats.held_packets,
        )

        # New metadata members get zero defaults so predicates can read
        # them before any action writes them.
        for name, _width in update.get("new_metadata", []):
            self.metadata_defaults.setdefault(name, 0)

        # New header types must exist before links can point at (or
        # out of) them -- the SRv6 script both loads `srh` and links it.
        for name, spec in update.get("new_headers", {}).items():
            self._register_header(name, spec)
        timeline.phase(
            "schema",
            new_metadata=len(update.get("new_metadata", [])),
            new_headers=len(update.get("new_headers", {})),
        )

        for pre, tag, nxt in update.get("link_headers", []):
            self._ensure_instance(nxt)
            self.linkage.add_link(pre, nxt, tag)
            stats.links_added += 1
        for pre, tag in update.get("unlink_headers", []):
            self.linkage.del_link(pre, tag)
            stats.links_removed += 1
        timeline.phase(
            "linkage",
            links_added=stats.links_added,
            links_removed=stats.links_removed,
        )

        new_actions = update.get("new_actions", {})
        for name, spec in new_actions.items():
            self.actions[name] = action_from_json(spec)
        if new_actions:
            self.dp.invalidate("actions")
        for name, spec in update.get("new_tables", {}).items():
            self._create_table(name, spec)
            stats.tables_created.append(name)
        freed = update.get("freed_tables", [])
        for name in freed:
            self.tables.pop(name, None)
            stats.tables_removed.append(name)
        if freed:
            self.dp.invalidate("tables")
        timeline.phase(
            "tables",
            new_actions=len(update.get("new_actions", {})),
            tables_created=list(stats.tables_created),
            tables_removed=list(stats.tables_removed),
        )

        templates = update.get("templates", [])
        stats.template_words = self.pipeline.write_templates(templates)
        stats.templates_written = len(templates)
        timeline.phase(
            "templates",
            templates_written=stats.templates_written,
            template_words=stats.template_words,
        )

        # Any TSP no longer referenced by the selector drops its stale
        # template and powers down.
        selector = SelectorConfig.from_json(update.get("selector", {}))
        for tsp in self.pipeline.tsps:
            if tsp.index not in selector.active and tsp.stages:
                tsp.clear()
        self.pipeline.configure_selector(selector)

        self.paused = False  # release back pressure
        timeline.phase("selector", active_tsps=len(selector.active))

        # Eagerly recompile the stage plans so the first post-update
        # packet pays no compile cost (and the stall time includes it).
        self.dp.plan()
        timeline.phase(
            "recompile",
            plan_generation=self.dp.generation,
            plan_compiles=self.dp.plan_compiles,
        )
        timeline.finish()
        stats.stall_seconds = timeline.total_seconds
        return stats

    # -- introspection ---------------------------------------------------------

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise KeyError(f"switch has no table {name!r}") from None

    def active_tsp_count(self) -> int:
        return len(self.pipeline.active_tsps())

"""The traffic manager sitting between ingress and egress (Sec. 2.3).

A behavioral TM: per-output-port FIFO queues with occupancy stats.
The selector decides *which* TSP feeds it and which TSP drains it;
the TM itself only buffers and schedules.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.net.packet import Packet
from repro.obs.metrics import Sample


@dataclass
class TmStats:
    enqueued: int = 0
    dequeued: int = 0
    dropped: int = 0
    max_occupancy: int = 0


class TrafficManager:
    """Per-port FIFOs with a shared buffer budget and multicast groups."""

    def __init__(self, buffer_packets: int = 4096) -> None:
        if buffer_packets <= 0:
            raise ValueError("buffer_packets must be positive")
        self.buffer_packets = buffer_packets
        self._queues: Dict[int, Deque[Packet]] = {}
        self._groups: Dict[int, List[int]] = {}
        self.stats = TmStats()

    # -- multicast group table ------------------------------------------

    def set_group(self, group_id: int, ports: List[int]) -> None:
        """Install (or replace) a multicast group's member ports."""
        if group_id <= 0:
            raise ValueError("multicast group ids must be positive")
        if not ports:
            raise ValueError(f"multicast group {group_id} needs members")
        self._groups[group_id] = list(ports)

    def del_group(self, group_id: int) -> None:
        try:
            del self._groups[group_id]
        except KeyError:
            raise KeyError(f"no multicast group {group_id}") from None

    def group(self, group_id: int) -> List[int]:
        return list(self._groups.get(group_id, []))

    def occupancy(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def metrics_samples(self):
        yield Sample("tm.enqueued", self.stats.enqueued, {}, "counter")
        yield Sample("tm.dequeued", self.stats.dequeued, {}, "counter")
        yield Sample("tm.dropped", self.stats.dropped, {}, "counter")
        yield Sample("tm.max_occupancy", self.stats.max_occupancy, {}, "gauge")
        yield Sample("tm.occupancy", self.occupancy(), {}, "gauge")
        for port, queue in sorted(self._queues.items()):
            yield Sample(
                "tm.queue_depth", len(queue), {"port": str(port)}, "gauge"
            )

    def account_passthrough(self, ports) -> None:
        """Bulk stats for the columnar batch path's unicast passthrough.

        At a batch boundary the TM is empty, so each survivor is one
        enqueue immediately followed by one dequeue: occupancy peaks
        at 1 and no packet ever rests in a queue.  This transcribes
        those stats (and materializes the per-port queues, so
        ``tm.queue_depth`` gauges appear exactly as they would have)
        without touching packet objects.
        """
        count = 0
        for port, n in ports:
            self._queues.setdefault(port, deque())
            count += n
        if count:
            self.stats.enqueued += count
            self.stats.dequeued += count
            self.stats.max_occupancy = max(self.stats.max_occupancy, 1)

    def enqueue(self, packet: Packet) -> bool:
        """Queue a packet toward its egress port; False if tail-dropped."""
        if self.occupancy() >= self.buffer_packets:
            self.stats.dropped += 1
            return False
        port = int(packet.metadata.get("egress_spec", 0))  # type: ignore[arg-type]
        self._queues.setdefault(port, deque()).append(packet)
        self.stats.enqueued += 1
        self.stats.max_occupancy = max(self.stats.max_occupancy, self.occupancy())
        return True

    def enqueue_or_replicate(self, packet: Packet) -> int:
        """Unicast enqueue, or per-member replication for multicast.

        A nonzero ``meta.mcast_grp`` selects a group; each member gets
        an independent clone with its ``egress_spec`` set (so egress
        stages can rewrite per copy).  Returns the number of packets
        queued (0 = dropped / unknown group).
        """
        group_id = int(packet.metadata.get("mcast_grp", 0))  # type: ignore[arg-type]
        if group_id == 0:
            return 1 if self.enqueue(packet) else 0
        members = self._groups.get(group_id)
        if not members:
            self.stats.dropped += 1
            return 0
        queued = 0
        for port in members:
            clone = packet.clone()
            clone.metadata["egress_spec"] = port
            clone.metadata["mcast_grp"] = 0
            if self.enqueue(clone):
                queued += 1
        return queued

    def dequeue(self) -> Optional[Packet]:
        """Round-robin service across ports."""
        for port in sorted(self._queues):
            queue = self._queues[port]
            if queue:
                self.stats.dequeued += 1
                return queue.popleft()
        return None

    def drain(self) -> List[Packet]:
        """Empty every queue (used by the update drain protocol)."""
        out: List[Packet] = []
        while True:
            packet = self.dequeue()
            if packet is None:
                return out
            out.append(packet)

"""Trace generators over the reference topology.

Every generator returns a list of ``(packet_bytes, ingress_port)``
pairs ready for ``switch.inject``.  Flow populations follow a Zipf
distribution (via numpy) to resemble real traffic skew.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.net.addresses import format_ipv4, parse_ipv4
from repro.programs.srv6 import LOCAL_SIDS
from repro.workloads.builders import ipv4_packet, ipv6_packet, srv6_packet

Trace = List[Tuple[bytes, int]]


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def _zipf_indices(rng: np.random.Generator, n: int, population: int, a: float) -> np.ndarray:
    raw = rng.zipf(a, size=n)
    return (raw - 1) % population


def mixed_l3_trace(
    n_packets: int = 1000,
    v4_ratio: float = 0.7,
    flows: int = 64,
    zipf_a: float = 1.3,
    seed: int = 7,
) -> Trace:
    """IPv4/IPv6 mix toward the two routed networks (the C1 workload
    shape: traffic that resolves through FIB -> nexthop/ECMP)."""
    if not 0.0 <= v4_ratio <= 1.0:
        raise ValueError("v4_ratio must be within [0, 1]")
    rng = _rng(seed)
    flow_ids = _zipf_indices(rng, n_packets, flows, zipf_a)
    v4_mask = rng.random(n_packets) < v4_ratio
    base_v4 = parse_ipv4("10.2.0.0")
    trace: Trace = []
    for i in range(n_packets):
        flow = int(flow_ids[i])
        port = flow % 2  # hosts live on ports 0-1
        sport = 1024 + flow
        if v4_mask[i]:
            dst = format_ipv4(base_v4 + 1 + flow)
            data = ipv4_packet("10.1.0.1", dst, sport=sport)
        else:
            dst = f"2001:db8:2::{flow + 1:x}"
            data = ipv6_packet("2001:db8:1::1", dst, sport=sport)
        trace.append((data, port))
    return trace


def ecmp_trace(
    n_packets: int = 1000, flows: int = 256, seed: int = 11
) -> Trace:
    """Many distinct flows to one network, to exercise ECMP spreading."""
    rng = _rng(seed)
    flow_ids = rng.integers(0, flows, size=n_packets)
    base = parse_ipv4("10.2.0.0")
    return [
        (
            ipv4_packet(
                "10.1.0.1",
                format_ipv4(base + 1 + int(flow)),
                sport=2048 + int(flow),
            ),
            0,
        )
        for flow in flow_ids
    ]


def srv6_trace(
    n_packets: int = 1000,
    endpoint_ratio: float = 0.5,
    seed: int = 13,
) -> Trace:
    """SRv6 traffic: a mix of packets visiting this node's SID
    (endpoint / End behavior) and SR transit traffic."""
    rng = _rng(seed)
    endpoint_mask = rng.random(n_packets) < endpoint_ratio
    trace: Trace = []
    for i in range(n_packets):
        if endpoint_mask[i]:
            # Active SID is ours; next segment routes to network 2.
            data = srv6_packet(
                src="2001:db8:9::1",
                active_sid=LOCAL_SIDS[0],
                segments=["2001:db8:2::1", LOCAL_SIDS[0]],
                segments_left=1,
            )
        else:
            # Transit: outer DA is a remote SID we only forward toward.
            data = srv6_packet(
                src="2001:db8:9::1",
                active_sid="2001:db8:1::77",
                segments=["2001:db8:2::1", "2001:db8:1::77"],
                segments_left=1,
            )
        trace.append((data, i % 2))
    return trace


def probe_trace(
    n_packets: int = 1000,
    probed_ratio: float = 0.3,
    seed: int = 17,
) -> Trace:
    """IPv4 traffic where a fraction belongs to the probed flow
    (10.1.0.1 -> 10.2.0.1), the rest to unprobed flows."""
    rng = _rng(seed)
    probed_mask = rng.random(n_packets) < probed_ratio
    trace: Trace = []
    for i in range(n_packets):
        if probed_mask[i]:
            data = ipv4_packet("10.1.0.1", "10.2.0.1", sport=5000)
        else:
            data = ipv4_packet("10.1.0.1", f"10.2.1.{(i % 250) + 1}", sport=6000 + (i % 100))
        trace.append((data, 0))
    return trace


def use_case_trace(case: str, n_packets: int = 1000, seed: int = 23) -> Trace:
    """The per-use-case workload used by the throughput benches."""
    if case == "C1":
        return ecmp_trace(n_packets, seed=seed)
    if case == "C2":
        return srv6_trace(n_packets, seed=seed)
    if case == "C3":
        return probe_trace(n_packets, seed=seed)
    raise ValueError(f"unknown use case {case!r} (expected C1/C2/C3)")

"""Workload generation: packet builders and trace generators.

The authors measured their FPGA prototype with a hardware traffic
generator; the behavioral reproduction replays synthetic traces built
here.  Addresses track the reference topology in
:mod:`repro.programs.base_l2l3` so every packet actually exercises the
FIB/nexthop/rewrite path rather than falling through to drops.
"""

from repro.workloads.builders import (
    ipv4_packet,
    ipv6_packet,
    l2_packet,
    srv6_packet,
)
from repro.workloads.traces import (
    ecmp_trace,
    mixed_l3_trace,
    probe_trace,
    srv6_trace,
    use_case_trace,
)


def replay(switch, trace, meter=None):
    """Replay a ``(data, port)`` trace through a switch's batch front
    door (:func:`repro.dp.frontdoor.inject_batch`).

    Returns the :class:`repro.dp.frontdoor.BatchResult`, one slot per
    packet -- equivalent to, but much cheaper than, N ``inject`` calls.
    """
    if meter is not None:
        return switch.inject_batch(trace, meter)
    return switch.inject_batch(trace)


__all__ = [
    "ecmp_trace",
    "ipv4_packet",
    "ipv6_packet",
    "l2_packet",
    "mixed_l3_trace",
    "probe_trace",
    "replay",
    "srv6_packet",
    "srv6_trace",
    "use_case_trace",
]

"""Workload generation: packet builders and trace generators.

The authors measured their FPGA prototype with a hardware traffic
generator; the behavioral reproduction replays synthetic traces built
here.  Addresses track the reference topology in
:mod:`repro.programs.base_l2l3` so every packet actually exercises the
FIB/nexthop/rewrite path rather than falling through to drops.
"""

from repro.workloads.builders import (
    ipv4_packet,
    ipv6_packet,
    l2_packet,
    srv6_packet,
)
try:
    from repro.workloads.traces import (
        ecmp_trace,
        mixed_l3_trace,
        probe_trace,
        srv6_trace,
        use_case_trace,
    )
except ImportError:  # pragma: no cover - exercised on no-NumPy CI legs
    # Flow populations are drawn from numpy's Zipf sampler, so the
    # trace generators need it; the packet builders (and the scalar
    # dataplane they feed) must keep working without it.
    def _needs_numpy(*_args, **_kwargs):
        raise ImportError(
            "repro.workloads trace generators require numpy (Zipf flow "
            "sampling); the packet builders work without it"
        )

    ecmp_trace = mixed_l3_trace = _needs_numpy
    probe_trace = srv6_trace = use_case_trace = _needs_numpy


def replay(switch, trace, meter=None):
    """Replay a ``(data, port)`` trace through a switch's batch front
    door (:func:`repro.dp.frontdoor.inject_batch`).

    Returns the :class:`repro.dp.frontdoor.BatchResult`, one slot per
    packet -- equivalent to, but much cheaper than, N ``inject`` calls.
    """
    if meter is not None:
        return switch.inject_batch(trace, meter)
    return switch.inject_batch(trace)


__all__ = [
    "ecmp_trace",
    "ipv4_packet",
    "ipv6_packet",
    "l2_packet",
    "mixed_l3_trace",
    "probe_trace",
    "replay",
    "srv6_packet",
    "srv6_trace",
    "use_case_trace",
]

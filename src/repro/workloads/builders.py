"""Bit-correct packet builders (Ethernet / IPv4 / IPv6 / SRv6 / L4)."""

from __future__ import annotations

from typing import Sequence, Union

from repro.net.addresses import parse_ipv4, parse_ipv6, parse_mac
from repro.net.checksum import ipv4_header_checksum
from repro.programs.base_l2l3 import ROUTER_MAC

IPPROTO_TCP = 6
IPPROTO_UDP = 17
IPPROTO_IPV6 = 41
IPPROTO_ROUTING = 43


def _mac(value: Union[str, int]) -> bytes:
    if isinstance(value, str):
        value = parse_mac(value)
    return value.to_bytes(6, "big")


def _v4(value: Union[str, int]) -> int:
    return parse_ipv4(value) if isinstance(value, str) else value


def _v6(value: Union[str, int]) -> int:
    return parse_ipv6(value) if isinstance(value, str) else value


def _udp(sport: int, dport: int, payload: bytes) -> bytes:
    return (
        sport.to_bytes(2, "big")
        + dport.to_bytes(2, "big")
        + (8 + len(payload)).to_bytes(2, "big")
        + b"\x00\x00"
        + payload
    )


def _tcp(sport: int, dport: int, payload: bytes) -> bytes:
    header = (
        sport.to_bytes(2, "big")
        + dport.to_bytes(2, "big")
        + (0).to_bytes(4, "big")
        + (0).to_bytes(4, "big")
        + bytes([5 << 4, 0x02])  # data offset 5, SYN
        + (0xFFFF).to_bytes(2, "big")
        + b"\x00\x00"
        + b"\x00\x00"
    )
    return header + payload


def _ethernet(dst_mac, src_mac, ethertype: int) -> bytes:
    return _mac(dst_mac) + _mac(src_mac) + ethertype.to_bytes(2, "big")


def _ipv4_header(src: int, dst: int, payload_len: int, proto: int, ttl: int) -> bytes:
    header = bytearray(20)
    header[0] = 0x45
    total = 20 + payload_len
    header[2:4] = total.to_bytes(2, "big")
    header[8] = ttl
    header[9] = proto
    header[12:16] = src.to_bytes(4, "big")
    header[16:20] = dst.to_bytes(4, "big")
    checksum = ipv4_header_checksum(bytes(header))
    header[10:12] = checksum.to_bytes(2, "big")
    return bytes(header)


def _ipv6_header(
    src: int, dst: int, payload_len: int, next_hdr: int, hop_limit: int
) -> bytes:
    return (
        bytes([0x60, 0, 0, 0])
        + payload_len.to_bytes(2, "big")
        + bytes([next_hdr, hop_limit])
        + src.to_bytes(16, "big")
        + dst.to_bytes(16, "big")
    )


def ipv4_packet(
    src: Union[str, int],
    dst: Union[str, int],
    sport: int = 1234,
    dport: int = 80,
    proto: str = "udp",
    ttl: int = 64,
    dst_mac: Union[str, int] = ROUTER_MAC,
    src_mac: Union[str, int] = "02:00:00:0a:00:01",
    payload: bytes = b"",
) -> bytes:
    """A routable IPv4 packet aimed at the router MAC by default."""
    l4 = _udp(sport, dport, payload) if proto == "udp" else _tcp(sport, dport, payload)
    ip_proto = IPPROTO_UDP if proto == "udp" else IPPROTO_TCP
    ip = _ipv4_header(_v4(src), _v4(dst), len(l4), ip_proto, ttl)
    return _ethernet(dst_mac, src_mac, 0x0800) + ip + l4


def ipv6_packet(
    src: Union[str, int],
    dst: Union[str, int],
    sport: int = 1234,
    dport: int = 80,
    proto: str = "udp",
    hop_limit: int = 64,
    dst_mac: Union[str, int] = ROUTER_MAC,
    src_mac: Union[str, int] = "02:00:00:0a:00:01",
    payload: bytes = b"",
) -> bytes:
    """A routable IPv6 packet aimed at the router MAC by default."""
    l4 = _udp(sport, dport, payload) if proto == "udp" else _tcp(sport, dport, payload)
    next_hdr = IPPROTO_UDP if proto == "udp" else IPPROTO_TCP
    ip = _ipv6_header(_v6(src), _v6(dst), len(l4), next_hdr, hop_limit)
    return _ethernet(dst_mac, src_mac, 0x86DD) + ip + l4


def l2_packet(
    dst_mac: Union[str, int],
    src_mac: Union[str, int] = "02:00:00:0a:00:09",
    payload_dst: str = "10.99.0.1",
) -> bytes:
    """A bridged (non-router-MAC) IPv4 packet for the L2 path."""
    return ipv4_packet(
        "10.99.0.2", payload_dst, dst_mac=dst_mac, src_mac=src_mac
    )


def srv6_packet(
    src: Union[str, int],
    active_sid: Union[str, int],
    segments: Sequence[Union[str, int]],
    segments_left: int = 1,
    inner_dst: Union[str, int] = "2001:db8:2::99",
    inner_src: Union[str, int] = "2001:db8:1::1",
    dst_mac: Union[str, int] = ROUTER_MAC,
    src_mac: Union[str, int] = "02:00:00:0a:00:01",
    payload: bytes = b"",
) -> bytes:
    """An IPv6-in-SRv6 packet with a two-entry segment list.

    The outer destination is ``active_sid`` (the SID currently being
    visited); ``segments`` is the full list with ``segments[0]`` the
    final segment (RFC 8754 reversed order).
    """
    if len(segments) != 2:
        raise ValueError("the behavioral SRH layout carries exactly 2 segments")
    l4 = _udp(40000, 80, payload)
    inner = _ipv6_header(
        _v6(inner_src), _v6(inner_dst), len(l4), IPPROTO_UDP, 64
    ) + l4
    seg_bytes = b"".join(_v6(s).to_bytes(16, "big") for s in segments)
    srh = (
        bytes(
            [
                IPPROTO_IPV6,  # next header: inner IPv6
                4,  # hdr_ext_len: 2 segments * 2
                4,  # routing type: SRH
                segments_left,
                1,  # last entry
                0,  # flags
            ]
        )
        + b"\x00\x00"  # tag
        + seg_bytes
    )
    outer = _ipv6_header(
        _v6(src), _v6(active_sid), len(srh) + len(inner), IPPROTO_ROUTING, 64
    )
    return _ethernet(dst_mac, src_mac, 0x86DD) + outer + srh + inner

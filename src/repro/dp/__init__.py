"""repro.dp: the shared dataplane execution core.

Used by both :class:`repro.ipsa.switch.IpsaSwitch` and
:class:`repro.pisa.switch.PisaSwitch`:

* :mod:`repro.dp.plan`      -- commit-time compiled stage plans
* :mod:`repro.dp.core`      -- per-device plan cache + invalidation
* :mod:`repro.dp.exec`      -- the single parameterized execution loop
* :mod:`repro.dp.hooks`     -- no-op / tracing / profiling instrumentation
* :mod:`repro.dp.frontdoor` -- shared inject / inject_multi / inject_batch
"""

from repro.dp.core import DataplaneCore, IpsaCore, PisaCore
from repro.dp.exec import PipelineOutcome, run_flow, run_ipsa_pipeline, run_tsp_plan
from repro.dp.frontdoor import (
    BatchResult,
    PortOut,
    inject,
    inject_batch,
    inject_multi,
)
from repro.dp.hooks import (
    NULL_HOOKS,
    ExecHooks,
    ProfileHooks,
    TraceHooks,
    resolve_hooks,
)
from repro.dp.plan import (
    ApplyStep,
    CompiledArm,
    IfStep,
    IpsaPlan,
    PisaPlan,
    StagePlan,
    TspPlan,
    compile_ipsa_plan,
    compile_pisa_plan,
)

__all__ = [
    "ApplyStep",
    "BatchResult",
    "CompiledArm",
    "DataplaneCore",
    "ExecHooks",
    "IfStep",
    "IpsaCore",
    "IpsaPlan",
    "NULL_HOOKS",
    "PipelineOutcome",
    "PisaCore",
    "PisaPlan",
    "PortOut",
    "ProfileHooks",
    "StagePlan",
    "TraceHooks",
    "TspPlan",
    "compile_ipsa_plan",
    "compile_pisa_plan",
    "inject",
    "inject_batch",
    "inject_multi",
    "resolve_hooks",
    "run_flow",
    "run_ipsa_pipeline",
    "run_tsp_plan",
]

"""The shared front door: inject / inject_multi / inject_batch.

Both switches used to hand-maintain the same preamble (counters,
clock, size histogram, tracer begin, metadata defaults) and epilogue
(drop accounting, PortOut construction, punt/emit trace outcome).
That lives here once, parameterized by the device's
:class:`~repro.dp.core.DataplaneCore`.

:func:`inject_batch` is the amortized path: hooks and the compiled
plan resolve once per batch, the per-packet tracer checks disappear
when tracing is off, and each packet's metadata is one dict copy of
the device's merged defaults template.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.dp.core import DataplaneCore
from repro.dp.exec import PipelineOutcome
from repro.dp.hooks import NULL_HOOKS, ProfileHooks, resolve_hooks
from repro.net.packet import Packet
from repro.obs.trace import DropReason

#: Packet-size histogram edges (bytes): the classic wire ladder.
PACKET_BYTES_BOUNDS = (64, 128, 256, 512, 1024, 1518)


@dataclass
class PortOut:
    """One packet leaving a device."""

    port: int
    data: bytes
    to_cpu: bool = False


class BatchResult:
    """Outcome of :func:`inject_batch`: one slot per injected packet.

    ``outputs[i]`` is the :class:`PortOut` for packet ``i``, or
    ``None`` if it was dropped -- so a batch is position-for-position
    comparable with N individual :func:`inject` calls.
    """

    __slots__ = ("outputs",)

    def __init__(self, outputs: List[Optional[PortOut]]) -> None:
        self.outputs = outputs

    @property
    def forwarded(self) -> int:
        return sum(1 for out in self.outputs if out is not None)

    @property
    def dropped(self) -> int:
        return sum(1 for out in self.outputs if out is None)

    def __len__(self) -> int:
        return len(self.outputs)

    def __iter__(self):
        return iter(self.outputs)

    def __getitem__(self, index):
        return self.outputs[index]


def _ingest(core: DataplaneCore, data: bytes, port: int) -> Packet:
    """Shared preamble: counters, clock, histogram, tracer begin."""
    device = core.device
    device.packets_in += 1
    device.clock += 1
    device._packet_bytes.observe(len(data))
    if device.profiler is not None:
        device.profiler.packets += 1
    tracer = device.tracer
    if tracer is not None:
        tracer.begin(clock=device.clock, port=port, length=len(data))
    packet = core.new_packet(data, port)
    int_clock = getattr(device, "int_clock", None)
    if int_clock is not None:
        packet.metadata["ingress_ts_ns"] = int(int_clock.now() * 1e9)
    return packet


def _account_drops(device, tracer, outcome: PipelineOutcome) -> None:
    """Per-reason drop counters + trace annotation (first reason wins).

    Every individually dropped egress copy counts once; a packet that
    produced no output at all additionally resolves its overall reason
    (``UNKNOWN`` only when the pipeline truly reported none).
    """
    for reason in outcome.copy_drops:
        device.note_drop(reason)
        if tracer is not None:
            tracer.note_drop(reason)
    if not outcome.outputs:
        device.packets_dropped += 1
        if not outcome.copy_drops:
            device.note_drop(outcome.drop_reason or DropReason.UNKNOWN)
        if tracer is not None:
            tracer.note_drop(outcome.drop_reason or DropReason.UNKNOWN)
            tracer.end("drop")


def _emit_one(core, hooks, tracer, packet) -> PortOut:
    device = core.device
    out = PortOut(
        port=int(packet.metadata.get("egress_spec", 0)),  # type: ignore[arg-type]
        data=core.serialize(packet, hooks),
        to_cpu=bool(packet.metadata.get("to_cpu")),
    )
    device.packets_out += 1
    if out.to_cpu:
        device.punted += 1
    if tracer is not None:
        tracer.note_egress(out.port)
    return out


def finish_unicast(core, hooks, tracer, outcome) -> Optional[PortOut]:
    """Epilogue for ``inject``: first surviving copy or ``None``."""
    _account_drops(core.device, tracer, outcome)
    if not outcome.outputs:
        return None
    out = _emit_one(core, hooks, tracer, outcome.outputs[0])
    if tracer is not None:
        tracer.end("punt" if out.to_cpu else "emit")
    return out


def finish_multi(core, hooks, tracer, outcome) -> List[PortOut]:
    """Epilogue for ``inject_multi``: every surviving copy."""
    _account_drops(core.device, tracer, outcome)
    if not outcome.outputs:
        return []
    outs = [
        _emit_one(core, hooks, tracer, packet) for packet in outcome.outputs
    ]
    if tracer is not None:
        tracer.end("multicast" if len(outs) > 1 else "emit", copies=len(outs))
    return outs


def inject(core: DataplaneCore, data: bytes, port: int = 0, meter=None):
    """Push one packet through the device (unicast view)."""
    packet = _ingest(core, data, port)
    hooks = resolve_hooks(core.device)
    outcome = core.process(packet, hooks, meter)
    return finish_unicast(core, hooks, core.device.tracer, outcome)


def inject_multi(core: DataplaneCore, data: bytes, port: int = 0):
    """Push one packet through; return every multicast copy."""
    packet = _ingest(core, data, port)
    hooks = resolve_hooks(core.device)
    outcome = core.process(packet, hooks, None)
    return finish_multi(core, hooks, core.device.tracer, outcome)


def inject_batch(
    core: DataplaneCore,
    trace: Iterable[Tuple[bytes, int]],
    meter=None,
) -> BatchResult:
    """Push a ``(data, port)`` trace through, amortizing the front door.

    Equivalent packet-for-packet to N :func:`inject` calls.  With a
    tracer attached each packet still gets its own trace (begin/end
    must bracket each packet), so the batch simply loops ``inject``;
    otherwise hooks, plan, metadata template, and serializer resolve
    once for the whole batch.
    """
    device = core.device
    outputs: List[Optional[PortOut]] = []
    if device.tracer is not None:
        for data, port in trace:
            outputs.append(inject(core, data, port, meter))
        return BatchResult(outputs)

    core.plan()  # compile outside the per-packet loop
    profiler = device.profiler
    int_clock = getattr(device, "int_clock", None)
    # Columnar fast path: homogeneous runs execute vectorized, with
    # per-packet fallback for divergent packets.  Instrumented runs
    # (profiler / meter / INT clock) stay on the scalar loop, whose
    # hook points the instruments were written against.
    if (
        core.columnar_enabled
        and meter is None
        and profiler is None
        and int_clock is None
    ):
        from repro.dp import columnar

        items = trace if isinstance(trace, list) else list(trace)
        columnar_outputs = columnar.try_run_batch(core, items)
        if columnar_outputs is not None:
            return BatchResult(columnar_outputs)
        trace = items
    hooks = NULL_HOOKS if profiler is None else ProfileHooks(profiler)
    first_header = core.first_header()
    template = core.metadata_template
    observe = device._packet_bytes.observe
    process = core.process
    for data, port in trace:
        device.packets_in += 1
        device.clock += 1
        observe(len(data))
        if profiler is not None:
            profiler.packets += 1
        metadata = dict(template)
        metadata["ingress_port"] = port
        metadata["packet_length"] = len(data)
        if int_clock is not None:
            metadata["ingress_ts_ns"] = int(int_clock.now() * 1e9)
        packet = Packet(data, first_header=first_header, metadata=metadata)
        outcome = process(packet, hooks, meter)
        outputs.append(finish_unicast(core, hooks, None, outcome))
    return BatchResult(outputs)

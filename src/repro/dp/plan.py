"""Compiled stage plans: specialize the dataplane at commit time.

The paper's runtime-programmability story is that a TSP is reprogrammed
by *writing template parameters*, not by recompiling -- which means
everything the per-packet loop needs can be resolved the moment a
template commits (or a PISA design loads) instead of once per packet:

* table names      -> :class:`~repro.tables.table.Table` object refs
* executor tags    -> ``(action name, ActionDef)`` pairs
* matcher arms     -> prebound predicate closures
* parser clauses   -> a precomputed parse list
* selector state   -> the ingress/egress TSP schedules themselves

The compiled artifacts live in :class:`repro.dp.core.DataplaneCore`'s
plan cache and are invalidated -- cache-coherence style -- by exactly
the runtime events that can change them: template writes, selector
reconfiguration, table create/free/repoint, and full (re)loads.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.compiler.lowering import compile_predicate
from repro.lang.expr import SApply, SIf


class CompiledArm:
    """One matcher arm, ready to fire: predicate + resolved table."""

    __slots__ = ("index", "predicate", "expr", "table_name", "table")

    def __init__(self, index, predicate, table_name, table, expr=None) -> None:
        self.index = index
        self.predicate = predicate
        #: Source predicate Expr (``None`` for an always-true arm);
        #: the columnar compiler re-lowers it to a vector kernel.
        self.expr = expr
        #: ``None`` marks an empty arm (explicit no-op on match).
        self.table_name: Optional[str] = table_name
        #: Resolved at compile time; ``None`` with a non-None name
        #: means the device has no such table -- the executor then
        #: raises the same ``KeyError`` the per-packet dict lookup did.
        self.table = table


class StagePlan:
    """One hosted stage: parse set, arms, tag->action executor map."""

    __slots__ = ("name", "parse_list", "arms", "tag_actions", "default_pair")

    def __init__(self, name, parse_list, arms, tag_actions, default_pair):
        self.name = name
        self.parse_list: List[str] = parse_list
        self.arms: Tuple[CompiledArm, ...] = arms
        #: executor tag -> (action name, ActionDef or None)
        self.tag_actions: Dict[object, tuple] = tag_actions
        self.default_pair: tuple = default_pair


class TspPlan:
    """One TSP's compiled stages plus its live stats sink."""

    __slots__ = ("index", "side", "label", "stats", "stages")

    def __init__(self, index, side, label, stats, stages):
        self.index = index
        self.side = side
        self.label = label
        self.stats = stats
        self.stages: Tuple[StagePlan, ...] = stages


class IpsaPlan:
    """The whole device schedule: ingress TSPs, then TM, then egress."""

    __slots__ = ("ingress", "egress")

    def __init__(self, ingress, egress):
        self.ingress: Tuple[TspPlan, ...] = ingress
        self.egress: Tuple[TspPlan, ...] = egress


def _resolve_pair(name: str, actions: dict) -> tuple:
    return (name, actions.get(name))


def compile_stage(stage, device) -> StagePlan:
    """A :class:`~repro.ipsa.tsp.StageRuntime` -> executable plan."""
    arms = []
    for index, (predicate, expr, table_name) in enumerate(stage.arms):
        table = None if table_name is None else device.tables.get(table_name)
        arms.append(CompiledArm(index, predicate, table_name, table, expr))
    actions = device.actions
    tag_actions = {
        tag: _resolve_pair(name, actions)
        for tag, name in stage.executor.items()
    }
    default_name = stage.executor.get("default", "NoAction")
    return StagePlan(
        name=stage.name,
        parse_list=list(stage.parser_headers),
        arms=tuple(arms),
        tag_actions=tag_actions,
        default_pair=_resolve_pair(default_name, actions),
    )


def compile_tsp(tsp, device) -> TspPlan:
    return TspPlan(
        index=tsp.index,
        side=tsp.side,
        label=f"tsp{tsp.index}",
        stats=tsp.stats,
        stages=tuple(compile_stage(stage, device) for stage in tsp.stages),
    )


def compile_ipsa_plan(device) -> IpsaPlan:
    """Compile the selector's current TSP schedule for an IpsaSwitch."""
    pipeline = device.pipeline
    return IpsaPlan(
        ingress=tuple(compile_tsp(t, device) for t in pipeline.ingress_tsps()),
        egress=tuple(compile_tsp(t, device) for t in pipeline.egress_tsps()),
    )


# -- PISA ----------------------------------------------------------------


class ApplyStep:
    """One compiled ``apply(table)``: resolved table + actions dict."""

    __slots__ = ("table_name", "table", "actions")

    def __init__(self, table_name, table, actions):
        self.table_name = table_name
        self.table = table
        self.actions = actions


class IfStep:
    """One compiled conditional: closure predicate + compiled branches."""

    __slots__ = ("predicate", "cond", "then_steps", "else_steps")

    def __init__(self, predicate, then_steps, else_steps, cond=None):
        self.predicate = predicate
        #: Source condition Expr, kept for the columnar compiler.
        self.cond = cond
        self.then_steps = then_steps
        self.else_steps = else_steps


class PisaPlan:
    """Compiled ingress/egress control flows."""

    __slots__ = ("ingress", "egress")

    def __init__(self, ingress, egress):
        self.ingress: Tuple[object, ...] = ingress
        self.egress: Tuple[object, ...] = egress


def compile_flow(flow, tables, actions) -> tuple:
    """HLIR flow statements -> a tuple of executable steps."""
    steps = []
    for stmt in flow:
        if isinstance(stmt, SApply):
            steps.append(
                ApplyStep(stmt.table, tables.get(stmt.table), actions)
            )
        elif isinstance(stmt, SIf):
            steps.append(
                IfStep(
                    compile_predicate(stmt.cond),
                    compile_flow(stmt.then_body, tables, actions),
                    compile_flow(stmt.else_body, tables, actions),
                    cond=stmt.cond,
                )
            )
        else:
            raise TypeError(f"unsupported flow statement {stmt!r}")
    return tuple(steps)


# -- identity ------------------------------------------------------------


def describe_plan(plan) -> tuple:
    """A structural description of a compiled plan (nested tuples).

    Object identities (table/action refs) are reduced to ``id()`` so
    two descriptions compare equal exactly when the plans resolve the
    same stages against the same live objects -- which is what the
    transaction abort tests assert ("compiled plans unchanged").
    """
    if isinstance(plan, IpsaPlan):
        return (
            "ipsa",
            tuple(_describe_tsp(t) for t in plan.ingress),
            tuple(_describe_tsp(t) for t in plan.egress),
        )
    if isinstance(plan, PisaPlan):
        return (
            "pisa",
            _describe_flow(plan.ingress),
            _describe_flow(plan.egress),
        )
    raise TypeError(f"not a compiled plan: {plan!r}")


def plan_fingerprint(plan) -> str:
    """A stable hex digest of :func:`describe_plan`."""
    import hashlib

    return hashlib.sha1(repr(describe_plan(plan)).encode()).hexdigest()


def _describe_tsp(tsp: TspPlan) -> tuple:
    return (
        tsp.index,
        tsp.side,
        tuple(
            (
                stage.name,
                tuple(stage.parse_list),
                tuple(
                    (arm.index, arm.table_name, id(arm.table))
                    for arm in stage.arms
                ),
                tuple(
                    (tag, name, id(action))
                    for tag, (name, action) in sorted(
                        stage.tag_actions.items(), key=lambda kv: str(kv[0])
                    )
                ),
                (stage.default_pair[0], id(stage.default_pair[1])),
            )
            for stage in tsp.stages
        ),
    )


def _describe_flow(steps) -> tuple:
    out = []
    for step in steps:
        if isinstance(step, ApplyStep):
            out.append(("apply", step.table_name, id(step.table)))
        elif isinstance(step, IfStep):
            out.append(
                (
                    "if",
                    _describe_flow(step.then_steps),
                    _describe_flow(step.else_steps),
                )
            )
        else:
            out.append(("?", repr(step)))
    return tuple(out)


def compile_pisa_plan(device) -> PisaPlan:
    pipeline = device.pipeline
    hlir = pipeline.hlir
    return PisaPlan(
        ingress=compile_flow(
            hlir.ingress_flow, pipeline.tables, pipeline.actions
        ),
        egress=compile_flow(
            hlir.egress_flow, pipeline.tables, pipeline.actions
        ),
    )

"""Per-device dataplane cores: plan cache + architecture specifics.

A core owns three things for its device:

* the **compiled plan cache** -- compiled lazily on first use, counted
  in ``dp.plan_compiles``, and dropped by :meth:`invalidate` whenever
  a runtime event could change what the plan resolved (template write,
  selector reconfig, table create/free/repoint, schema change, full
  load).  Each invalidation bumps a generation counter and a
  per-reason ``dp.plan_invalidations`` metric;
* the **merged metadata template** -- the device's metadata defaults
  folded under the intrinsic fields once, so the front door builds a
  packet's metadata with a single dict copy;
* the **architecture binding** -- how one packet traverses the device
  (:meth:`process`) and how a surviving copy serializes
  (:meth:`serialize`), shared by ``inject``/``inject_multi``/
  ``inject_batch``.
"""

from __future__ import annotations

from typing import Dict

from repro.dp.exec import (
    PipelineOutcome,
    run_flow,
    run_ipsa_pipeline,
)
from repro.dp.plan import compile_ipsa_plan, compile_pisa_plan
from repro.net.packet import INTRINSIC_METADATA, Packet
from repro.obs.metrics import MetricsRegistry, Sample
from repro.obs.trace import DropReason


class DataplaneCore:
    """Base core: plan cache, invalidation metrics, metadata template."""

    def __init__(self, device) -> None:
        self.device = device
        self.generation = 0
        #: Epoch pointer: bumped only by :meth:`flip` (a transactional
        #: commit installing a pre-compiled shadow plan).  Invalidation
        #: bumps the generation but never the epoch.
        self.epoch = 0
        self.plan_compiles = 0
        self.plan_invalidations: Dict[str, int] = {}
        self.plan_flips: Dict[str, int] = {}
        self._plan = None
        #: Columnar fast path: the batch front door may vectorize
        #: homogeneous runs when this is on (and NumPy is available).
        #: The compiled columnar program is cached keyed on the scalar
        #: plan *object*, so every invalidate/flip that replaces the
        #: scalar plan implicitly retires the columnar one with it --
        #: same per-reason invalidation and RCU epoch semantics, no
        #: second cache protocol.
        self.columnar_enabled = True
        self._columnar = None  # (scalar plan object, ColumnarProgram)
        self.metadata_template: Dict[str, object] = dict(INTRINSIC_METADATA)

    # -- observability -------------------------------------------------

    def register_metrics(self, metrics: MetricsRegistry) -> None:
        metrics.add_collector("dp", self.metrics_samples)

    def metrics_samples(self):
        yield Sample("dp.plan_compiles", self.plan_compiles)
        yield Sample("dp.plan_generation", self.generation, {}, "gauge")
        yield Sample("dp.plan_epoch", self.epoch, {}, "gauge")
        for reason, count in self.plan_invalidations.items():
            yield Sample("dp.plan_invalidations", count, {"reason": reason})
        for reason, count in self.plan_flips.items():
            yield Sample("dp.plan_flips", count, {"reason": reason})

    # -- plan cache ----------------------------------------------------

    def invalidate(self, reason: str = "update") -> None:
        """Drop the compiled plan (it re-compiles on next use)."""
        self._plan = None
        self.generation += 1
        self.plan_invalidations[reason] = (
            self.plan_invalidations.get(reason, 0) + 1
        )
        self.rebuild_metadata_template()

    def plan(self):
        """The compiled plan, compiling (and counting) if stale."""
        plan = self._plan
        if plan is None:
            plan = self._plan = self._compile()
            self.plan_compiles += 1
        return plan

    # -- epoch-keyed double buffering ----------------------------------

    def compile_shadow(self, view):
        """Compile a plan against a *shadow device view* without
        touching the live cache.

        The view duck-types whatever the architecture's compiler reads
        (``pipeline``/``tables``/``actions`` for IPSA; ``pipeline``/
        ``parser`` for PISA).  Transactions use this to pay the full
        compile cost while old plans keep serving traffic.
        """
        plan = self._compile(view)
        self.plan_compiles += 1
        return plan

    def flip(self, plan, reason: str = "txn_commit") -> int:
        """Atomically install a pre-compiled plan as the live one.

        This is the transactional commit's only touch on the plan
        cache: the epoch pointer advances, the generation moves with
        it (so generation-watchers see the change), and the metadata
        template is re-merged from the (already swapped) device state.
        No invalidation is recorded -- the cache never goes cold.
        """
        self._plan = plan
        self.epoch += 1
        self.generation += 1
        self.plan_flips[reason] = self.plan_flips.get(reason, 0) + 1
        self.rebuild_metadata_template()
        return self.epoch

    def rebuild_metadata_template(self) -> None:
        """Re-merge device metadata defaults under the intrinsics."""
        merged = dict(self.device.metadata_defaults)
        merged.update(INTRINSIC_METADATA)
        self.metadata_template = merged

    # -- front-door helpers -------------------------------------------

    def new_packet(self, data: bytes, port: int) -> Packet:
        metadata = dict(self.metadata_template)
        metadata["ingress_port"] = port
        metadata["packet_length"] = len(data)
        return Packet(data, first_header=self.first_header(), metadata=metadata)

    # -- architecture binding (subclass responsibilities) --------------

    def _compile(self, device=None):
        raise NotImplementedError

    def first_header(self) -> str:
        raise NotImplementedError

    def process(self, packet, hooks, meter=None) -> PipelineOutcome:
        raise NotImplementedError

    def serialize(self, packet, hooks) -> bytes:
        raise NotImplementedError


class IpsaCore(DataplaneCore):
    """IPSA binding: elastic TSP pipeline + TM, emit-in-flight."""

    def _compile(self, device=None):
        return compile_ipsa_plan(device if device is not None else self.device)

    def first_header(self) -> str:
        return self.device.first_header

    def process(self, packet, hooks, meter=None) -> PipelineOutcome:
        return run_ipsa_pipeline(self.plan(), packet, self.device, hooks, meter)

    def serialize(self, packet, hooks) -> bytes:
        # IPSA maintains the full header stack in flight: no deparser.
        return packet.emit()


class PisaCore(DataplaneCore):
    """PISA binding: front parser, fixed flows, explicit deparser."""

    def _compile(self, device=None):
        return compile_pisa_plan(device if device is not None else self.device)

    def first_header(self) -> str:
        return self.device.parser.first_header

    def process(self, packet, hooks, meter=None) -> PipelineOutcome:
        device = self.device
        plan = self.plan()
        hooks.front_parse(device.parser, packet)
        stats = device.pipeline.stats
        stats.packets += 1
        run_flow(plan.ingress, packet, device, hooks, stats)
        if packet.metadata.get("drop"):
            return PipelineOutcome((), DropReason.INGRESS_ACTION)
        run_flow(plan.egress, packet, device, hooks, stats)
        if packet.metadata.get("drop"):
            return PipelineOutcome((), DropReason.EGRESS_ACTION)
        return PipelineOutcome((packet,))

    def serialize(self, packet, hooks) -> bytes:
        return hooks.deparse(self.device.deparser, packet)

"""The single dataplane execution loop.

Exactly one copy of the stage-loop semantics exists here; what used to
be the plain/traced/profiled triplets in ``ipsa/tsp.py`` and
``pisa/pipeline.py`` is now a hook parameter (:mod:`repro.dp.hooks`).
The loops run over *compiled plans* (:mod:`repro.dp.plan`): every
table, action, and predicate reference was resolved when the template
committed, so the per-packet cost is the semantics and nothing else.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.dp.plan import ApplyStep
from repro.obs.trace import DropReason


class PipelineOutcome:
    """What the pipeline did with one injected packet.

    ``outputs`` are the surviving packet copies (one for unicast, many
    for multicast).  ``drop_reason`` is set when NO copy survived;
    ``copy_drops`` carries one reason per individually dropped egress
    copy (a multicast packet can lose copies and still forward).  The
    front door turns these into device counters and trace annotations
    -- the pipeline itself no longer reaches into the device, which is
    what lets the switch record the *real* reason instead of the old
    ``DropReason.UNKNOWN`` fallback.
    """

    __slots__ = ("outputs", "drop_reason", "copy_drops")

    def __init__(
        self,
        outputs: Tuple,
        drop_reason: Optional[DropReason] = None,
        copy_drops: Tuple[DropReason, ...] = (),
    ) -> None:
        self.outputs = outputs
        self.drop_reason = drop_reason
        self.copy_drops = copy_drops


def run_tsp_plan(plan, packet, device, hooks, meter=None) -> None:
    """Run one compiled TSP's hosted stages against the packet.

    ``meter`` (if given) receives per-TSP parse/lookup events; the
    hardware throughput model uses it to price cycles without
    duplicating the execution semantics.
    """
    stats = plan.stats
    stats.packets += 1
    metadata = packet.metadata
    ctx = hooks.unit_begin(plan)
    try:
        for stage in plan.stages:
            if metadata.get("drop"):
                return
            parsed = hooks.parse(plan, stage, packet, device)
            if parsed:
                stats.headers_parsed += parsed
                if meter is not None:
                    meter.parsed(plan.index, parsed)
            for arm in stage.arms:
                if not arm.predicate(packet):
                    continue
                if arm.table_name is None:
                    hooks.empty_arm(plan, stage, arm)
                    break  # empty arm: explicit no-op
                table = arm.table
                if table is None:
                    # Unresolved at compile time: fail exactly like the
                    # old per-packet dict lookup did.
                    table = device.tables[arm.table_name]
                result = hooks.match(plan, stage, arm, table, packet)
                stats.lookups += 1
                if meter is not None:
                    meter.lookup(plan.index, arm.table_name)
                pair = stage.tag_actions.get(result.tag)
                if pair is None:
                    pair = stage.default_pair
                name, action = pair
                if action is None:
                    action = device.actions[name]
                hooks.execute(
                    plan, stage, name, action, packet, result, device
                )
                stats.actions_run += 1
                break  # first matching arm wins
    finally:
        hooks.unit_end(ctx, plan)


def run_ipsa_pipeline(plan, packet, device, hooks, meter=None) -> PipelineOutcome:
    """Ingress TSPs -> traffic manager -> egress TSPs (per copy)."""
    metadata = packet.metadata
    for tsp_plan in plan.ingress:
        run_tsp_plan(tsp_plan, packet, device, hooks, meter)
        if metadata.get("drop"):
            return PipelineOutcome((), DropReason.INGRESS_ACTION)
    tm = device.pipeline.tm
    queued_count = hooks.tm_enqueue(tm, packet)
    if queued_count == 0:
        group_id = int(metadata.get("mcast_grp", 0))  # type: ignore[arg-type]
        if group_id and not tm.group(group_id):
            return PipelineOutcome((), DropReason.MCAST_UNKNOWN_GROUP)
        return PipelineOutcome((), DropReason.TM_TAIL_DROP)
    outputs: List = []
    copy_drops: List[DropReason] = []
    for _ in range(queued_count):
        queued = hooks.tm_dequeue(tm)
        assert queued is not None
        dropped = False
        for tsp_plan in plan.egress:
            run_tsp_plan(tsp_plan, queued, device, hooks, meter)
            if queued.metadata.get("drop"):
                copy_drops.append(DropReason.EGRESS_ACTION)
                dropped = True
                break
        if not dropped:
            outputs.append(queued)
    reason = DropReason.EGRESS_ACTION if copy_drops and not outputs else None
    return PipelineOutcome(tuple(outputs), reason, tuple(copy_drops))


def run_flow(steps, packet, device, hooks, stats) -> None:
    """Run one compiled PISA control flow (ingress or egress)."""
    metadata = packet.metadata
    for step in steps:
        if metadata.get("drop"):
            return
        if step.__class__ is ApplyStep:
            ctx = hooks.apply_begin(step)
            try:
                table = step.table
                if table is None:
                    table = device.pipeline.tables[step.table_name]
                result = hooks.pisa_match(step, table, packet)
                stats.lookups += 1
                action = step.actions.get(result.action)
                if action is None:
                    raise KeyError(
                        f"table {step.table_name!r} selected unknown action "
                        f"{result.action!r}"
                    )
                hooks.pisa_execute(
                    step, result.action, action, packet, result, device
                )
                stats.actions_run += 1
            finally:
                hooks.apply_end(ctx, step)
        else:
            branch = (
                step.then_steps
                if step.predicate(packet)
                else step.else_steps
            )
            run_flow(branch, packet, device, hooks, stats)

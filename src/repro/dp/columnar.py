"""Columnar batch dataplane: the vectorized parse/match/execute path.

The scalar loop pays Python dispatch per packet per stage; a trace of
mostly-identical packets repeats the same parse decisions, predicate
evaluations, and table probes thousands of times.  This module runs
:func:`repro.dp.frontdoor.inject_batch` input column-wise instead:

1. **Classify** -- walk the parse graph over the whole batch at once
   (selector fields extracted as NumPy columns) and partition rows by
   *parse-set signature*: the exact header chain a packet would parse.
2. **Compile** -- per signature, lower the device's compiled scalar
   plan into vector kernels: predicates and action expressions become
   uint64 broadcast ops, table lookups become batched probes against
   the engines' packed-record indexes
   (:meth:`repro.tables.table.Table.lookup_batch`).
3. **Execute** -- run every stage once per batch with row masks for
   drop/divergence, scatter dirty fields back into the byte matrix,
   and emit survivors.

Anything the kernels cannot express -- variable-length headers (the
INT shim, SRH), externs, ternary/range engines, arithmetic that could
overflow 64 bits -- *peels*: those rows fall back to the scalar
per-packet loop, at their original batch positions, so a mixed batch
is byte-for-byte identical to N ``inject`` calls.

Cache coherence rides on the scalar plan cache: the compiled columnar
program is keyed on the scalar plan **object** (see
``DataplaneCore._columnar``), so every invalidate/flip retires it
with the plan it lowered -- batches are therefore plan-atomic, and a
transactional epoch flip lands exactly at a batch boundary.

NumPy is optional: without it (or with ``REPRO_FORCE_NO_NUMPY=1``)
the front door silently keeps the scalar loop.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

try:  # pragma: no cover - exercised via REPRO_FORCE_NO_NUMPY in CI
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from repro.lang import expr as lang
from repro.net.fields import mask_to_width
from repro.obs.trace import DropReason
from repro.tables import actions as act

NUMPY_HINT = (
    "the columnar batch dataplane requires numpy>=1.24 (declared in "
    "pyproject.toml); it is not importable here, so inject_batch "
    "automatically falls back to the scalar per-packet loop. Install "
    "numpy to enable the vectorized fast path."
)

#: Primitive names with a vector kernel; everything else peels.
_VECTOR_PRIMS = ("drop", "mark_to_cpu", "no_op", "decrement_ttl")

_MISSING = object()
_NEVER = object()  # arm predicate that is constant-false for the signature


def _numpy():
    """The NumPy module, or ``None`` (absent / explicitly disabled)."""
    if os.environ.get("REPRO_FORCE_NO_NUMPY") == "1":
        return None
    return _np


def require_numpy():
    """Raise a descriptive ImportError when the columnar path is
    requested explicitly but NumPy is unavailable."""
    np = _numpy()
    if np is None:
        raise ImportError(NUMPY_HINT)
    return np


class _Ineligible(Exception):
    """Internal: this signature cannot run columnar (peel to scalar)."""


# --------------------------------------------------------------------------
# Field recipes: (extract, scatter, width) per header field
# --------------------------------------------------------------------------


def _make_recipe(np, start_bit: int, width: int):
    """Vector extract/scatter closures for one fixed-offset field.

    ``None`` when the field cannot be handled as one uint64 column
    (spans more than 8 bytes) or one (hi, lo) pair (width 128, byte
    aligned) -- users of such fields peel.
    """
    if width <= 64:
        b0 = start_bit // 8
        b1 = (start_bit + width - 1) // 8
        nbytes = b1 - b0 + 1
        if nbytes > 8:
            return None
        shift_right = (b1 + 1) * 8 - (start_bit + width)
        sr = np.uint64(shift_right)
        mask = np.uint64((1 << width) - 1)
        span_bits = nbytes * 8
        clear = np.uint64(
            ((1 << span_bits) - 1) ^ (((1 << width) - 1) << shift_right)
        )
        eight = np.uint64(8)

        def extract(mat):
            acc = mat[:, b0].astype(np.uint64)
            for b in range(b0 + 1, b1 + 1):
                acc = (acc << eight) | mat[:, b]
            return (acc >> sr) & mask

        def scatter(mat, values, rows):
            acc = mat[rows, b0].astype(np.uint64)
            for b in range(b0 + 1, b1 + 1):
                acc = (acc << eight) | mat[rows, b]
            acc = (acc & clear) | (values << sr)
            for j in range(nbytes - 1, -1, -1):
                mat[rows, b0 + j] = (acc & np.uint64(0xFF)).astype(np.uint8)
                acc = acc >> eight

        return (extract, scatter, width)
    if width == 128 and start_bit % 8 == 0:
        b0 = start_bit // 8
        eight = np.uint64(8)

        def extract128(mat):
            hi = mat[:, b0].astype(np.uint64)
            for b in range(b0 + 1, b0 + 8):
                hi = (hi << eight) | mat[:, b]
            lo = mat[:, b0 + 8].astype(np.uint64)
            for b in range(b0 + 9, b0 + 16):
                lo = (lo << eight) | mat[:, b]
            return (hi, lo)

        def scatter128(mat, values, rows):
            hi, lo = values
            acc = hi.copy()
            for j in range(7, -1, -1):
                mat[rows, b0 + j] = (acc & np.uint64(0xFF)).astype(np.uint8)
                acc = acc >> eight
            acc = lo.copy()
            for j in range(7, -1, -1):
                mat[rows, b0 + 8 + j] = (
                    acc & np.uint64(0xFF)
                ).astype(np.uint8)
                acc = acc >> eight

        return (extract128, scatter128, width)
    return None


def _chain_recipes(np, chain):
    """Recipes for every field of every header in a parse chain.

    Layout math mirrors :meth:`repro.net.headers.HeaderType.unpack`:
    a field's start bit is ``fixed_bits - shift - width`` into the
    header, at byte offset ``off`` in the packet.
    """
    recipes: Dict[str, Optional[tuple]] = {}
    for name, htype, off in chain:
        for fname, shift, mask, width in htype._layout:
            start_bit = off * 8 + (htype.fixed_bits - shift - width)
            recipes[f"{name}.{fname}"] = _make_recipe(np, start_bit, width)
    return recipes


# --------------------------------------------------------------------------
# PacketColumns: struct-of-arrays view of one homogeneous group
# --------------------------------------------------------------------------


class PacketColumns:
    """Column store for one signature group: lazily materialized
    uint64 columns over a shared ``[m, maxlen]`` byte matrix.

    Header fields extract on first read and scatter back at emit when
    dirty; metadata fields broadcast from the device template (with
    ``ingress_port`` / ``packet_length`` taken per row).  128-bit
    fields are ``(hi, lo)`` uint64 pairs.
    """

    __slots__ = (
        "np", "m", "mat", "lengths", "ports", "recipes", "template",
        "cols", "dirty",
    )

    def __init__(self, np, mat, lengths, ports, recipes, template):
        self.np = np
        self.mat = mat
        self.lengths = lengths
        self.ports = ports
        self.m = mat.shape[0]
        self.recipes = recipes
        self.template = template
        self.cols: Dict[str, object] = {}
        self.dirty: Dict[str, bool] = {}

    def get(self, ref: str):
        col = self.cols.get(ref)
        if col is None:
            col = self._materialize(ref)
            self.cols[ref] = col
        return col

    def _materialize(self, ref: str):
        np = self.np
        if ref.startswith("meta."):
            name = ref[5:]
            if name == "ingress_port":
                return self.ports.astype(np.uint64)
            if name == "packet_length":
                return self.lengths.astype(np.uint64)
            return np.full(
                self.m, int(self.template.get(name, 0)), np.uint64
            )
        extract = self.recipes[ref][0]
        return extract(self.mat)

    def set_field(self, ref: str, values, rows) -> None:
        """Write a header field column (masked to the field width)."""
        np = self.np
        col = self.get(ref)
        width = self.recipes[ref][2]
        if width > 64:
            hi, lo = col
            if isinstance(values, tuple):
                vhi, vlo = values
            else:
                vhi, vlo = np.uint64(0), values
            hi[rows] = vhi
            lo[rows] = vlo
        else:
            col[rows] = values & np.uint64((1 << width) - 1)
        self.dirty[ref] = True

    def set_meta(self, name: str, values, rows) -> None:
        col = self.get("meta." + name)
        col[rows] = values


# --------------------------------------------------------------------------
# Classification: partition the batch by parse-set signature
# --------------------------------------------------------------------------


def _selector_recipe(np, htype, off, selector):
    for fname, shift, mask, width in htype._layout:
        if fname == selector:
            if width > 64:
                return None
            start_bit = off * 8 + (htype.fixed_bits - shift - width)
            recipe = _make_recipe(np, start_bit, width)
            return recipe[0] if recipe else None
    return None


def _merge_group(groups, chain, terminal, rows):
    key = (tuple(c[0] for c in chain), terminal)
    entry = groups.get(key)
    if entry is None:
        groups[key] = (chain, terminal, [rows])
    else:
        entry[2].append(rows)


def _classify(np, items, header_types, linkage, first_header):
    """Batch-wide parse walk.

    Returns ``(mat, lengths, ports, groups, peel)`` where ``groups``
    maps ``(chain names, terminal)`` to ``(chain, terminal, row index
    arrays)`` and ``peel`` collects rows that diverge: variable-length
    headers in the chain, rows too short for a fixed header (the
    scalar parser raises), duplicate instance names, or selectors the
    recipes cannot extract.
    """
    n = len(items)
    lengths = np.array([len(d) for d, _p in items], dtype=np.int64)
    ports = np.array([p for _d, p in items], dtype=np.int64)
    maxlen = int(lengths.max()) if n else 0
    if maxlen == 0:
        mat = np.zeros((n, 0), np.uint8)
    elif bool((lengths == maxlen).all()):
        mat = (
            np.frombuffer(b"".join(d for d, _p in items), np.uint8)
            .reshape(n, maxlen)
            .copy()
        )
    else:
        mat = np.zeros((n, maxlen), np.uint8)
        for i, (data, _p) in enumerate(items):
            if data:
                mat[i, : len(data)] = np.frombuffer(data, np.uint8)
    groups: Dict[tuple, tuple] = {}
    peel: List = []
    sel_cache: Dict[tuple, object] = {}
    pending = [(first_header, 0, (), np.arange(n, dtype=np.int64))]
    while pending:
        expected, off, chain, rows = pending.pop()
        if rows.size == 0:
            continue
        if expected is None or expected not in header_types:
            _merge_group(groups, chain, expected, rows)
            continue
        htype = header_types[expected]
        if htype.varlen_field is not None or any(
            c[0] == expected for c in chain
        ):
            peel.append(rows)
            continue
        need = off + htype._fixed_bytes
        ok = lengths[rows] >= need
        short = rows[~ok]
        if short.size:
            peel.append(short)
        rows = rows[ok]
        if rows.size == 0:
            continue
        new_chain = chain + ((expected, htype, off),)
        selector = linkage.selector(expected)
        if selector is None:
            _merge_group(groups, new_chain, None, rows)
            continue
        cache_key = (expected, off)
        extract = sel_cache.get(cache_key, _MISSING)
        if extract is _MISSING:
            extract = _selector_recipe(np, htype, off, selector)
            sel_cache[cache_key] = extract
        if extract is None:
            peel.append(rows)
            continue
        tags = extract(mat)[rows]
        for tag in np.unique(tags):
            sub = rows[tags == tag]
            pending.append(
                (linkage.next_header(expected, int(tag)), need, new_chain, sub)
            )
    return mat, lengths, ports, groups, peel


# --------------------------------------------------------------------------
# Demand-parse simulation (IPSA JIT parsing over a known chain)
# --------------------------------------------------------------------------


class _ParseSim:
    """Replays :meth:`Packet.ensure_parsed` against a fixed chain.

    Because every row of a group follows the same chain, the per-stage
    newly-parsed counts (and the validity set each stage sees) are
    signature constants computed once at compile time.
    """

    __slots__ = ("chain", "terminal", "linkage", "pos", "parsed")

    def __init__(self, chain, terminal, linkage):
        self.chain = chain
        self.terminal = terminal
        self.linkage = linkage
        self.pos = 0
        self.parsed: set = set()

    def _frontier(self):
        if self.pos < len(self.chain):
            return self.chain[self.pos][0]
        return self.terminal

    def ensure(self, names) -> int:
        count = 0
        remaining = {n for n in names if n not in self.parsed}
        while remaining:
            frontier = self._frontier()
            if frontier is None:
                break
            if frontier not in remaining and remaining.isdisjoint(
                self.linkage.reachable_set(frontier)
            ):
                break
            if self.pos >= len(self.chain):
                break  # unknown header type: parse_one yields nothing
            self.parsed.add(frontier)
            self.pos += 1
            count += 1
            remaining.discard(frontier)
        return count


# --------------------------------------------------------------------------
# Expression compilers (vector value functions)
# --------------------------------------------------------------------------
#
# Both compilers return either ("const", int) or (fn, max_bits) where
# fn(pc, rows, bound) yields a uint64 column (full-length when rows is
# None).  max_bits is a static bound on the result's bit length; any
# subexpression that could exceed 64 bits is ineligible, which is what
# makes uint64 arithmetic exactly equal to Python's bignums here.


class _Ctx:
    __slots__ = ("np", "validity", "template", "recipes")

    def __init__(self, np, validity, template, recipes):
        self.np = np
        self.validity = validity
        self.template = template
        self.recipes = recipes


def _sel(col, rows):
    return col if rows is None else col[rows]


def _compile_ref(ref: str, ctx: _Ctx):
    if "." not in ref:
        raise _Ineligible(ref)
    scope, _field = ref.split(".", 1)
    if scope == "meta":
        name = ref[5:]
        if name not in ("ingress_port", "packet_length"):
            value = ctx.template.get(name, _MISSING)
            if (
                value is _MISSING
                or isinstance(value, bool)
                or not isinstance(value, int)
                or not 0 <= value < (1 << 64)
            ):
                raise _Ineligible(ref)
        return (lambda pc, rows, bound: _sel(pc.get(ref), rows)), 64
    recipe = ctx.recipes.get(ref)
    if recipe is None or scope not in ctx.validity:
        raise _Ineligible(ref)
    width = recipe[2]
    if width > 64:
        raise _Ineligible(ref)
    return (lambda pc, rows, bound: _sel(pc.get(ref), rows)), width


def _as_fn(np, compiled):
    """Normalize a compiled value to a callable (consts broadcast)."""
    if compiled[0] == "const":
        value = np.uint64(compiled[1])
        return lambda pc, rows, bound: value
    return compiled[0]


def _check_const(value):
    if (
        isinstance(value, bool)
        or not isinstance(value, int)
        or value < 0
        or value.bit_length() > 64
    ):
        raise _Ineligible(value)


def _combine_bits(op, lbits, rbits, rconst):
    if op == "&":
        return min(lbits, rbits)
    if op in ("|", "^"):
        return max(lbits, rbits)
    if op == "+":
        return max(lbits, rbits) + 1
    if op == "*":
        return lbits + rbits
    if op == "<<":
        if rconst is None or rconst >= 64:
            raise _Ineligible(op)
        return lbits + rconst
    if op == ">>":
        if rconst is None or rconst >= 64:
            raise _Ineligible(op)
        return lbits
    raise _Ineligible(op)


_ARITH = {
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "+": lambda a, b: a + b,
    "*": lambda a, b: a * b,
    "<<": lambda a, b: a << b,
    ">>": lambda a, b: a >> b,
}

_CMP = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
}


def _compile_binary(np, op, left, right):
    """Shared EBin/BinOp lowering over two compiled operands."""
    lconst = left[0] == "const"
    rconst = right[0] == "const"
    if op in _CMP:
        if lconst and rconst:
            return ("const", 1 if _CMP[op](left[1], right[1]) else 0)
        lf, rf = _as_fn(np, left), _as_fn(np, right)
        cmp = _CMP[op]
        return (
            lambda pc, rows, bound: cmp(
                lf(pc, rows, bound), rf(pc, rows, bound)
            ).astype(np.uint64),
            1,
        )
    if op in _ARITH:
        if lconst and rconst:
            value = _ARITH[op](left[1], right[1])
            _check_const(value)
            return ("const", value)
        lbits = left[1].bit_length() if lconst else left[2]
        rbits = right[1].bit_length() if rconst else right[2]
        bits = _combine_bits(op, lbits, rbits, right[1] if rconst else None)
        if bits > 64:
            raise _Ineligible(op)
        lf, rf = _as_fn(np, left), _as_fn(np, right)
        fn = _ARITH[op]
        return (
            lambda pc, rows, bound: fn(
                lf(pc, rows, bound), rf(pc, rows, bound)
            ),
            bits,
        )
    raise _Ineligible(op)


def _norm(compiled):
    """(tag/fn, value/bits) -> ("const", v) or (fn, None, bits) triple."""
    if compiled[0] == "const":
        return compiled
    return (compiled[0], None, compiled[1])


def _compile_pred_value(expr, ctx: _Ctx):
    """rP4 predicate Expr -> compiled vector value.

    Mirrors :func:`repro.compiler.lowering.eval_predicate`, with
    ``valid()`` folded per signature (header validity is a signature
    constant) -- which also keeps the non-short-circuit vector
    ``&&``/``||`` faithful: a side that only runs under a validity
    guard folds away instead of evaluating eagerly.
    """
    np = ctx.np
    if isinstance(expr, lang.EConst):
        _check_const(expr.value)
        return ("const", expr.value)
    if isinstance(expr, lang.EValid):
        return ("const", 1 if expr.header in ctx.validity else 0)
    if isinstance(expr, lang.ERef):
        fn, bits = _compile_ref(expr.ref, ctx)
        return (fn, None, bits)
    if isinstance(expr, lang.EUnary):
        if expr.op != "!":
            raise _Ineligible(expr.op)
        inner = _compile_pred_value(expr.operand, ctx)
        if inner[0] == "const":
            return ("const", 0 if inner[1] else 1)
        inner_fn = inner[0]
        return (
            lambda pc, rows, bound: (
                inner_fn(pc, rows, bound) == 0
            ).astype(np.uint64),
            None,
            1,
        )
    if isinstance(expr, lang.EBin):
        op = expr.op
        if op == "&&":
            left = _compile_pred_value(expr.left, ctx)
            if left[0] == "const" and left[1] == 0:
                return ("const", 0)  # scalar never evaluates the right
            right = _compile_pred_value(expr.right, ctx)
            if left[0] == "const":
                if right[0] == "const":
                    return ("const", 1 if right[1] else 0)
                rfn = right[0]
                return (
                    lambda pc, rows, bound: (
                        rfn(pc, rows, bound) != 0
                    ).astype(np.uint64),
                    None,
                    1,
                )
            if right[0] == "const":
                if right[1] == 0:
                    return ("const", 0)
                lfn = left[0]
                return (
                    lambda pc, rows, bound: (
                        lfn(pc, rows, bound) != 0
                    ).astype(np.uint64),
                    None,
                    1,
                )
            lfn, rfn = left[0], right[0]
            return (
                lambda pc, rows, bound: (
                    (lfn(pc, rows, bound) != 0)
                    & (rfn(pc, rows, bound) != 0)
                ).astype(np.uint64),
                None,
                1,
            )
        if op == "||":
            left = _compile_pred_value(expr.left, ctx)
            if left[0] == "const" and left[1] != 0:
                return ("const", 1)  # scalar never evaluates the right
            right = _compile_pred_value(expr.right, ctx)
            if left[0] == "const":  # constant zero
                if right[0] == "const":
                    return ("const", 1 if right[1] else 0)
                rfn = right[0]
                return (
                    lambda pc, rows, bound: (
                        rfn(pc, rows, bound) != 0
                    ).astype(np.uint64),
                    None,
                    1,
                )
            if right[0] == "const" and right[1] != 0:
                return ("const", 1)
            lfn = left[0]
            if right[0] == "const":  # constant zero
                return (
                    lambda pc, rows, bound: (
                        lfn(pc, rows, bound) != 0
                    ).astype(np.uint64),
                    None,
                    1,
                )
            rfn = right[0]
            return (
                lambda pc, rows, bound: (
                    (lfn(pc, rows, bound) != 0)
                    | (rfn(pc, rows, bound) != 0)
                ).astype(np.uint64),
                None,
                1,
            )
        left = _to_pair(_compile_pred_value(expr.left, ctx))
        right = _to_pair(_compile_pred_value(expr.right, ctx))
        return _norm(_compile_binary(np, op, left, right))
    raise _Ineligible(expr)


def _to_pair(triple):
    """Internal triple -> the 2/3-tuple shape _compile_binary expects."""
    if triple[0] == "const":
        return triple
    return (triple[0], None, triple[2])


def _compile_action_value(expr, ctx: _Ctx, params: Dict[str, int]):
    """Action-VM expression -> compiled vector value."""
    np = ctx.np
    if isinstance(expr, act.Const):
        _check_const(expr.value)
        return ("const", expr.value)
    if isinstance(expr, act.Param):
        width = params.get(expr.name)
        if width is None or width > 64:
            raise _Ineligible(expr.name)
        name = expr.name

        def param_fn(pc, rows, bound):
            return np.uint64(bound[name])

        return (param_fn, None, width)
    if isinstance(expr, act.FieldRef):
        fn, bits = _compile_ref(expr.ref, ctx)
        return (fn, None, bits)
    if isinstance(expr, act.BinOp):
        left = _to_pair(_compile_action_value(expr.left, ctx, params))
        right = _to_pair(_compile_action_value(expr.right, ctx, params))
        return _norm(_compile_binary(np, expr.op, left, right))
    raise _Ineligible(expr)  # HashExpr and anything unknown


# --------------------------------------------------------------------------
# Action kernels
# --------------------------------------------------------------------------


def _compile_action(adef, ctx: _Ctx):
    """ActionDef -> kernel(pc, rows, bound) running every op masked.

    Eligible ops: :class:`SetField` (except to ``meta.mcast_grp``,
    which would route into the TM's multicast path) and the
    side-effect-free primitives in :data:`_VECTOR_PRIMS`.  Everything
    else (header push/pop, externs, counters, policers) peels.
    """
    np = ctx.np
    params = dict(adef.params)
    kernels = []
    for op in adef.ops:
        if isinstance(op, act.SetField):
            dest = op.dest
            if "." not in dest:
                raise _Ineligible(dest)
            scope, field = dest.split(".", 1)
            value = _compile_action_value(op.expr, ctx, params)
            if value[0] == "const":
                const = np.uint64(value[1])

                def vfn(pc, rows, bound, _c=const):
                    return _c
            else:
                vfn = value[0]
            if scope == "meta":
                if field == "mcast_grp":
                    raise _Ineligible(dest)
                tmpl = ctx.template.get(field, 0)
                if isinstance(tmpl, bool) or not isinstance(tmpl, int):
                    raise _Ineligible(dest)

                def meta_kernel(pc, rows, bound, _f=field, _v=vfn):
                    pc.set_meta(_f, _v(pc, rows, bound), rows)

                kernels.append(meta_kernel)
            else:
                recipe = ctx.recipes.get(dest)
                if recipe is None or scope not in ctx.validity:
                    raise _Ineligible(dest)

                def field_kernel(pc, rows, bound, _d=dest, _v=vfn):
                    pc.set_field(_d, _v(pc, rows, bound), rows)

                kernels.append(field_kernel)
        elif isinstance(op, act.PyPrimitive):
            kernel = _compile_primitive(op.name, ctx)
            if kernel is not None:
                kernels.append(kernel)
        else:
            raise _Ineligible(type(op).__name__)

    def run(pc, rows, bound):
        for kernel in kernels:
            kernel(pc, rows, bound)

    return run


def _compile_primitive(name: str, ctx: _Ctx):
    np = ctx.np
    if name == "no_op":
        return None
    if name == "drop":

        def drop_kernel(pc, rows, bound):
            pc.set_meta("drop", np.uint64(1), rows)

        return drop_kernel
    if name == "mark_to_cpu":

        def cpu_kernel(pc, rows, bound):
            pc.set_meta("to_cpu", np.uint64(1), rows)

        return cpu_kernel
    if name == "decrement_ttl":
        # Validity is a signature constant, so the ipv4/ipv6 branch of
        # prim_decrement_ttl resolves at compile time.
        if "ipv4" in ctx.validity:
            ref = "ipv4.ttl"
        elif "ipv6" in ctx.validity:
            ref = "ipv6.hop_limit"
        else:
            return None
        if ctx.recipes.get(ref) is None:
            raise _Ineligible(ref)

        def ttl_kernel(pc, rows, bound, _ref=ref):
            values = pc.get(_ref)[rows]
            expired = values <= 1
            pc.set_field(
                _ref,
                np.where(expired, np.uint64(0), values - np.uint64(1)),
                rows,
            )
            if expired.any():
                pc.set_meta("drop", np.uint64(1), rows[expired])

        return ttl_kernel
    raise _Ineligible(name)


def _bind_params(adef, action_data):
    """Replicates :meth:`ActionDef.execute`'s parameter binding."""
    bound: Dict[str, int] = {}
    for name, width in adef.params:
        if name not in action_data:
            raise KeyError(
                f"action {adef.name!r} missing parameter {name!r}"
            )
        bound[name] = mask_to_width(action_data[name], width)
    return bound


# --------------------------------------------------------------------------
# Table key getters
# --------------------------------------------------------------------------


def _make_key_getter(ref: str, nbytes: int, ctx: _Ctx):
    """One key field -> fn(pc, rows) returning its query column.

    8-byte fields yield a uint64 array; 16-byte fields yield a
    ``(hi, lo)`` pair (zero-extended when the source column is small).
    """
    np = ctx.np
    if "." not in ref:
        raise _Ineligible(ref)
    scope, _field = ref.split(".", 1)
    if scope == "meta":
        _compile_ref(ref, ctx)  # template/eligibility validation
        wide = False
    else:
        recipe = ctx.recipes.get(ref)
        if recipe is None or scope not in ctx.validity:
            raise _Ineligible(ref)
        wide = recipe[2] > 64
    if wide and nbytes != 16:
        raise _Ineligible(ref)  # declared width disagrees with the field
    if wide:

        def wide_getter(pc, rows):
            hi, lo = pc.get(ref)
            return (hi[rows], lo[rows])

        return wide_getter
    if nbytes == 16:

        def padded_getter(pc, rows):
            col = pc.get(ref)[rows]
            return (np.zeros(col.shape[0], np.uint64), col)

        return padded_getter

    def getter(pc, rows):
        return pc.get(ref)[rows]

    return getter


# --------------------------------------------------------------------------
# Compiled signature plans
# --------------------------------------------------------------------------


class _ArmExec:
    __slots__ = (
        "pred", "empty", "table", "key_getters", "tag_kernels",
        "default_kernel",
    )


class _StageExec:
    __slots__ = ("parse_count", "arms")


class _TspExec:
    __slots__ = ("stats", "stages")


class _ApplyExec:
    __slots__ = ("table", "actions", "default_action", "key_getters", "kernels")


class _CondExec:
    __slots__ = ("const", "fn", "then_steps", "else_steps")


class _SigPlan:
    """One signature's vector program: recipes, per-stage parse
    counts, arm/step kernels, and the emit layout."""

    __slots__ = (
        "ctx", "recipes", "w_extent", "pad_fixups", "tables",
        "ingress", "egress", "apply_steps", "parsed_count",
    )

    def __init__(self):
        self.tables: List = []
        self.apply_steps: List[_ApplyExec] = []

    def prepare(self, np) -> bool:
        """Per-batch gate: build every table's batch index and (PISA)
        compile kernels for every action its entries currently name.
        Runs before any side effect, so a False is a clean peel."""
        for table in self.tables:
            if not table.prepare_batch(np):
                return False
        for step in self.apply_steps:
            if not _ensure_step_kernels(step, self.ctx):
                return False
        return True


def _resolve_kernel(name, adef, ctx: _Ctx, device):
    if adef is None:
        adef = device.actions.get(name)
        if adef is None:
            raise _Ineligible(name)  # scalar raises KeyError: peel
    return (adef, _compile_action(adef, ctx))


def _compile_arm(arm, ctx: _Ctx, device, sp: _SigPlan):
    ex = _ArmExec()
    if arm.expr is None:
        ex.pred = None
    else:
        value = _compile_pred_value(arm.expr, ctx)
        if value[0] == "const":
            ex.pred = None if value[1] else _NEVER
        else:
            ex.pred = value[0]
    if ex.pred is _NEVER:
        # Constant-false for this signature (e.g. a valid(ipv4) guard
        # on an IPv6 chain): the arm can never fire, so its table and
        # actions -- which may read headers this signature lacks --
        # are never compiled, exactly as the scalar loop never
        # evaluates them.
        ex.empty = True
        ex.table = None
        ex.key_getters = ()
        ex.tag_kernels = {}
        ex.default_kernel = None
        return ex
    if arm.table_name is None:
        ex.empty = True
        ex.table = None
        ex.key_getters = ()
        ex.tag_kernels = {}
        ex.default_kernel = None
        return ex
    ex.empty = False
    table = arm.table
    if table is None:
        raise _Ineligible(arm.table_name)
    field_bytes = table.batch_field_bytes()
    if field_bytes is None:
        raise _Ineligible(arm.table_name)
    ex.table = table
    ex.key_getters = tuple(
        _make_key_getter(kf.ref, nb, ctx)
        for kf, nb in zip(table.key, field_bytes)
    )
    sp.tables.append(table)
    return ex


def _compile_ipsa_sig(core, plan, chain, terminal, prog) -> _SigPlan:
    np = prog.np
    device = core.device
    sp = _SigPlan()
    recipes = _chain_recipes(np, chain)
    sim = _ParseSim(chain, terminal, prog.linkage)
    ctx = _Ctx(np, sim.parsed, prog.template, recipes)
    sp.ctx = ctx
    sp.recipes = recipes

    def compile_side(tsp_plans):
        out = []
        for tsp_plan in tsp_plans:
            stages = []
            for stage_plan in tsp_plan.stages:
                stage = _StageExec()
                stage.parse_count = sim.ensure(stage_plan.parse_list)
                arms = []
                for arm in stage_plan.arms:
                    ex = _compile_arm(arm, ctx, device, sp)
                    if not ex.empty:
                        ex.tag_kernels = {
                            tag: _resolve_kernel(name, adef, ctx, device)
                            for tag, (name, adef)
                            in stage_plan.tag_actions.items()
                        }
                        ex.default_kernel = _resolve_kernel(
                            *stage_plan.default_pair, ctx, device
                        )
                    arms.append(ex)
                stage.arms = tuple(arms)
                stages.append(stage)
            tsp = _TspExec()
            tsp.stats = tsp_plan.stats
            tsp.stages = tuple(stages)
            out.append(tsp)
        return tuple(out)

    sp.ingress = compile_side(plan.ingress)
    sp.egress = compile_side(plan.egress)
    sp.parsed_count = sim.pos
    _finish_layout(sp, chain, sim.pos)
    return sp


def _compile_pisa_sig(core, plan, chain, terminal, prog) -> _SigPlan:
    np = prog.np
    sp = _SigPlan()
    recipes = _chain_recipes(np, chain)
    validity = {c[0] for c in chain}
    ctx = _Ctx(np, validity, prog.template, recipes)
    sp.ctx = ctx
    sp.recipes = recipes

    def compile_steps(steps):
        out = []
        for step in steps:
            if hasattr(step, "table_name"):  # ApplyStep
                table = step.table
                if table is None:
                    raise _Ineligible(step.table_name)
                field_bytes = table.batch_field_bytes()
                if field_bytes is None:
                    raise _Ineligible(step.table_name)
                ex = _ApplyExec()
                ex.table = table
                ex.actions = step.actions
                ex.default_action = table.default_action
                ex.key_getters = tuple(
                    _make_key_getter(kf.ref, nb, ctx)
                    for kf, nb in zip(table.key, field_bytes)
                )
                ex.kernels = {}
                sp.tables.append(table)
                sp.apply_steps.append(ex)
                out.append(ex)
            else:  # IfStep
                value = _compile_pred_value(step.cond, ctx)
                if value[0] == "const":
                    # Signature-constant condition (validity guards):
                    # splice in only the taken branch -- the scalar
                    # loop never evaluates the other side, which may
                    # reference headers this signature lacks.
                    taken = (
                        step.then_steps if value[1] else step.else_steps
                    )
                    out.extend(compile_steps(taken))
                    continue
                ex = _CondExec()
                ex.const = None
                ex.fn = value[0]
                ex.then_steps = compile_steps(step.then_steps)
                ex.else_steps = compile_steps(step.else_steps)
                out.append(ex)
        return tuple(out)

    sp.ingress = compile_steps(plan.ingress)
    sp.egress = compile_steps(plan.egress)
    sp.parsed_count = len(chain)
    _finish_layout(sp, chain, len(chain))
    return sp


def _finish_layout(sp: _SigPlan, chain, parsed_count: int) -> None:
    """Emit layout: wire extent of the parsed prefix + pad-bit masks.

    Scalar ``pack()`` zeroes a header's pad bits on emit even when the
    wire had them set, so the columnar emit clears them in the byte
    matrix instead of peeling such packets.
    """
    if parsed_count:
        name, htype, off = chain[parsed_count - 1]
        sp.w_extent = off + htype._fixed_bytes
    else:
        sp.w_extent = 0
    fixups = []
    for name, htype, off in chain[:parsed_count]:
        pad = htype._pad_bits
        if pad:
            fixups.append(
                (off + htype._fixed_bytes - 1, 0xFF ^ ((1 << pad) - 1))
            )
    sp.pad_fixups = tuple(fixups)


def _ensure_step_kernels(step: _ApplyExec, ctx: _Ctx) -> bool:
    """PISA action sets are entry-data-dependent: compile kernels for
    every action the table's entries currently select (cached on the
    engine by version)."""
    table = step.table
    engine = table._engine
    version = getattr(engine, "version", None)
    cached = getattr(engine, "_columnar_actions", None)
    if cached is None or cached[0] != version:
        names = {entry.action for entry in table.entries()}
        engine._columnar_actions = (version, names)
    else:
        names = cached[1]
    for name in names | {step.default_action}:
        kernel = step.kernels.get(name, _MISSING)
        if kernel is _MISSING:
            adef = step.actions.get(name)
            if adef is None:
                kernel = None  # scalar raises KeyError: peel
            else:
                try:
                    kernel = (adef, _compile_action(adef, ctx))
                except _Ineligible:
                    kernel = None
            step.kernels[name] = kernel
        if kernel is None:
            return False
    return True


# --------------------------------------------------------------------------
# Vector execution
# --------------------------------------------------------------------------


def _run_stage_arms(stage: _StageExec, pc, active, stats, np) -> None:
    """First-match-wins over the arm list, as row-set splitting."""
    remaining = active
    for arm in stage.arms:
        if remaining.size == 0:
            return
        pred = arm.pred
        if pred is _NEVER:
            continue
        if pred is None:
            fired = remaining
            remaining = remaining[:0]
        else:
            values = pred(pc, None, None)
            hit = values[remaining] != 0
            fired = remaining[hit]
            if fired.size == 0:
                continue
            remaining = remaining[~hit]
        if arm.empty:
            continue  # explicit no-op arm consumes its rows
        _fire_arm(arm, pc, fired, stats, np)


def _fire_arm(arm: _ArmExec, pc, fired, stats, np) -> None:
    stats.account_batch(lookups=int(fired.size))
    cols = [getter(pc, fired) for getter in arm.key_getters]
    lengths = pc.get("meta.packet_length")[fired]
    idx, entries = arm.table.lookup_batch(np, cols, lengths)
    table = arm.table
    for rank in np.unique(idx):
        rows = fired[idx == rank]
        if rank < 0:
            tag = 0
            action_data = table.default_data
        else:
            entry = entries[rank]
            tag = entry.tag
            action_data = entry.action_data
        adef, kernel = arm.tag_kernels.get(tag, arm.default_kernel)
        kernel(pc, rows, _bind_params(adef, action_data))
    stats.account_batch(actions_run=int(fired.size))


def _note_drops(device, reason, count: int) -> None:
    device.packets_dropped += count
    note = device.note_drop
    for _ in range(count):
        note(reason)


def _run_ipsa_group(sp: _SigPlan, pc, rows_global, items, outputs, device):
    np = pc.np
    drop = pc.get("meta.drop")

    def run_side(tsps, entering):
        for tsp in tsps:
            if entering.size == 0:
                break
            tsp.stats.account_batch(packets=int(entering.size))
            for stage in tsp.stages:
                active = entering[drop[entering] == 0]
                if active.size == 0:
                    break
                if stage.parse_count:
                    tsp.stats.account_batch(
                        headers_parsed=stage.parse_count * int(active.size)
                    )
                _run_stage_arms(stage, pc, active, tsp.stats, np)
            entering = entering[drop[entering] == 0]

    all_rows = np.arange(pc.m)
    run_side(sp.ingress, all_rows)
    ingress_dead = int((drop != 0).sum())
    if ingress_dead:
        _note_drops(device, DropReason.INGRESS_ACTION, ingress_dead)
    survivors = all_rows[drop == 0]
    if survivors.size:
        # Every survivor is a unicast enqueue/dequeue pair through an
        # empty TM (mcast_grp is pinned to 0 by the eligibility
        # rules), grouped here by the egress port the scalar enqueue
        # would have queued on.
        ports = pc.get("meta.egress_spec")[survivors]
        unique, counts = np.unique(ports, return_counts=True)
        device.pipeline.tm.account_passthrough(
            list(zip((int(p) for p in unique), (int(c) for c in counts)))
        )
    run_side(sp.egress, survivors)
    egress_dead = int((drop[survivors] != 0).sum())
    if egress_dead:
        _note_drops(device, DropReason.EGRESS_ACTION, egress_dead)
    final = survivors[drop[survivors] == 0]
    _emit_rows(sp, pc, final, rows_global, items, outputs, device, None)


def _run_flow_vec(steps, pc, rows, stats, drop, np) -> None:
    for step in steps:
        rows = rows[drop[rows] == 0]
        if rows.size == 0:
            return
        if isinstance(step, _ApplyExec):
            stats.account_batch(lookups=int(rows.size))
            cols = [getter(pc, rows) for getter in step.key_getters]
            lengths = pc.get("meta.packet_length")[rows]
            idx, entries = step.table.lookup_batch(np, cols, lengths)
            for rank in np.unique(idx):
                selected = rows[idx == rank]
                if rank < 0:
                    name = step.default_action
                    action_data = step.table.default_data
                else:
                    entry = entries[rank]
                    name = entry.action
                    action_data = entry.action_data
                adef, kernel = step.kernels[name]
                kernel(pc, selected, _bind_params(adef, action_data))
            stats.account_batch(actions_run=int(rows.size))
        else:
            if step.const is not None:
                branch = step.then_steps if step.const else step.else_steps
                _run_flow_vec(branch, pc, rows, stats, drop, np)
            else:
                values = step.fn(pc, None, None)
                taken = values[rows] != 0
                _run_flow_vec(
                    step.then_steps, pc, rows[taken], stats, drop, np
                )
                _run_flow_vec(
                    step.else_steps, pc, rows[~taken], stats, drop, np
                )


def _run_pisa_group(sp: _SigPlan, pc, rows_global, items, outputs, device):
    np = pc.np
    parser = device.parser
    parser.stats.packets += pc.m
    parser.stats.headers_extracted += sp.parsed_count * pc.m
    stats = device.pipeline.stats
    stats.account_batch(packets=pc.m)
    drop = pc.get("meta.drop")
    all_rows = np.arange(pc.m)
    _run_flow_vec(sp.ingress, pc, all_rows, stats, drop, np)
    ingress_dead = int((drop != 0).sum())
    if ingress_dead:
        _note_drops(device, DropReason.INGRESS_ACTION, ingress_dead)
    survivors = all_rows[drop == 0]
    if survivors.size:
        _run_flow_vec(sp.egress, pc, survivors, stats, drop, np)
        egress_dead = int((drop[survivors] != 0).sum())
        if egress_dead:
            _note_drops(device, DropReason.EGRESS_ACTION, egress_dead)
    final = survivors[drop[survivors] == 0]
    _emit_rows(
        sp, pc, final, rows_global, items, outputs, device, device.deparser
    )


def _emit_rows(sp, pc, final, rows_global, items, outputs, device, deparser):
    """Scatter dirty columns, zero pad bits, and emit survivors.

    The wire image is the (possibly rewritten) parsed prefix from the
    byte matrix plus the untouched original payload tail -- exactly
    what scalar ``Packet.emit`` produces.
    """
    if final.size == 0:
        return
    np = pc.np
    from repro.dp.frontdoor import PortOut

    all_rows = np.arange(pc.m)
    for ref in pc.dirty:
        scatter = sp.recipes[ref][1]
        scatter(pc.mat, pc.cols[ref], all_rows)
    for byte_index, mask in sp.pad_fixups:
        pc.mat[:, byte_index] &= mask
    extent = sp.w_extent
    egress = pc.get("meta.egress_spec")
    to_cpu = pc.get("meta.to_cpu")
    mat = pc.mat
    punted = 0
    total_bytes = 0
    for r in final.tolist():
        index = int(rows_global[r])
        data = items[index][0]
        wire = mat[r, :extent].tobytes() + data[extent:]
        out = PortOut(int(egress[r]), wire, bool(to_cpu[r]))
        outputs[index] = out
        punted += out.to_cpu
        total_bytes += len(wire)
    device.packets_out += int(final.size)
    device.punted += punted
    if deparser is not None:
        deparser.stats.packets += int(final.size)
        deparser.stats.bytes_emitted += total_bytes


# --------------------------------------------------------------------------
# Scalar peel: divergent rows at their original positions
# --------------------------------------------------------------------------


def _run_scalar_rows(core, items, indices, outputs) -> None:
    """The frontdoor scalar loop, replayed for the peeled rows only."""
    from repro.dp.frontdoor import finish_unicast
    from repro.dp.hooks import NULL_HOOKS
    from repro.net.packet import Packet

    device = core.device
    first_header = core.first_header()
    template = core.metadata_template
    observe = device._packet_bytes.observe
    process = core.process
    for index in indices:
        data, port = items[index]
        device.packets_in += 1
        device.clock += 1
        observe(len(data))
        metadata = dict(template)
        metadata["ingress_port"] = port
        metadata["packet_length"] = len(data)
        packet = Packet(data, first_header=first_header, metadata=metadata)
        outcome = process(packet, NULL_HOOKS, None)
        outputs[index] = finish_unicast(core, NULL_HOOKS, None, outcome)


# --------------------------------------------------------------------------
# The program cache + batch entry point
# --------------------------------------------------------------------------


class ColumnarProgram:
    """Vector lowering of one compiled scalar plan (sig plans cached)."""

    __slots__ = (
        "np", "arch", "supported", "header_types", "linkage",
        "first_header", "template", "sigs",
    )

    def __init__(self, np, core, plan):
        from repro.dp.core import IpsaCore, PisaCore

        self.np = np
        self.sigs: Dict[tuple, Optional[_SigPlan]] = {}
        self.template = core.metadata_template
        device = core.device
        if isinstance(core, IpsaCore):
            self.arch = "ipsa"
            self.header_types = device.header_types
            self.linkage = device.linkage
        elif isinstance(core, PisaCore):
            self.arch = "pisa"
            self.header_types = device.parser.header_types
            self.linkage = device.parser.linkage
        else:
            self.arch = None
        self.supported = self.arch is not None
        if self.arch == "ipsa":
            group = self.template.get("mcast_grp", 0)
            if not isinstance(group, int) or group != 0:
                # A default multicast group would route every packet
                # through TM replication -- scalar only.
                self.supported = False
        self.first_header = core.first_header() if self.supported else None

    def sig(self, core, plan, key, chain, terminal) -> Optional[_SigPlan]:
        sp = self.sigs.get(key, _MISSING)
        if sp is _MISSING:
            compile_sig = (
                _compile_ipsa_sig if self.arch == "ipsa" else _compile_pisa_sig
            )
            try:
                sp = compile_sig(core, plan, chain, terminal, self)
            except _Ineligible:
                sp = None
            self.sigs[key] = sp
        return sp


#: Batches below this row count run scalar without even consulting the
#: columnar program cache.  Column build + group dispatch cost a few
#: packets' worth of scalar work per batch, and -- worse -- a tiny
#: batch against a fresh plan (the fabric rollout's one-packet probe
#: gate, times a thousand nodes) would pay a full ColumnarProgram
#: compile it can never amortize.
MIN_BATCH_ROWS = 8


def try_run_batch(core, items) -> Optional[List[object]]:
    """Run a whole ``(data, port)`` batch columnar.

    Returns the per-row ``PortOut | None`` outputs list, or ``None``
    when the batch should run on the scalar loop instead (no NumPy,
    unsupported architecture/state, too few rows to amortize the
    column build, or nothing vectorizable in it).
    """
    np = _numpy()
    if np is None:
        return None
    n = len(items)
    if n == 0:
        return []
    if n < MIN_BATCH_ROWS:
        return None
    device = core.device
    plan = core.plan()
    cached = core._columnar
    if cached is None or cached[0] is not plan:
        cached = (plan, ColumnarProgram(np, core, plan))
        core._columnar = cached
    prog = cached[1]
    if not prog.supported:
        return None
    if prog.arch == "ipsa" and device.pipeline.tm.occupancy() != 0:
        return None  # leftover TM state: keep the scalar path honest
    mat, lengths, ports, groups, peel = _classify(
        np, items, prog.header_types, prog.linkage, prog.first_header
    )
    runnable = []
    peel_arrays = list(peel)
    for key, (chain, terminal, row_arrays) in groups.items():
        if len(row_arrays) == 1:
            rows = row_arrays[0]
        else:
            rows = np.sort(np.concatenate(row_arrays))
        sp = prog.sig(core, plan, key, chain, terminal)
        if sp is None or not sp.prepare(np):
            peel_arrays.append(rows)
            continue
        runnable.append((sp, rows))
    if not runnable:
        return None  # nothing vectorizable: plain scalar loop is cheaper
    outputs: List[object] = [None] * n
    observe = device._packet_bytes.observe
    for sp, rows in runnable:
        pc = PacketColumns(
            np, mat[rows], lengths[rows], ports[rows],
            sp.recipes, prog.template,
        )
        device.packets_in += pc.m
        device.clock += pc.m
        for length in pc.lengths.tolist():
            observe(length)
        if prog.arch == "ipsa":
            _run_ipsa_group(sp, pc, rows, items, outputs, device)
        else:
            _run_pisa_group(sp, pc, rows, items, outputs, device)
    if peel_arrays:
        peeled = np.sort(np.concatenate(peel_arrays))
        _run_scalar_rows(core, items, peeled.tolist(), outputs)
    return outputs

"""Pluggable instrumentation for the unified execution loop.

The dataplane core runs ONE loop (:mod:`repro.dp.exec`); what used to
be the plain/traced/profiled twins of that loop is now a hook object:

* :class:`ExecHooks` -- the no-op base.  Its methods perform exactly
  the semantic operation (parse / lookup / execute / TM transfer) and
  nothing else, so the base class is both the interface contract and
  the uninstrumented fast path (:data:`NULL_HOOKS`).
* :class:`TraceHooks` -- wraps each operation in the packet tracer's
  span tree (same shapes as the old ``_process_traced`` twins).
* :class:`ProfileHooks` -- attributes wall time and work counters to
  ``(label, phase, detail)`` paths (the old ``_process_profiled``).

:func:`resolve_hooks` encodes the device policy: an *active* trace
takes priority over the profiler; otherwise the profiler; otherwise
the no-op singleton.  When both a tracer and a profiler are attached,
the TM and deparser phases are still timed (they always were -- the
old pipeline checked the profiler independently of the tracer).
"""

from __future__ import annotations

from typing import Optional

from repro.obs.prof import Profiler
from repro.obs.trace import PacketTracer


class ExecHooks:
    """No-op instrumentation: each method IS the bare semantic op."""

    __slots__ = ()

    # -- IPSA TSP loop -------------------------------------------------

    def unit_begin(self, plan):
        """Called entering one TSP's hosted stages; returns a context."""
        return None

    def unit_end(self, ctx, plan) -> None:
        """Called leaving the TSP (always, via ``finally``)."""

    def parse(self, plan, stage, packet, device) -> int:
        """JIT-parse the stage's parser set; returns headers parsed.

        The uninstrumented path prechecks the parsed-header index and
        skips the :meth:`~repro.net.packet.Packet.ensure_parsed` call
        entirely when every requested header is already available (the
        call would return 0 -- the precheck only removes overhead).
        Instrumented subclasses always make the call so the parse
        span/phase exists for every stage, as it always has.
        """
        by_name = packet._by_name
        for name in stage.parse_list:
            if name not in by_name:
                return packet.ensure_parsed(
                    stage.parse_list, device.header_types, device.linkage
                )
        return 0

    def empty_arm(self, plan, stage, arm) -> None:
        """A matched arm with no table: an explicit no-op."""

    def match(self, plan, stage, arm, table, packet):
        """Apply the arm's table; returns the lookup result."""
        return table.lookup(packet)

    def execute(self, plan, stage, name, action, packet, result, device) -> None:
        """Run the executor-selected action."""
        action.execute(
            packet, result.action_data, entry=result.entry, device=device
        )

    # -- PISA flow -----------------------------------------------------

    def apply_begin(self, step):
        """Called entering one PISA table application (stage span)."""
        return None

    def apply_end(self, ctx, step) -> None:
        """Called leaving the table application (always)."""

    def pisa_match(self, step, table, packet):
        return table.lookup(packet)

    def pisa_execute(self, step, name, action, packet, result, device) -> None:
        action.execute(
            packet, result.action_data, entry=result.entry, device=device
        )

    def front_parse(self, parser, packet) -> int:
        """PISA's full-stack front-end parse."""
        return parser.parse(packet)

    def deparse(self, deparser, packet) -> bytes:
        """PISA's explicit egress deparse."""
        return deparser.deparse(packet)

    # -- traffic manager ----------------------------------------------

    def tm_enqueue(self, tm, packet) -> int:
        return tm.enqueue_or_replicate(packet)

    def tm_dequeue(self, tm):
        return tm.dequeue()


#: The shared uninstrumented hook object (stateless, reusable).
NULL_HOOKS = ExecHooks()


class ProfileHooks(ExecHooks):
    """Wall-time + work attribution (the old ``*_profiled`` twins)."""

    __slots__ = ("profiler",)

    def __init__(self, profiler: Profiler) -> None:
        self.profiler = profiler

    def parse(self, plan, stage, packet, device) -> int:
        prof = self.profiler
        started = prof.now()
        parsed = packet.ensure_parsed(
            stage.parse_list, device.header_types, device.linkage
        )
        prof.add((plan.label, "parse"), started, headers=parsed)
        return parsed

    def match(self, plan, stage, arm, table, packet):
        prof = self.profiler
        started = prof.now()
        result = table.lookup(packet)
        prof.add((plan.label, "match", arm.table_name), started, lookups=1)
        prof.note_engine(table.engine_kind)
        return result

    def execute(self, plan, stage, name, action, packet, result, device) -> None:
        prof = self.profiler
        started = prof.now()
        action.execute(
            packet, result.action_data, entry=result.entry, device=device
        )
        prof.add((plan.label, "execute", name), started, ops=len(action.ops))

    def pisa_match(self, step, table, packet):
        prof = self.profiler
        started = prof.now()
        result = table.lookup(packet)
        prof.add(
            (step.table_name, "match", step.table_name), started, lookups=1
        )
        prof.note_engine(table.engine_kind)
        return result

    def pisa_execute(self, step, name, action, packet, result, device) -> None:
        prof = self.profiler
        started = prof.now()
        action.execute(
            packet, result.action_data, entry=result.entry, device=device
        )
        prof.add(
            (step.table_name, "execute", name), started, ops=len(action.ops)
        )

    def front_parse(self, parser, packet) -> int:
        prof = self.profiler
        started = prof.now()
        parsed = parser.parse(packet)
        prof.add(("parser", "parse"), started, headers=parsed)
        return parsed

    def deparse(self, deparser, packet) -> bytes:
        prof = self.profiler
        started = prof.now()
        data = deparser.deparse(packet)
        prof.add(("deparser", "deparse"), started, bytes=len(data))
        return data

    def tm_enqueue(self, tm, packet) -> int:
        prof = self.profiler
        started = prof.now()
        queued = tm.enqueue_or_replicate(packet)
        prof.add(("tm", "enqueue"), started, enqueues=queued)
        return queued

    def tm_dequeue(self, tm):
        prof = self.profiler
        started = prof.now()
        packet = tm.dequeue()
        prof.add(("tm", "dequeue"), started, dequeues=1)
        return packet


class TraceHooks(ExecHooks):
    """Span-tree recording (the old ``*_traced`` twins).

    Carries the device's profiler too: per-stage phases are traced
    INSTEAD of profiled (trace priority), but TM and deparser phases
    keep their wall-time attribution even while a trace is active --
    exactly the old split, where the pipeline checked the profiler
    independently.
    """

    __slots__ = ("tracer", "profiler")

    def __init__(
        self, tracer: PacketTracer, profiler: Optional[Profiler] = None
    ) -> None:
        self.tracer = tracer
        self.profiler = profiler

    def unit_begin(self, plan):
        return self.tracer.start_span(
            plan.label, kind="tsp", tsp=plan.index, side=plan.side
        )

    def unit_end(self, ctx, plan) -> None:
        self.tracer.end_span(ctx)

    def parse(self, plan, stage, packet, device) -> int:
        tracer = self.tracer
        span = tracer.start_span(
            "parse",
            kind="parse",
            stage=stage.name,
            headers=list(stage.parse_list),
        )
        parsed = packet.ensure_parsed(
            stage.parse_list, device.header_types, device.linkage
        )
        span.attrs["parsed"] = parsed
        tracer.end_span(span)
        return parsed

    def empty_arm(self, plan, stage, arm) -> None:
        self.tracer.event(
            "match",
            kind="match",
            stage=stage.name,
            arm=arm.index,
            matched=False,
        )

    def match(self, plan, stage, arm, table, packet):
        tracer = self.tracer
        span = tracer.start_span(
            "match",
            kind="match",
            stage=stage.name,
            arm=arm.index,
            table=arm.table_name,
        )
        result = table.lookup(packet)
        span.attrs["hit"] = result.hit
        span.attrs["tag"] = result.tag
        tracer.end_span(span)
        return result

    def execute(self, plan, stage, name, action, packet, result, device) -> None:
        tracer = self.tracer
        span = tracer.start_span(
            "execute",
            kind="execute",
            stage=stage.name,
            action=name,
            ops=len(action.ops),
        )
        action.execute(
            packet, result.action_data, entry=result.entry, device=device
        )
        tracer.end_span(span)

    def apply_begin(self, step):
        return self.tracer.start_span(
            step.table_name, kind="stage", table=step.table_name
        )

    def apply_end(self, ctx, step) -> None:
        self.tracer.end_span(ctx)

    def pisa_match(self, step, table, packet):
        tracer = self.tracer
        span = tracer.start_span("match", kind="match", table=step.table_name)
        result = table.lookup(packet)
        span.attrs["hit"] = result.hit
        span.attrs["tag"] = result.tag
        tracer.end_span(span)
        return result

    def pisa_execute(self, step, name, action, packet, result, device) -> None:
        tracer = self.tracer
        span = tracer.start_span(
            "execute", kind="execute", action=name, ops=len(action.ops)
        )
        action.execute(
            packet, result.action_data, entry=result.entry, device=device
        )
        tracer.end_span(span)

    def front_parse(self, parser, packet) -> int:
        tracer = self.tracer
        span = tracer.start_span("parse", kind="parse")
        parsed = parser.parse(packet)
        span.attrs["parsed"] = parsed
        span.attrs["headers"] = [h.name for h in packet.headers]
        tracer.end_span(span)
        return parsed

    def deparse(self, deparser, packet) -> bytes:
        prof = self.profiler
        if prof is not None:
            started = prof.now()
            data = deparser.deparse(packet)
            prof.add(("deparser", "deparse"), started, bytes=len(data))
            return data
        return deparser.deparse(packet)

    def tm_enqueue(self, tm, packet) -> int:
        prof = self.profiler
        if prof is not None:
            started = prof.now()
            queued = tm.enqueue_or_replicate(packet)
            prof.add(("tm", "enqueue"), started, enqueues=queued)
        else:
            queued = tm.enqueue_or_replicate(packet)
        self.tracer.event(
            "tm.enqueue", kind="tm", queued=queued, occupancy=tm.occupancy()
        )
        return queued

    def tm_dequeue(self, tm):
        prof = self.profiler
        if prof is not None:
            started = prof.now()
            packet = tm.dequeue()
            prof.add(("tm", "dequeue"), started, dequeues=1)
        else:
            packet = tm.dequeue()
        self.tracer.event("tm.dequeue", kind="tm")
        return packet


def resolve_hooks(device) -> ExecHooks:
    """Pick the hook object for one packet (or one batch).

    An active trace (tracer attached AND a trace begun) wins over the
    profiler; a lone profiler gets :class:`ProfileHooks`; otherwise
    the shared no-op singleton -- the plain path allocates nothing.
    """
    tracer = device.tracer
    if tracer is not None and tracer.current is not None:
        return TraceHooks(tracer, device.profiler)
    profiler = device.profiler
    if profiler is not None:
        return ProfileHooks(profiler)
    return NULL_HOOKS

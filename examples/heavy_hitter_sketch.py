#!/usr/bin/env python3
"""Extension use case C4: transitory heavy-hitter detection.

Beyond the paper's three demos, this exercises the intro's
"transitory in-network computing" pitch: a count-min sketch is loaded
at runtime, finds the heavy flows, and is offloaded when the
investigation ends -- returning its table blocks and sketch state.

Run:  python examples/heavy_hitter_sketch.py
"""

from collections import Counter

from repro.net.addresses import parse_ipv4
from repro.programs import (
    base_rp4_source,
    hhsketch_load_script,
    hhsketch_rp4_source,
    populate_base_tables,
    populate_hhsketch_tables,
)
from repro.runtime import Controller
from repro.workloads import ipv4_packet


def main() -> None:
    controller = Controller()
    controller.load_base(base_rp4_source())
    populate_base_tables(controller.switch.tables)

    plan, stats, timing = controller.run_script(
        hhsketch_load_script(), {"hhsketch.rp4": hhsketch_rp4_source()}
    )
    populate_hhsketch_tables(controller.switch.tables, threshold=20)
    print(
        f"sketch function loaded in service "
        f"(t_C={timing.compile_seconds * 1e3:.1f} ms, "
        f"TSPs rewritten {plan.rewritten_tsps}, threshold 20)"
    )

    # Traffic: one elephant flow among many mice.
    print("\nreplaying 1 elephant (40 pkts) + 60 mice (1-2 pkts each):")
    trace = [
        (ipv4_packet("10.1.0.1", "10.2.0.1", sport=7777), 0)
        for _ in range(40)
    ]
    for mouse in range(60):
        trace.extend(
            (ipv4_packet("10.1.0.1", f"10.2.9.{mouse + 1}"), 0)
            for _ in range(mouse % 2 + 1)
        )
    controller.switch.inject_batch(trace)

    sketch = controller.switch.externs.sketches["hh_update"]
    elephant = sketch.estimate(
        [parse_ipv4("10.1.0.1"), parse_ipv4("10.2.0.1")]
    )
    mouse = sketch.estimate(
        [parse_ipv4("10.1.0.1"), parse_ipv4("10.2.9.5")]
    )
    print(f"  sketch updates: {sketch.updates}")
    print(f"  elephant estimate: {elephant} (marked above threshold)")
    print(f"  a mouse estimate:  {mouse}")
    assert elephant > 20 >= mouse

    print("\noffloading the function (state + table blocks recycled):")
    plan, _, _ = controller.run_script("unload --func_name hh_sketch")
    controller.switch.externs.drop("hh_update")
    print(f"  freed tables: {plan.freed_tables}; sketches left: "
          f"{list(controller.switch.externs.sketches)}")
    out = controller.switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), 0)
    print(f"  forwarding unaffected (egress port {out.port})")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Live trial with reliable failback (the intro's application #2).

"Trial on new protocols/algorithms: live trials in production
networks can be conducted with reliable failback procedure, and
stable features can be made permanent without a network overhaul."

We trial ECMP on a production switch, decide (pretend) it misbehaves,
and fail back.  The rollback is itself an in-situ update: one drained
pipeline, one rewritten template, the trial's tables recycled -- and
forwarding afterwards is bit-identical to forwarding before the trial.

Run:  python examples/live_trial_failback.py
"""

from repro.net.addresses import parse_mac
from repro.programs import (
    base_rp4_source,
    ecmp_load_script,
    ecmp_rp4_source,
    populate_base_tables,
    populate_ecmp_tables,
)
from repro.programs.base_l2l3 import NEXTHOP_MACS
from repro.runtime import Controller
from repro.tables.table import TableEntry
from repro.workloads import ipv4_packet


def probe(controller, label):
    out = controller.switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), 0)
    print(f"  {label}: port {out.port if out else 'drop'}")
    return out


def main() -> None:
    controller = Controller()
    controller.load_base(base_rp4_source())
    populate_base_tables(controller.switch.tables)

    print("production traffic before the trial:")
    before = probe(controller, "baseline")

    print("\nstarting the ECMP trial (in service):")
    plan, _, timing = controller.run_script(
        ecmp_load_script(), {"ecmp.rp4": ecmp_rp4_source()}
    )
    populate_ecmp_tables(controller.switch.tables)
    print(f"  trial live in {timing.total_seconds * 1e3:.1f} ms "
          f"(TSP {plan.rewritten_tsps} rewritten)")
    probe(controller, "trial   ")

    print("\ntrial verdict: fail back.")
    restored = controller.rollback()
    print(f"  rolled back; restored tables (need repopulation): {restored}")

    # Repopulate the restored nexthop table (controller state).
    table = controller.switch.table("nexthop")
    for nh_id, mac in NEXTHOP_MACS.items():
        table.add_entry(
            TableEntry(
                key=(nh_id,),
                action="set_bd_dmac",
                action_data={"bd": 2 if nh_id != 3 else 1, "dmac": parse_mac(mac)},
                tag=1,
            )
        )

    after = probe(controller, "failback")
    assert after is not None and before is not None
    assert after.port == before.port and after.data == before.data
    print("\nforwarding after failback is bit-identical to the baseline")
    print(f"controller history: {controller.history}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Use case C3: event-triggered flow probe (dynamic network visibility).

A temporary telemetry function is installed at runtime: it counts
packets of selected IPv4 flows and, once a flow exceeds its threshold,
marks its packets (``meta.flow_marked``) so the controller can react
(ACL, QoS, ...).  When the investigation ends the probe is offloaded
and its table blocks are recycled -- the "too resource-consuming to
keep permanent" telemetry story from the paper's introduction.

Run:  python examples/flow_probe_telemetry.py
"""

from repro.programs import (
    base_rp4_source,
    flowprobe_load_script,
    flowprobe_rp4_source,
    populate_base_tables,
)
from repro.runtime import Controller
from repro.workloads import ipv4_packet


def main() -> None:
    controller = Controller()
    controller.load_base(base_rp4_source())
    populate_base_tables(controller.switch.tables)

    print("installing the flow probe at runtime:")
    plan, stats, timing = controller.run_script(
        flowprobe_load_script(), {"flowprobe.rp4": flowprobe_rp4_source()}
    )
    print(
        f"  compiled in {timing.compile_seconds * 1e3:.1f} ms; "
        f"TSPs rewritten: {plan.rewritten_tsps}; new table: {plan.new_tables}"
    )

    # Arm the probe for a suspicious flow with a low threshold.
    api = controller.api("flow_probe")
    from repro.net.addresses import parse_ipv4

    suspicious = (parse_ipv4("10.1.0.1"), parse_ipv4("10.2.0.1"))
    api.install(suspicious, "probe_count", {"threshold": 5})
    print("  probing flow 10.1.0.1 -> 10.2.0.1 with threshold 5")

    print("\nreplaying traffic (8 packets of the probed flow):")
    for i in range(8):
        out = controller.switch.inject(
            ipv4_packet("10.1.0.1", "10.2.0.1", sport=5000), 0
        )
        entry = controller.switch.table("flow_probe").entries()[0]
        marked = "MARKED" if entry.counter > 5 else "      "
        print(
            f"  packet {i + 1}: count={entry.counter} {marked} "
            f"-> port {out.port if out else 'drop'}"
        )

    entry = controller.switch.table("flow_probe").entries()[0]
    print(f"\nflow counter reached {entry.counter}; packets beyond the "
          "threshold were marked for controller processing")

    # Background traffic of other flows is not counted.
    controller.switch.inject(ipv4_packet("10.1.0.1", "10.2.7.7"), 0)
    assert entry.counter == 8

    print("\ninvestigation over -- offloading the probe:")
    plan, stats, _ = controller.run_script("unload --func_name flow_probe")
    print(f"  removed stages {plan.removed_stages}, freed {plan.freed_tables}")
    print(f"  switch still forwards: "
          f"{controller.switch.inject(ipv4_packet('10.1.0.1', '10.2.0.5'), 0).port}")


if __name__ == "__main__":
    main()

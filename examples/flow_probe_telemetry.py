#!/usr/bin/env python3
"""Use case C3: event-triggered flow probe (dynamic network visibility).

A temporary telemetry function is installed at runtime: it counts
packets of selected IPv4 flows and, once a flow exceeds its threshold,
marks its packets (``meta.flow_marked``) so the controller can react
(ACL, QoS, ...).  When the investigation ends the probe is offloaded
and its table blocks are recycled -- the "too resource-consuming to
keep permanent" telemetry story from the paper's introduction.

As a finale, the device's own telemetry (``repro.obs``) is turned on
to trace one probed packet end to end: which TSPs it traversed, what
each stage parsed, matched, and executed -- including the probe's own
``flow_probe`` hit.

Run:  python examples/flow_probe_telemetry.py
"""

from repro.programs import (
    base_rp4_source,
    flowprobe_load_script,
    flowprobe_rp4_source,
    populate_base_tables,
)
from repro.runtime import Controller
from repro.workloads import ipv4_packet


def main() -> None:
    controller = Controller()
    controller.load_base(base_rp4_source())
    populate_base_tables(controller.switch.tables)

    print("installing the flow probe at runtime:")
    plan, stats, timing = controller.run_script(
        flowprobe_load_script(), {"flowprobe.rp4": flowprobe_rp4_source()}
    )
    print(
        f"  compiled in {timing.compile_seconds * 1e3:.1f} ms; "
        f"TSPs rewritten: {plan.rewritten_tsps}; new table: {plan.new_tables}"
    )

    # Arm the probe for a suspicious flow with a low threshold.
    api = controller.api("flow_probe")
    from repro.net.addresses import parse_ipv4

    suspicious = (parse_ipv4("10.1.0.1"), parse_ipv4("10.2.0.1"))
    api.install(suspicious, "probe_count", {"threshold": 5})
    print("  probing flow 10.1.0.1 -> 10.2.0.1 with threshold 5")

    print("\nreplaying traffic (8 packets of the probed flow):")
    for i in range(8):
        out = controller.switch.inject(
            ipv4_packet("10.1.0.1", "10.2.0.1", sport=5000), 0
        )
        entry = controller.switch.table("flow_probe").entries()[0]
        marked = "MARKED" if entry.counter > 5 else "      "
        print(
            f"  packet {i + 1}: count={entry.counter} {marked} "
            f"-> port {out.port if out else 'drop'}"
        )

    entry = controller.switch.table("flow_probe").entries()[0]
    print(f"\nflow counter reached {entry.counter}; packets beyond the "
          "threshold were marked for controller processing")

    # Background traffic of other flows is not counted.
    controller.switch.inject(ipv4_packet("10.1.0.1", "10.2.7.7"), 0)
    assert entry.counter == 8

    # Watch the device watch the flow: trace one probed packet through
    # every TSP (parse/match/execute spans, TM events, the egress port).
    print("\ntracing one probed packet through the pipeline:")
    from repro.obs.trace import format_trace

    controller.switch.enable_tracing(capacity=1)
    controller.switch.inject(ipv4_packet("10.1.0.1", "10.2.0.1", sport=5000), 0)
    tracer = controller.switch.disable_tracing()
    (trace,) = tracer.traces
    print("  " + format_trace(trace).replace("\n", "\n  "))
    probe_hits = [
        s for s in trace.root.find("match")
        if s.attrs.get("table") == "flow_probe"
    ]
    assert probe_hits and probe_hits[0].attrs["hit"]

    print("\ninvestigation over -- offloading the probe:")
    plan, stats, _ = controller.run_script("unload --func_name flow_probe")
    print(f"  removed stages {plan.removed_stages}, freed {plan.freed_tables}")
    print(f"  switch still forwards: "
          f"{controller.switch.inject(ipv4_packet('10.1.0.1', '10.2.0.5'), 0).port}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The rP4 design flow for a base design (paper Fig. 3).

P4 is preferred for base designs ("P4 code is easier to write and many
proven designs written in P4 exist").  rp4fc transforms the P4 program
-- via HLIR -- into semantically equivalent rP4 plus the runtime table
APIs; rp4bc then maps the rP4 onto TSP templates.  The same P4 also
configures the PISA baseline, and both devices forward identically.

Run:  python examples/p4_to_rp4_flow.py
"""

from repro.compiler.rp4bc import compile_base
from repro.compiler.rp4fc import rp4fc
from repro.ipsa.switch import IpsaSwitch
from repro.p4 import build_hlir, parse_p4
from repro.pisa.switch import PisaSwitch
from repro.programs import base_p4_source, populate_base_tables
from repro.workloads import ipv4_packet, ipv6_packet


def main() -> None:
    p4_source = base_p4_source()
    print(f"P4 base design: {len(p4_source.splitlines())} lines")

    # Front end: P4 -> HLIR -> rP4 + table APIs.
    hlir = build_hlir(parse_p4(p4_source))
    result = rp4fc(hlir)
    print(f"rp4fc: {len(result.rp4_source.splitlines())} lines of rP4, "
          f"{len(result.program.tables)} table APIs generated")
    print("\nfirst lines of the generated rP4:")
    for line in result.rp4_source.splitlines()[:12]:
        print("  " + line)
    print("  ...")

    # Back end: rP4 -> TSP templates.
    design = compile_base(result.program)
    print(f"\nrp4bc: mapped {len(design.program.all_stages())} logical stages "
          f"onto {design.plan.tsp_count} TSPs")

    # The same design runs on both architectures.
    ipsa = IpsaSwitch()
    ipsa.load_config(design.config)
    populate_base_tables(ipsa.tables)

    pisa = PisaSwitch(n_stages=8)
    pisa.load(hlir)
    populate_base_tables(pisa.tables)

    print("\nequivalence check (PISA vs IPSA on identical packets):")
    for label, data in [
        ("v4 routed", ipv4_packet("10.1.0.1", "10.2.0.5")),
        ("v6 routed", ipv6_packet("2001:db8:1::1", "2001:db8:2::9")),
        ("v4 default", ipv4_packet("10.1.0.1", "198.51.100.1")),
    ]:
        pisa_out = pisa.inject(data, 0)
        ipsa_out = ipsa.inject(data, 0)
        same = (
            (pisa_out is None and ipsa_out is None)
            or (
                pisa_out is not None
                and ipsa_out is not None
                and pisa_out.port == ipsa_out.port
                and pisa_out.data == ipsa_out.data
            )
        )
        print(f"  {label}: {'bit-identical' if same else 'MISMATCH'}")
        assert same


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""A two-node SRv6 segment chain across two ipbm switches.

Node A and node B each run the base design; SRv6 is loaded at runtime
on both.  A packet enters node A with outer DA = A's SID and segment
list [final-destination, B's SID] (RFC 8754 reverse order,
segments_left = 2).  A executes End (advance to B's SID), the wire
carries it to B, B executes End (advance to the final destination),
and B routes it out -- a complete source-routed path built from two
independent in-situ updates.

Run:  python examples/srv6_two_node_chain.py
"""

import ipaddress

from repro.net.addresses import parse_ipv6, parse_mac
from repro.programs import (
    base_rp4_source,
    populate_base_tables,
    srv6_load_script,
    srv6_rp4_source,
)
from repro.programs.base_l2l3 import ROUTER_MAC
from repro.runtime import Controller
from repro.workloads.builders import srv6_packet

SID_A = "2001:db8:100::1"
SID_B = "2001:db8:100::2"
FINAL = "2001:db8:2::42"


def make_node(name):
    controller = Controller()
    controller.load_base(base_rp4_source())
    populate_base_tables(controller.switch.tables)
    controller.run_script(srv6_load_script(), {"srv6.rp4": srv6_rp4_source()})
    print(f"node {name}: SRv6 loaded in service")
    return controller


def outer_da(data):
    return str(ipaddress.IPv6Address(data[14 + 24 : 14 + 40]))


def main() -> None:
    node_a = make_node("A")
    node_b = make_node("B")

    # Node A terminates SID_A and routes the SID space toward node B;
    # node B terminates SID_B and routes the final destination onward.
    node_a.api("local_sid").install((parse_ipv6(SID_A),), "srv6_end_act", {})
    node_a.api("ipv6_lpm").install(
        (1, (parse_ipv6("2001:db8:100::"), 48)), "set_nexthop", {"nexthop": 2}
    )
    node_b.api("local_sid").install((parse_ipv6(SID_B),), "srv6_end_act", {})

    packet = srv6_packet(
        src="2001:db8:9::1",
        active_sid=SID_A,
        segments=[FINAL, SID_B],  # segment_list[0] is the last segment
        segments_left=2,
        inner_dst=FINAL,
    )
    print(f"\ningress at node A: outer DA = {outer_da(packet)}, segments_left=2")

    out_a = node_a.switch.inject(packet, 0)
    assert out_a is not None
    assert outer_da(out_a.data) == SID_B
    print(f"node A End  -> outer DA = {outer_da(out_a.data)}, "
          f"egress port {out_a.port}")

    # The wire toward B: next-hop MAC becomes B's router MAC.
    wire = bytearray(out_a.data)
    wire[0:6] = parse_mac(ROUTER_MAC).to_bytes(6, "big")

    out_b = node_b.switch.inject(bytes(wire), 0)
    assert out_b is not None
    assert outer_da(out_b.data) == str(ipaddress.IPv6Address(FINAL))
    print(f"node B End  -> outer DA = {outer_da(out_b.data)}, "
          f"egress port {out_b.port}")
    print("\nthe source-routed path A -> B -> destination was built "
          "entirely from runtime updates")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Use case C1: load ECMP into a *running* switch (paper Fig. 5(a)/(b)).

Demonstrates the in-situ programming loop: traffic flows on the base
design, the ECMP function is compiled incrementally and downloaded as
one TSP template, and flows immediately spread across the equal-cost
members -- without reloading the switch or touching existing tables.

Run:  python examples/ecmp_runtime_update.py
"""

from collections import Counter

from repro.programs import (
    base_rp4_source,
    ecmp_load_script,
    ecmp_rp4_source,
    populate_base_tables,
    populate_ecmp_tables,
)
from repro.runtime import Controller
from repro.workloads import ipv4_packet


def send_flows(controller, n_flows=60):
    trace = [
        (ipv4_packet("10.1.0.1", f"10.2.0.{flow + 1}", sport=1000 + flow), 0)
        for flow in range(n_flows)
    ]
    batch = controller.switch.inject_batch(trace)
    return Counter(out.port for out in batch if out is not None)


def main() -> None:
    controller = Controller()
    controller.load_base(base_rp4_source())
    populate_base_tables(controller.switch.tables)

    print("before the update, every flow to 10.2/16 uses one next hop:")
    print(f"  egress distribution: {dict(send_flows(controller))}")

    print("\nthe rP4 snippet (paper Fig. 5(a)):")
    print("\n".join("  " + l for l in ecmp_rp4_source().strip().splitlines()[:18]))
    print("  ...")
    print("\nthe load script (paper Fig. 5(b)):")
    print("\n".join("  " + l for l in ecmp_load_script().strip().splitlines()))

    plan, stats, timing = controller.run_script(
        ecmp_load_script(), {"ecmp.rp4": ecmp_rp4_source()}
    )
    print(
        f"\nin-situ update: compiled in {timing.compile_seconds * 1e3:.1f} ms, "
        f"loaded in {timing.load_seconds * 1e3:.1f} ms"
    )
    print(f"  TSP templates rewritten: {plan.rewritten_tsps}")
    print(f"  new tables: {plan.new_tables} (allocated in the memory pool)")
    print(f"  freed tables: {plan.freed_tables} (blocks recycled)")
    print(f"  pipeline stalled for {stats.stall_seconds * 1e3:.2f} ms "
          f"({stats.drained_packets} packets drained)")

    # Only the new tables need population.
    populate_ecmp_tables(controller.switch.tables)

    print("\nafter the update, flows hash across the ECMP members:")
    distribution = send_flows(controller)
    print(f"  egress distribution: {dict(distribution)}")
    assert len(distribution) > 1, "ECMP should spread flows"

    print("\nexisting state survived the update:")
    print(f"  ipv4_lpm still holds {len(controller.switch.table('ipv4_lpm'))} routes")


if __name__ == "__main__":
    main()

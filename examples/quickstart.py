#!/usr/bin/env python3
"""Quickstart: compile the L2/L3 base design, load it onto the ipbm
behavioral switch, and forward a few packets.

Run:  python examples/quickstart.py
"""

from repro.bench.mapping import format_mapping
from repro.programs import base_rp4_source, populate_base_tables
from repro.runtime import Controller
from repro.workloads import ipv4_packet, ipv6_packet


def main() -> None:
    # 1. A controller owns the rP4 design flow and a live IPSA switch.
    controller = Controller()
    timing = controller.load_base(base_rp4_source())
    print(
        f"base design compiled in {timing.compile_seconds * 1e3:.1f} ms, "
        f"loaded in {timing.load_seconds * 1e3:.1f} ms"
    )

    # 2. rp4bc mapped the ten logical stages (A..J) onto seven TSPs.
    print()
    print(format_mapping(controller.design, "TSP mapping"))

    # 3. Populate the reference topology (4 ports, 2 bridge domains,
    #    v4/v6 routes, next hops).
    populate_base_tables(controller.switch.tables)

    # 4. Forward traffic.
    print("\nforwarding:")
    probes = [
        ("IPv4 10.1.0.1 -> 10.2.0.5", ipv4_packet("10.1.0.1", "10.2.0.5")),
        ("IPv4 10.1.0.1 -> default route", ipv4_packet("10.1.0.1", "192.0.2.9")),
        ("IPv6 2001:db8:1::1 -> 2001:db8:2::9",
         ipv6_packet("2001:db8:1::1", "2001:db8:2::9")),
    ]
    for label, data in probes:
        out = controller.switch.inject(data, port=0)
        if out is None:
            print(f"  {label}: dropped")
        else:
            print(f"  {label}: out port {out.port} ({len(out.data)} bytes)")

    # 5. Table statistics through the runtime APIs.
    print("\ntable hit counts:")
    for name in ("port_map", "l2_l3", "ipv4_lpm", "ipv6_lpm", "nexthop", "dmac"):
        table = controller.switch.table(name)
        print(f"  {name:12s} hits={table.hit_count:3d} misses={table.miss_count}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Fleet rollout: upgrade a three-node fabric one switch at a time.

The introduction's vision -- "live trials in production networks ...
with reliable failback" -- needs updates that do not take the network
down.  Here a linear fabric A - B - C forwards traffic continuously
while the flow-probe function rolls out node by node; every packet
sent during the rollout is delivered.

Run:  python examples/fabric_rollout.py
"""

from repro.net.addresses import parse_mac
from repro.programs import (
    base_rp4_source,
    flowprobe_load_script,
    flowprobe_rp4_source,
    populate_base_tables,
    populate_flowprobe_tables,
)
from repro.programs.base_l2l3 import ROUTER_MAC
from repro.runtime import Controller, Fabric
from repro.tables.table import TableEntry
from repro.workloads import ipv4_packet


def base_node() -> Controller:
    controller = Controller()
    controller.load_base(base_rp4_source())
    populate_base_tables(controller.switch.tables)
    return controller


def point_nexthop_at_router(controller: Controller) -> None:
    """Make next hop 2 resolve to the downstream router's MAC."""
    nexthop = controller.switch.table("nexthop")
    old = next(e for e in nexthop.entries() if e.key == (2,))
    nexthop.remove_entry(old)
    nexthop.add_entry(
        TableEntry(
            key=(2,),
            action="set_bd_dmac",
            action_data={"bd": 2, "dmac": parse_mac(ROUTER_MAC)},
            tag=1,
        )
    )
    controller.switch.table("dmac").add_entry(
        TableEntry(
            key=(2, parse_mac(ROUTER_MAC)),
            action="set_egress_port",
            action_data={"port": 3},
            tag=1,
        )
    )


def main() -> None:
    fabric = Fabric()
    for name in ("A", "B", "C"):
        fabric.add_node(name, base_node())
    # A:3 -> B:0, B:3 -> C:0; C delivers at its edge port.
    point_nexthop_at_router(fabric.node("A"))
    point_nexthop_at_router(fabric.node("B"))
    fabric.wire("A", 3, "B", 0)
    fabric.wire("B", 3, "C", 0)

    def burst(label, n=20):
        deliveries = [
            fabric.send("A", ipv4_packet("10.1.0.1", "10.2.0.1", sport=5000 + i), 0)
            for i in range(n)
        ]
        delivered = [d for d in deliveries if d is not None]
        paths = {d.path for d in delivered}
        print(f"  {label}: {len(delivered)}/{n} delivered via {paths}")
        assert len(delivered) == n
        return delivered

    print("traffic on the base fabric:")
    burst("before rollout")

    sources = {"flowprobe.rp4": flowprobe_rp4_source()}
    for name in ("A", "B", "C"):
        timings = fabric.rollout(flowprobe_load_script(), sources, nodes=[name])
        populate_flowprobe_tables(fabric.node(name).switch.tables)
        print(f"\nnode {name} upgraded in {timings[name] * 1e3:.1f} ms; "
              "traffic during partial rollout:")
        burst(f"after {name}")

    counts = {
        name: fabric.node(name).switch.table("flow_probe").entries()[0].counter
        for name in ("A", "B", "C")
    }
    print(f"\nper-node probe counters for the watched flow: {counts}")
    assert counts["A"] >= counts["B"] >= counts["C"] > 0
    print("every node now counts the flow; not one packet was lost "
          "during the rollout")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Regenerate every table and figure of the paper in one run.

Prints paper-style output for Fig. 4, Table 1, the Sec.-5 throughput
numbers, Table 2, Table 3, and Fig. 6.  (The pytest benchmarks in
``benchmarks/`` do the same with timing statistics and shape
assertions; this script is the human-readable tour.)

Run:  python examples/reproduce_paper.py
"""

from repro.bench.mapping import fig4_mapping, format_mapping
from repro.bench.report import format_table
from repro.bench.table1 import hardware_flow_model, measure_bmv2_flow, measure_ipbm_flow
from repro.compiler.rp4bc import compile_base
from repro.hw import (
    ipsa_power,
    ipsa_resources,
    ipsa_throughput,
    pisa_power,
    pisa_resources,
    pisa_throughput,
    power_vs_stages,
)
from repro.p4 import build_hlir, parse_p4
from repro.programs import (
    base_p4_source,
    base_rp4_source,
    populate_base_tables,
)
from repro.workloads import use_case_trace


def banner(text):
    print("\n" + "=" * 66)
    print(text)
    print("=" * 66)


def fig4():
    banner("Fig. 4 -- the packet processing pipeline and its TSP mapping")
    for name, design in fig4_mapping().items():
        print(format_mapping(design, name))
        print()


def table1():
    banner("Table 1 -- compiling and loading time comparison")
    rows = []
    for case in ("C1", "C2", "C3"):
        bmv2 = measure_bmv2_flow(case)
        ipbm = measure_ipbm_flow(case)
        rows += [hardware_flow_model(bmv2), hardware_flow_model(ipbm), bmv2, ipbm]
    print(
        format_table(
            ["flow", "case", "t_C (ms)", "t_L (ms)"],
            [
                (r.flow, r.case, f"{r.t_compile_ms:.1f}", f"{r.t_load_ms:.2f}")
                for r in rows
            ],
        )
    )


def throughput():
    banner("Sec. 5 'Throughput' -- modeled Mpps at 200 MHz")
    import sys
    sys.path.insert(0, "benchmarks")
    from conftest import make_ipsa_for_case, make_pisa_for_case

    rows = []
    for case in ("C1", "C2", "C3"):
        trace = use_case_trace(case, 300)
        pisa = pisa_throughput(make_pisa_for_case(case), trace)
        controller = make_ipsa_for_case(case)
        ipsa = ipsa_throughput(controller.switch, controller.design, trace)
        rows.append(
            (case, f"{pisa.model_mpps:.2f}", f"{ipsa.model_mpps:.2f}",
             f"{pisa.model_mpps / ipsa.model_mpps:.2f}x")
        )
    print(format_table(["case", "PISA Mpps", "IPSA Mpps", "ratio"], rows))


def table2():
    banner("Table 2 -- FPGA resource comparison")
    hlir = build_hlir(parse_p4(base_p4_source()))
    design = compile_base(base_rp4_source())
    rows = []
    for report in (pisa_resources(hlir), ipsa_resources(design)):
        for component, lut, ff in report.rows():
            rows.append(
                (report.architecture, component, f"{lut:.2f}%", f"{ff:.2f}%")
            )
    print(format_table(["arch", "component", "LUT", "FF"], rows))


def table3_and_fig6():
    banner("Table 3 + Fig. 6 -- power")
    print(f"PISA (8 physical stages, always powered): {pisa_power(8).total:.2f} W")
    print(f"IPSA (7 active TSPs, as the use cases need): {ipsa_power(7).total:.2f} W")
    print(f"IPSA at full occupancy: {ipsa_power(8).total:.2f} W "
          f"(+{(ipsa_power(8).total / pisa_power(8).total - 1):.1%})")
    print()
    print(
        format_table(
            ["effective stages", "PISA (W)", "IPSA (W)"],
            [(k, f"{p:.2f}", f"{i:.2f}") for k, p, i in power_vs_stages()],
            title="Fig. 6 series",
        )
    )


def main() -> None:
    fig4()
    table1()
    throughput()
    table2()
    table3_and_fig6()
    print("\nSee EXPERIMENTS.md for the paper-vs-measured discussion of "
          "every artifact above.")


if __name__ == "__main__":
    main()

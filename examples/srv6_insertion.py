#!/usr/bin/env python3
"""Use case C2: teach a running switch a brand-new protocol (SRv6).

The SRH header does not exist in the base design.  The load script
(paper Fig. 5(c)) links the new header into the parse graph at runtime
with ``link_header`` commands -- the capability PISA fundamentally
lacks, because its front-end parser is burned in at compile time.

Run:  python examples/srv6_insertion.py
"""

import ipaddress

from repro.programs import (
    base_rp4_source,
    populate_base_tables,
    populate_srv6_tables,
    srv6_load_script,
    srv6_rp4_source,
)
from repro.runtime import Controller
from repro.workloads import srv6_packet


def describe(data: bytes, label: str) -> None:
    dst = ipaddress.IPv6Address(data[14 + 24 : 14 + 40])
    segments_left = data[14 + 40 + 3] if len(data) > 14 + 40 + 3 else "?"
    print(f"  {label}: outer DA={dst}, segments_left={segments_left}")


def main() -> None:
    controller = Controller()
    controller.load_base(base_rp4_source())
    populate_base_tables(controller.switch.tables)

    packet = srv6_packet(
        src="2001:db8:9::1",
        active_sid="2001:db8:100::1",  # one of this node's SIDs
        segments=["2001:db8:2::1", "2001:db8:100::1"],
        segments_left=1,
    )
    print("an SRv6 packet arrives whose active SID is this node:")
    describe(packet, "in ")

    out = controller.switch.inject(packet, 0)
    print("\nbefore the update the switch cannot parse the SRH;")
    print(
        "  the packet falls through as an unroutable IPv6 destination -> "
        + (f"misrouted to port {out.port}" if out else "dropped")
    )

    print("\nloading the SRv6 function (paper Fig. 5(c)):")
    print("\n".join("  " + l for l in srv6_load_script().strip().splitlines()))
    plan, stats, timing = controller.run_script(
        srv6_load_script(), {"srv6.rp4": srv6_rp4_source()}
    )
    print(
        f"\ncompiled in {timing.compile_seconds * 1e3:.1f} ms; "
        f"{stats.links_added} header links added at runtime; "
        f"TSPs rewritten: {plan.rewritten_tsps}"
    )
    populate_srv6_tables(controller.switch.tables)

    out = controller.switch.inject(packet, 0)
    assert out is not None
    print("\nafter the update the node executes SRv6 End behavior:")
    describe(out.data, "out")
    print(f"  forwarded on port {out.port} toward the next segment")

    # Plain L3 forwarding is untouched ("the linkage between routable
    # and ipvx is reserved").
    from repro.workloads import ipv6_packet

    plain = controller.switch.inject(
        ipv6_packet("2001:db8:1::1", "2001:db8:2::9"), 0
    )
    assert plain is not None
    print(f"\nplain IPv6 traffic still forwards normally (port {plain.port})")

    # And the function can be offloaded again.
    controller.run_script("unload --func_name srv6")
    print("srv6 function offloaded; its tables were recycled:",
          "local_sid" not in controller.switch.tables)


if __name__ == "__main__":
    main()

"""Minimal self-contained PEP 517 build backend.

The reproduction environment is offline and lacks the ``wheel``
package, so the stock setuptools backend cannot build (editable)
wheels.  A wheel is just a zip archive with a dist-info directory;
this backend creates one with the standard library only, supporting
``pip install .`` and ``pip install -e .``.
"""

from __future__ import annotations

import base64
import hashlib
import os
import zipfile

NAME = "repro"
VERSION = "0.1.0"
DIST = f"{NAME}-{VERSION}"
TAG = "py3-none-any"
ROOT = os.path.dirname(os.path.abspath(__file__))

METADATA = f"""\
Metadata-Version: 2.1
Name: {NAME}
Version: {VERSION}
Summary: Reproduction of 'In-situ Programmable Switching using rP4' (HotNets'21)
Requires-Python: >=3.9
Requires-Dist: numpy
Provides-Extra: test
Requires-Dist: pytest ; extra == 'test'
Requires-Dist: pytest-benchmark ; extra == 'test'
Requires-Dist: hypothesis ; extra == 'test'
"""

WHEEL_META = f"""\
Wheel-Version: 1.0
Generator: repro-build-backend
Root-Is-Purelib: true
Tag: {TAG}
"""

ENTRY_POINTS = """\
[console_scripts]
rp4bc = repro.compiler.cli:rp4bc_main
rp4fc = repro.compiler.cli:rp4fc_main
ipbm-ctl = repro.runtime.cli:main
"""


def _record_line(name: str, data: bytes) -> str:
    digest = base64.urlsafe_b64encode(hashlib.sha256(data).digest())
    return f"{name},sha256={digest.rstrip(b'=').decode()},{len(data)}"


def _write_wheel(wheel_directory: str, payload: "dict[str, bytes]") -> str:
    wheel_name = f"{DIST}-{TAG}.whl"
    dist_info = f"{DIST}.dist-info"
    files = dict(payload)
    files[f"{dist_info}/METADATA"] = METADATA.encode()
    files[f"{dist_info}/WHEEL"] = WHEEL_META.encode()
    files[f"{dist_info}/entry_points.txt"] = ENTRY_POINTS.encode()
    record = [_record_line(name, data) for name, data in sorted(files.items())]
    record.append(f"{dist_info}/RECORD,,")
    files[f"{dist_info}/RECORD"] = ("\n".join(record) + "\n").encode()
    path = os.path.join(wheel_directory, wheel_name)
    with zipfile.ZipFile(path, "w", zipfile.ZIP_DEFLATED) as zf:
        for name in sorted(files):
            zf.writestr(name, files[name])
    return wheel_name


def build_wheel(wheel_directory, config_settings=None, metadata_directory=None):
    payload = {}
    src = os.path.join(ROOT, "src")
    for dirpath, dirnames, filenames in os.walk(src):
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for filename in filenames:
            if not filename.endswith((".py", ".rp4", ".p4", ".json")):
                continue
            full = os.path.join(dirpath, filename)
            rel = os.path.relpath(full, src).replace(os.sep, "/")
            with open(full, "rb") as fh:
                payload[rel] = fh.read()
    return _write_wheel(wheel_directory, payload)


def build_editable(wheel_directory, config_settings=None, metadata_directory=None):
    pth = (os.path.join(ROOT, "src") + "\n").encode()
    return _write_wheel(wheel_directory, {f"_{NAME}_editable.pth": pth})


def build_sdist(sdist_directory, config_settings=None):
    raise NotImplementedError("sdist builds are not supported offline")

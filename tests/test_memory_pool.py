"""Unit tests for blocks, virtualization, and the memory pool."""

import pytest

from repro.memory.blocks import MemoryBlock, MemoryKind
from repro.memory.pool import AllocationError, MemoryPool
from repro.memory.virtualization import LogicalTableMapping, blocks_required


class TestMemoryBlock:
    def test_allocate_release(self):
        b = MemoryBlock(0, MemoryKind.SRAM, 128, 1024)
        assert b.free
        b.allocate("fib")
        assert not b.free and b.owner == "fib"
        b.release()
        assert b.free

    def test_double_allocate_raises(self):
        b = MemoryBlock(0, MemoryKind.SRAM, 128, 1024)
        b.allocate("a")
        with pytest.raises(RuntimeError):
            b.allocate("b")

    def test_double_release_raises(self):
        b = MemoryBlock(0, MemoryKind.SRAM, 128, 1024)
        with pytest.raises(RuntimeError):
            b.release()

    def test_bits(self):
        assert MemoryBlock(0, MemoryKind.SRAM, 128, 1024).bits == 128 * 1024

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            MemoryBlock(0, MemoryKind.SRAM, 0, 1024)


class TestBlocksRequired:
    def test_paper_rule(self):
        # ceil(W/w) * ceil(D/d)
        assert blocks_required(128, 1024, 128, 1024) == 1
        assert blocks_required(129, 1024, 128, 1024) == 2
        assert blocks_required(128, 1025, 128, 1024) == 2
        assert blocks_required(200, 3000, 128, 1024) == 2 * 3

    def test_small_table_still_needs_one(self):
        assert blocks_required(1, 1, 128, 1024) == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            blocks_required(0, 1, 128, 1024)
        with pytest.raises(ValueError):
            blocks_required(1, 1, 0, 1024)


class TestLogicalTableMapping:
    def make(self, width=200, depth=3000):
        m = LogicalTableMapping(
            table="fib",
            kind=MemoryKind.SRAM,
            table_width=width,
            table_depth=depth,
            block_width=128,
            block_depth=1024,
        )
        m.block_ids = list(range(m.total_blocks))
        return m

    def test_shape(self):
        m = self.make()
        assert m.width_blocks == 2 and m.depth_blocks == 3
        assert m.total_blocks == 6

    def test_validate(self):
        m = self.make()
        m.block_ids = [1]
        with pytest.raises(ValueError):
            m.validate()

    def test_blocks_for_entry(self):
        m = self.make()
        assert m.blocks_for_entry(0) == [0, 1]
        assert m.blocks_for_entry(1024) == [2, 3]
        assert m.blocks_for_entry(2999) == [4, 5]

    def test_entry_out_of_range(self):
        with pytest.raises(IndexError):
            self.make().blocks_for_entry(3000)

    def test_memory_accesses_per_lookup(self):
        # The Sec. 5 throughput penalty: entry wider than the bus.
        m = self.make(width=200)
        assert m.memory_accesses_per_lookup(256) == 1
        assert m.memory_accesses_per_lookup(128) == 2
        assert m.memory_accesses_per_lookup(64) == 4

    def test_utilization(self):
        m = self.make(width=128, depth=1024)
        assert m.utilization() == 1.0
        m2 = self.make(width=129, depth=1024)
        assert 0 < m2.utilization() < 1


class TestMemoryPool:
    def test_initial_inventory(self):
        pool = MemoryPool(sram_blocks=8, tcam_blocks=2)
        assert pool.free_count(MemoryKind.SRAM) == 8
        assert pool.free_count(MemoryKind.TCAM) == 2
        assert pool.utilization() == 0.0

    def test_allocate_and_release(self):
        pool = MemoryPool(sram_blocks=8, tcam_blocks=2, block_width=128, block_depth=1024)
        pool.allocate_tables([("fib", MemoryKind.SRAM, 200, 2000, [0])])
        mapping = pool.mapping("fib")
        assert mapping.total_blocks == 4
        assert pool.free_count(MemoryKind.SRAM) == 4
        freed = pool.release_table("fib")
        assert freed == 4
        assert pool.free_count(MemoryKind.SRAM) == 8

    def test_all_or_nothing(self):
        pool = MemoryPool(sram_blocks=2, tcam_blocks=0)
        with pytest.raises(AllocationError):
            pool.allocate_tables(
                [
                    ("a", MemoryKind.SRAM, 128, 1024, [0]),
                    ("b", MemoryKind.SRAM, 128, 3 * 1024, [0]),
                ]
            )
        assert pool.free_count(MemoryKind.SRAM) == 2

    def test_duplicate_allocation_rejected(self):
        pool = MemoryPool(sram_blocks=8, tcam_blocks=0)
        pool.allocate_tables([("fib", MemoryKind.SRAM, 128, 1024, [0])])
        with pytest.raises(AllocationError):
            pool.allocate_tables([("fib", MemoryKind.SRAM, 128, 1024, [0])])

    def test_tcam_and_sram_independent(self):
        pool = MemoryPool(sram_blocks=4, tcam_blocks=4)
        pool.allocate_tables([("acl", MemoryKind.TCAM, 128, 1024, [0])])
        assert pool.free_count(MemoryKind.SRAM) == 4
        assert pool.free_count(MemoryKind.TCAM) == 3

    def test_clustered_allocation(self):
        pool = MemoryPool(sram_blocks=8, tcam_blocks=0, clusters=2)
        pool.allocate_tables([("fib", MemoryKind.SRAM, 128, 2048, [1])])
        assert all(
            b.cluster == 1 for b in pool.blocks if b.owner == "fib"
        )

    def test_migrate_table(self):
        pool = MemoryPool(sram_blocks=8, tcam_blocks=0, clusters=2)
        pool.allocate_tables([("fib", MemoryKind.SRAM, 128, 2048, [0])])
        moved = pool.migrate_table("fib", [1])
        assert moved == 2
        assert all(b.cluster == 1 for b in pool.blocks if b.owner == "fib")

    def test_migrate_rolls_back_on_failure(self):
        pool = MemoryPool(sram_blocks=4, tcam_blocks=0, clusters=2)
        # Cluster 1 has 2 blocks; fill them so migration must fail.
        pool.allocate_tables([("big", MemoryKind.SRAM, 128, 2048, [1])])
        pool.allocate_tables([("fib", MemoryKind.SRAM, 128, 2048, [0])])
        with pytest.raises(AllocationError):
            pool.migrate_table("fib", [1])
        assert "fib" in pool.mappings()

    def test_unknown_table_mapping_raises(self):
        with pytest.raises(KeyError):
            MemoryPool().mapping("nope")

    def test_greedy_mode(self):
        pool = MemoryPool(sram_blocks=8, tcam_blocks=0)
        pool.allocate_tables(
            [("a", MemoryKind.SRAM, 128, 1024, [0])], exact=False
        )
        assert pool.mapping("a").total_blocks == 1

"""Stress test: behavioral switch correctness at routing-table scale.

Install thousands of random prefixes through the runtime API and
verify (sampled) lookups against a brute-force longest-prefix scan --
the whole pipeline, not just the LPM engine.
"""

import numpy as np
import pytest

from repro.compiler.rp4bc import TargetSpec
from repro.net.addresses import format_ipv4
from repro.programs import base_rp4_source, populate_base_tables
from repro.runtime import Controller
from repro.workloads import ipv4_packet

N_ROUTES = 3000
N_PROBES = 150


@pytest.fixture(scope="module")
def loaded():
    # A pool big enough for the base design (table sizes unchanged --
    # entries, not capacity, are what we scale here).
    controller = Controller(TargetSpec(sram_blocks=128))
    controller.load_base(base_rp4_source())
    populate_base_tables(controller.switch.tables)

    rng = np.random.default_rng(77)
    api = controller.api("ipv4_lpm")
    routes = []
    seen = set()
    while len(routes) < N_ROUTES:
        plen = int(rng.integers(8, 29))
        value = int(rng.integers(0, 1 << 32)) & (~0 << (32 - plen)) & 0xFFFFFFFF
        if (value, plen) in seen:
            continue
        seen.add((value, plen))
        nh = 1 + (len(routes) % 3)  # spread over the 3 next hops
        api.install((1, (value, plen)), "set_nexthop", {"nexthop": nh})
        routes.append((value, plen, nh))
    return controller, routes, rng


def brute_force(routes, probe):
    best = None
    for value, plen, nh in routes:
        shift = 32 - plen
        if (probe >> shift) == (value >> shift):
            if best is None or plen > best[0]:
                best = (plen, nh)
    return best


class TestRouteScale:
    def test_table_occupancy(self, loaded):
        controller, routes, _ = loaded
        # +3 base routes installed by populate_base_tables
        assert len(controller.switch.table("ipv4_lpm")) == N_ROUTES + 3

    def test_sampled_lookups_match_brute_force(self, loaded):
        controller, routes, rng = loaded
        # Include the base-design routes in the oracle.
        from repro.net.addresses import parse_ipv4

        oracle_routes = routes + [
            (parse_ipv4("10.1.0.0"), 16, 1),
            (parse_ipv4("10.2.0.0"), 16, 2),
            (0, 0, 3),
        ]
        nexthop_ports = {1: 2, 2: 3, 3: 1}
        checked = 0
        for _ in range(N_PROBES):
            probe = int(rng.integers(0, 1 << 32))
            expected = brute_force(oracle_routes, probe)
            assert expected is not None  # default route always matches
            # Host routes (10.1.0.1) would shadow; skip that address.
            if probe == parse_ipv4("10.1.0.1"):
                continue
            out = controller.switch.inject(
                ipv4_packet("10.1.0.9", format_ipv4(probe)), 0
            )
            assert out is not None, format_ipv4(probe)
            assert out.port == nexthop_ports[expected[1]], format_ipv4(probe)
            checked += 1
        assert checked > N_PROBES * 0.9

    def test_pipeline_throughput_survives_scale(self, loaded):
        controller, _, _ = loaded
        before = controller.switch.packets_out
        for i in range(100):
            controller.switch.inject(
                ipv4_packet("10.1.0.9", f"10.2.0.{i + 1}"), 0
            )
        assert controller.switch.packets_out == before + 100

"""Tests for statistics snapshots and the back-pressure drain protocol."""

import json

import pytest

from repro.programs import (
    base_rp4_source,
    ecmp_load_script,
    ecmp_rp4_source,
    populate_base_tables,
    populate_ecmp_tables,
)
from repro.runtime import Controller
from repro.runtime.stats import diff, format_stats, snapshot
from repro.workloads import ipv4_packet


@pytest.fixture
def controller():
    ctl = Controller()
    ctl.load_base(base_rp4_source())
    populate_base_tables(ctl.switch.tables)
    return ctl


class TestSnapshot:
    def test_json_serializable(self, controller):
        stats = snapshot(controller.switch)
        json.dumps(stats)

    def test_device_counters(self, controller):
        controller.switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), 0)
        stats = snapshot(controller.switch)
        assert stats["device"]["packets_in"] == 1
        assert stats["device"]["packets_out"] == 1
        assert stats["device"]["active_tsps"] == 7

    def test_per_tsp_rows(self, controller):
        stats = snapshot(controller.switch)
        assert len(stats["tsps"]) == 8
        bypassed = [t for t in stats["tsps"] if t["state"] == "bypassed"]
        assert len(bypassed) == 1 and bypassed[0]["index"] == 6

    def test_table_rows(self, controller):
        stats = snapshot(controller.switch)
        assert stats["tables"]["ipv4_lpm"]["entries"] == 3
        assert stats["tables"]["ipv4_lpm"]["size"] == 4096

    def test_diff_counts_deltas(self, controller):
        before = snapshot(controller.switch)
        for _ in range(3):
            controller.switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), 0)
        delta = diff(before, snapshot(controller.switch))
        assert delta["device"]["packets_in"] == 3
        assert delta["tables"]["ipv4_lpm"]["hits"] == 3
        assert delta["tables"]["ipv6_lpm"]["hits"] == 0

    def test_format(self, controller):
        controller.switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), 0)
        text = format_stats(snapshot(controller.switch))
        assert "device: in=1" in text
        assert "table ipv4_lpm" in text
        assert "TM:" in text


class TestBackPressureDrain:
    def test_queued_packets_wait_out_the_update(self, controller):
        switch = controller.switch
        for i in range(5):
            switch.enqueue(ipv4_packet("10.1.0.1", f"10.2.0.{i + 1}"), 0)
        assert len(switch.rx_queue) == 5

        _, stats, _ = controller.run_script(
            ecmp_load_script(), {"ecmp.rp4": ecmp_rp4_source()}
        )
        # Held upstream during the stall, not lost and not processed.
        assert stats.held_packets == 5
        assert len(switch.rx_queue) == 5
        assert switch.packets_in == 0

        populate_ecmp_tables(switch.tables)
        outputs = switch.pump()
        # The held packets were processed by the NEW pipeline.
        assert len(outputs) == 5
        assert {o.port for o in outputs} <= {2, 3}
        assert switch.tables["ecmp_ipv4"].hit_count == 5

    def test_pump_respects_pause(self, controller):
        switch = controller.switch
        switch.enqueue(ipv4_packet("10.1.0.1", "10.2.0.5"), 0)
        switch.paused = True
        assert switch.pump() == []
        switch.paused = False
        assert len(switch.pump()) == 1

    def test_pump_limit(self, controller):
        switch = controller.switch
        for i in range(4):
            switch.enqueue(ipv4_packet("10.1.0.1", "10.2.0.5", sport=i + 1), 0)
        assert len(switch.pump(limit=3)) == 3
        assert len(switch.rx_queue) == 1

    def test_update_stall_is_bounded(self, controller):
        _, stats, _ = controller.run_script(
            ecmp_load_script(), {"ecmp.rp4": ecmp_rp4_source()}
        )
        assert stats.stall_seconds < 0.1
        assert not controller.switch.paused


class TestExternStats:
    def test_sketch_and_meter_sections(self, controller):
        from repro.programs import (
            hhsketch_load_script,
            hhsketch_rp4_source,
            populate_hhsketch_tables,
        )

        controller.run_script(
            hhsketch_load_script(), {"hhsketch.rp4": hhsketch_rp4_source()}
        )
        populate_hhsketch_tables(controller.switch.tables)
        controller.switch.meters.configure("demo", rate=1, burst=2)
        controller.switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), 0)
        stats = snapshot(controller.switch)
        assert stats["sketches"]["hh_update"]["updates"] == 1
        assert stats["meters"]["demo"]["rate"] == 1
        import json

        json.dumps(stats)

    def test_empty_extern_sections(self, controller):
        stats = snapshot(controller.switch)
        assert stats["sketches"] == {}
        assert stats["meters"] == {}

"""The columnar fast path is strictly optional.

With NumPy absent -- or shut off via ``REPRO_FORCE_NO_NUMPY=1``, which
is how a NumPy-less interpreter is emulated on a box that has it --
the batch front door must transparently run the scalar interpreter
with identical results, and the module boundary must raise a clear
ImportError naming the ``numpy>=1.24`` bound from ``pyproject.toml``.

CI runs this file on a matrix leg with NumPy genuinely uninstalled, so
nothing here (directly or transitively) may import NumPy at module
scope: ``repro.workloads.traces`` and ``repro.bench.scenarios`` are
off-limits; packets come from ``repro.workloads.builders`` and the
switch from the controller directly.
"""

import pytest

from repro.dp import columnar
from repro.programs import base_rp4_source, populate_base_tables
from repro.runtime.controller import Controller
from repro.workloads.builders import ipv4_packet


def _base_switch():
    controller = Controller()
    controller.load_base(base_rp4_source())
    populate_base_tables(controller.switch.tables)
    return controller.switch


def _trace(n):
    return [
        (ipv4_packet("10.1.0.1", "10.2.0.1", sport=1024 + i), 0)
        for i in range(n)
    ]


def _wire(outputs):
    return [
        None if out is None else (out.port, out.data, out.to_cpu)
        for out in outputs
    ]


def test_hint_names_the_bound_and_the_fallback():
    assert "numpy>=1.24" in columnar.NUMPY_HINT
    assert "scalar" in columnar.NUMPY_HINT


def test_require_numpy_raises_clear_importerror(monkeypatch):
    monkeypatch.setenv("REPRO_FORCE_NO_NUMPY", "1")
    assert columnar._numpy() is None
    with pytest.raises(ImportError, match=r"numpy>=1\.24"):
        columnar.require_numpy()


def test_batch_falls_back_to_scalar(monkeypatch):
    monkeypatch.setenv("REPRO_FORCE_NO_NUMPY", "1")
    trace = _trace(16)

    fast = _base_switch()
    # The flag stays on -- the gate is NumPy availability, not config.
    assert fast.dp.columnar_enabled
    assert columnar.try_run_batch(fast.dp, trace) is None

    scalar = _base_switch()
    scalar.dp.columnar_enabled = False
    batch = fast.inject_batch(trace)
    expected = scalar.inject_batch(trace)
    assert _wire(list(batch)) == _wire(list(expected))
    assert fast.packets_in == scalar.packets_in
    assert fast.packets_out == scalar.packets_out
    assert fast.packets_dropped == scalar.packets_dropped
    assert dict(fast.drop_reasons) == dict(scalar.drop_reasons)

"""Unit tests for stage merging and physical layout."""

import pytest

from repro.compiler.dependency import analyze_dependencies
from repro.compiler.layout import LayoutError, layout_dp, layout_greedy
from repro.compiler.merge import MergeMode, MergePlan, group_key, plan_merge
from repro.compiler.stage_graph import StageGraph
from repro.rp4 import parse_rp4
from repro.programs import base_rp4_source


@pytest.fixture(scope="module")
def base_plan():
    program = parse_rp4(base_rp4_source())
    graph = StageGraph.from_program(program)
    deps = analyze_dependencies(program)
    return plan_merge(graph.linearize("ingress"), graph.linearize("egress"), deps)


class TestMerge:
    def test_base_design_fits_seven_tsps(self, base_plan):
        """The paper's headline: the base design needs seven TSPs."""
        assert base_plan.tsp_count == 7

    def test_expected_groups(self, base_plan):
        assert base_plan.ingress_groups == [
            ["port_map"],
            ["bridge_vrf"],
            ["l2_l3"],
            ["ipv4_lpm", "ipv6_lpm"],
            ["ipv4_host", "ipv6_host"],
            ["nexthop"],
        ]
        assert base_plan.egress_groups == [["l2_l3_rewrite", "dmac"]]

    def test_merge_mode_none(self):
        program = parse_rp4(base_rp4_source())
        graph = StageGraph.from_program(program)
        deps = analyze_dependencies(program)
        plan = plan_merge(
            graph.linearize("ingress"),
            graph.linearize("egress"),
            deps,
            mode=MergeMode.NONE,
        )
        assert plan.tsp_count == 10  # one stage per TSP

    def test_merge_mode_exclusive_only(self):
        program = parse_rp4(base_rp4_source())
        graph = StageGraph.from_program(program)
        deps = analyze_dependencies(program)
        plan = plan_merge(
            graph.linearize("ingress"),
            graph.linearize("egress"),
            deps,
            mode=MergeMode.EXCLUSIVE,
        )
        # v4/v6 pairs merge; independent egress pair does not.
        assert plan.tsp_count == 8

    def test_max_stages_per_tsp(self):
        program = parse_rp4(base_rp4_source())
        graph = StageGraph.from_program(program)
        deps = analyze_dependencies(program)
        plan = plan_merge(
            graph.linearize("ingress"),
            graph.linearize("egress"),
            deps,
            max_stages_per_tsp=1,
        )
        assert plan.tsp_count == 10

    def test_group_of(self, base_plan):
        assert base_plan.group_of("ipv6_lpm") == ["ipv4_lpm", "ipv6_lpm"]
        with pytest.raises(KeyError):
            base_plan.group_of("ghost")

    def test_group_key(self):
        assert group_key(["a", "b"]) == "a+b"


class TestInitialLayout:
    def test_ingress_left_egress_right(self, base_plan):
        layout = layout_dp(base_plan, 8)
        assert layout.slot_of("port_map") == 0
        assert layout.slot_of("l2_l3_rewrite+dmac") == 7
        assert layout.bypassed_tsps == [6]
        assert layout.tm_input == 5
        assert layout.tm_output == 7

    def test_does_not_fit(self, base_plan):
        with pytest.raises(LayoutError):
            layout_dp(base_plan, 6)

    def test_initial_all_rewrites(self, base_plan):
        layout = layout_dp(base_plan, 8)
        assert len(layout.rewrites) == base_plan.tsp_count


class TestIncrementalLayout:
    def _old(self, base_plan):
        return dict(layout_dp(base_plan, 8).slots)

    def test_unchanged_design_zero_rewrites(self, base_plan):
        old = self._old(base_plan)
        again = layout_dp(base_plan, 8, old)
        assert again.rewrites == []

    def test_tail_replacement_one_rewrite(self, base_plan):
        old = self._old(base_plan)
        modified = MergePlan(
            ingress_groups=[g for g in base_plan.ingress_groups[:-1]] + [["ecmp"]],
            egress_groups=list(base_plan.egress_groups),
        )
        layout = layout_dp(modified, 8, old)
        assert layout.rewrites == [5]

    def test_middle_insertion_dp_uses_free_slot(self, base_plan):
        old = self._old(base_plan)
        modified = MergePlan(
            ingress_groups=(
                base_plan.ingress_groups[:3]
                + [["inserted"]]
                + base_plan.ingress_groups[3:]
            ),
            egress_groups=list(base_plan.egress_groups),
        )
        layout = layout_dp(modified, 8, old)
        # DP must shift the tail into the free TSP 6, rewriting the
        # minimum number of templates.
        greedy = layout_greedy(modified, 8, old)
        assert len(layout.rewrites) <= len(greedy.rewrites)
        assert set(layout.slots.values()) == {
            group_key(g) for g in modified.ingress_groups
        } | {group_key(g) for g in modified.egress_groups}

    def test_greedy_matches_on_simple_cases(self, base_plan):
        old = self._old(base_plan)
        greedy = layout_greedy(base_plan, 8, old)
        assert greedy.rewrites == []

    def test_order_preserved(self, base_plan):
        layout = layout_dp(base_plan, 8)
        slots = [layout.slot_of(group_key(g)) for g in base_plan.ingress_groups]
        assert slots == sorted(slots)


class TestCofireBound:
    def test_cofire_one_equals_exclusive_merging(self):
        from repro.compiler.merge import plan_merge as pm

        program = parse_rp4(base_rp4_source())
        graph = StageGraph.from_program(program)
        deps = analyze_dependencies(program)
        bounded = pm(
            graph.linearize("ingress"), graph.linearize("egress"), deps,
            mode=MergeMode.FULL, max_cofire_per_tsp=1,
        )
        exclusive = pm(
            graph.linearize("ingress"), graph.linearize("egress"), deps,
            mode=MergeMode.EXCLUSIVE,
        )
        assert bounded.tsp_count == exclusive.tsp_count == 8

    def test_cofire_validation(self):
        from repro.compiler.merge import plan_merge as pm
        from repro.compiler.dependency import DependencyInfo

        with pytest.raises(ValueError):
            pm([], [], DependencyInfo(), max_cofire_per_tsp=0)

    def test_cofire_count(self):
        from repro.compiler.merge import cofire_count

        program = parse_rp4(base_rp4_source())
        deps = analyze_dependencies(program)
        # Exclusive pair shares one lookup.
        assert cofire_count(["ipv4_lpm"], "ipv6_lpm", deps) == 1
        # Independent pair co-fires.
        assert cofire_count(["l2_l3_rewrite"], "dmac", deps) == 2

"""Regression tests: diff alignment, partial-snapshot formatting,
and the MeterBank public iteration API."""

import pytest

from repro.runtime.stats import diff, format_stats
from repro.tables.meters import MeterBank


class TestDiffListAlignment:
    def test_tsp_lists_align_by_index(self):
        # An elastic-pipeline resize between polls: the after snapshot
        # has a TSP the before one lacked.  Pre-fix this raised
        # IndexError (positional zip past the shorter list).
        before = {
            "tsps": [
                {"index": 0, "packets": 5},
                {"index": 1, "packets": 2},
            ]
        }
        after = {
            "tsps": [
                {"index": 0, "packets": 9},
                {"index": 1, "packets": 2},
                {"index": 2, "packets": 4},
            ]
        }
        delta = diff(before, after)
        assert delta["tsps"][0] == {"index": 0, "packets": 4}
        assert delta["tsps"][1] == {"index": 0, "packets": 0}
        # Present only in after: passes through unchanged.
        assert delta["tsps"][2] == {"index": 2, "packets": 4}

    def test_alignment_survives_reordering(self):
        before = {"tsps": [{"index": 1, "packets": 1}, {"index": 0, "packets": 7}]}
        after = {"tsps": [{"index": 0, "packets": 8}, {"index": 1, "packets": 1}]}
        delta = diff(before, after)
        assert delta["tsps"][0]["packets"] == 1
        assert delta["tsps"][1]["packets"] == 0

    def test_shrunk_list_keeps_surviving_elements(self):
        before = {
            "tsps": [{"index": 0, "packets": 3}, {"index": 1, "packets": 5}]
        }
        after = {"tsps": [{"index": 1, "packets": 6}]}
        delta = diff(before, after)
        assert delta["tsps"] == [{"index": 0, "packets": 1}]

    def test_positional_fallback_with_extras(self):
        # Plain value lists have no "index" key: diff positionally,
        # pass after-extras through.
        before = {"depths": [1, 2]}
        after = {"depths": [4, 2, 9]}
        assert diff(before, after)["depths"] == [3, 0, 9]

    def test_equal_length_diff_unchanged(self):
        before = {"tsps": [{"index": 0, "packets": 1, "state": "active"}]}
        after = {"tsps": [{"index": 0, "packets": 4, "state": "active"}]}
        delta = diff(before, after)
        assert delta["tsps"][0]["packets"] == 3
        assert delta["tsps"][0]["state"] == "active"  # non-counter passthrough

    def test_missing_dict_keys_default_to_zero(self):
        before = {"device": {"packets_in": 1}}
        after = {"device": {"packets_in": 3, "punted": 2}}
        assert diff(before, after)["device"] == {"packets_in": 2, "punted": 2}


class TestFormatStatsPartial:
    def test_missing_device_section(self):
        text = format_stats({"tables": {"lpm": {"entries": 1}}})
        assert "device:" not in text
        assert "table lpm" in text

    def test_missing_tm_section(self):
        text = format_stats({"device": {"packets_in": 1}})
        assert "device: in=1" in text
        assert "TM:" not in text

    def test_empty_snapshot(self):
        assert format_stats({}) == ""

    def test_partial_table_fields(self):
        text = format_stats({"tables": {"lpm": {}}})
        assert "table lpm" in text and "0/0 entries" in text

    def test_partial_tsp_row(self):
        text = format_stats(
            {"tsps": [{"index": 2, "packets": 3, "stages": ["lpm"]}]}
        )
        assert "TSP 2" in text and "pkts=3" in text

    def test_drop_reasons_rendered(self):
        text = format_stats(
            {
                "device": {
                    "packets_in": 2,
                    "packets_dropped": 2,
                    "drop_reasons": {"ingress_action": 1, "tm_tail_drop": 1},
                }
            }
        )
        assert "drops by reason: ingress_action=1 tm_tail_drop=1" in text

    def test_zero_drop_reasons_hidden(self):
        text = format_stats(
            {"device": {"packets_in": 2, "drop_reasons": {"unknown": 0}}}
        )
        assert "drops by reason" not in text


class TestMeterBankIteration:
    @pytest.fixture
    def bank(self):
        bank = MeterBank()
        bank.configure("police_a", rate=100, burst=10)
        bank.configure("police_b", rate=200, burst=20)
        return bank

    def test_len_and_iter(self, bank):
        assert len(bank) == 2
        assert sorted(bank) == ["police_a", "police_b"]

    def test_names(self, bank):
        assert bank.names() == ["police_a", "police_b"]

    def test_items_pairs_names_with_meters(self, bank):
        items = dict(bank.items())
        assert set(items) == {"police_a", "police_b"}
        assert items["police_a"].rate == 100

    def test_empty_bank(self):
        bank = MeterBank()
        assert len(bank) == 0
        assert list(bank) == []
        assert bank.names() == []

    def test_metrics_samples(self, bank):
        samples = {
            (s.name, s.labels.get("meter")): s.value
            for s in bank.metrics_samples()
        }
        assert samples[("meter.rate", "police_a")] == 100
        assert samples[("meter.burst", "police_b")] == 20
        assert samples[("meter.conforming", "police_a")] == 0

"""Unit tests for header types and instances."""

import pytest

from repro.net.headers import (
    ETHERNET,
    IPV4,
    IPV6,
    SRH,
    TCP,
    UDP,
    VLAN,
    FieldDef,
    HeaderInstance,
    HeaderType,
    srh_segment,
    srh_set_segment,
    standard_header_types,
)


class TestHeaderTypeDefinition:
    def test_fixed_bits(self):
        assert ETHERNET.fixed_bits == 112
        assert IPV4.fixed_bits == 160
        assert IPV6.fixed_bits == 320
        assert TCP.fixed_bits == 160
        assert UDP.fixed_bits == 64
        assert VLAN.fixed_bits == 32

    def test_field_width_lookup(self):
        assert IPV4.field_width("ttl") == 8
        assert IPV6.field_width("dst_addr") == 128

    def test_unknown_field_raises(self):
        with pytest.raises(KeyError):
            IPV4.field_width("nope")

    def test_duplicate_field_rejected(self):
        with pytest.raises(ValueError):
            HeaderType("bad", [FieldDef("x", 8), FieldDef("x", 8)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            HeaderType("bad", [])

    def test_varlen_needs_byte_aligned_prefix(self):
        with pytest.raises(ValueError):
            HeaderType(
                "bad",
                [FieldDef("x", 4)],
                varlen_field="rest",
                varlen_bytes=lambda v: 0,
            )

    def test_standard_library_names(self):
        lib = standard_header_types()
        assert set(lib) == {"ethernet", "vlan", "ipv4", "ipv6", "srh", "tcp", "udp"}


class TestPackUnpack:
    def test_ethernet_roundtrip(self):
        wire = bytes.fromhex("ffffffffffff00112233445508 00".replace(" ", ""))
        values, bits = ETHERNET.unpack(wire)
        assert bits == 112
        assert values["dst_addr"] == (1 << 48) - 1
        assert values["ethertype"] == 0x0800
        assert ETHERNET.pack(values) == wire

    def test_ipv4_unaligned_fields(self):
        wire = bytes.fromhex("450000730000400040110000c0a80001c0a800c7")
        values, bits = IPV4.unpack(wire)
        assert bits == 160
        assert values["version"] == 4
        assert values["ihl"] == 5
        assert values["ttl"] == 0x40
        assert values["protocol"] == 17
        assert IPV4.pack(values) == wire

    def test_unpack_at_offset(self):
        wire = b"\xaa" * 3 + bytes.fromhex("450000730000400040110000c0a80001c0a800c7")
        values, _ = IPV4.unpack(wire, 24)
        assert values["version"] == 4

    def test_short_buffer_raises(self):
        with pytest.raises(ValueError):
            IPV4.unpack(b"\x45\x00")

    def test_pack_defaults_missing_to_zero(self):
        wire = UDP.pack({"src_port": 53})
        assert wire == b"\x00\x35" + b"\x00" * 6

    def test_pack_rejects_non_int(self):
        with pytest.raises(TypeError):
            UDP.pack({"src_port": "53"})


class TestSrhVarlen:
    def _srh_wire(self, nsegs):
        fixed = bytes([41, 2 * nsegs, 4, nsegs, nsegs - 1, 0]) + b"\x00\x00"
        segs = b"".join(i.to_bytes(16, "big") for i in range(1, nsegs + 1))
        return fixed + segs

    def test_unpack_two_segments(self):
        wire = self._srh_wire(2)
        values, bits = SRH.unpack(wire)
        assert bits == len(wire) * 8
        assert values["hdr_ext_len"] == 4
        assert len(values["segment_list"]) == 32

    def test_roundtrip(self):
        wire = self._srh_wire(3)
        values, _ = SRH.unpack(wire)
        assert SRH.pack(values) == wire

    def test_segment_accessors(self):
        values, _ = SRH.unpack(self._srh_wire(2))
        inst = HeaderInstance(SRH, values)
        assert srh_segment(inst, 0) == 1
        assert srh_segment(inst, 1) == 2
        srh_set_segment(inst, 0, 0xDEAD)
        assert srh_segment(inst, 0) == 0xDEAD

    def test_segment_out_of_range(self):
        values, _ = SRH.unpack(self._srh_wire(1))
        inst = HeaderInstance(SRH, values)
        with pytest.raises(IndexError):
            srh_segment(inst, 1)

    def test_truncated_segment_list_raises(self):
        wire = self._srh_wire(2)[:-1]
        with pytest.raises(ValueError):
            SRH.unpack(wire)

    def test_bit_length_includes_varlen(self):
        values, _ = SRH.unpack(self._srh_wire(2))
        assert SRH.bit_length(values) == 64 + 256


class TestHeaderInstance:
    def test_get_masks_to_width(self):
        inst = HeaderInstance(IPV4, {"ttl": 300})
        # set() would truncate; get() must also mask raw values.
        assert inst.get("ttl") == 300 & 0xFF

    def test_set_truncates(self):
        inst = HeaderInstance(IPV4)
        inst.set("ttl", 0x1FF)
        assert inst.get("ttl") == 0xFF

    def test_unset_defaults_zero(self):
        assert HeaderInstance(IPV4).get("ttl") == 0

    def test_set_varlen_requires_bytes(self):
        inst = HeaderInstance(SRH)
        with pytest.raises(TypeError):
            inst.set("segment_list", 1)
        inst.set("segment_list", b"\x00" * 16)
        assert inst.get("segment_list") == b"\x00" * 16

    def test_clone_is_independent(self):
        inst = HeaderInstance(IPV4, {"ttl": 64})
        twin = inst.clone()
        twin.set("ttl", 1)
        assert inst.get("ttl") == 64

    def test_default_name_is_type_name(self):
        assert HeaderInstance(IPV4).name == "ipv4"

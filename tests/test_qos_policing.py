"""Tests for token-bucket meters and the C7 policing use case."""

import pytest

from repro.programs import base_rp4_source, populate_base_tables
from repro.programs.qos import (
    configure_meters,
    populate_qos_tables,
    qos_load_script,
    qos_rp4_source,
)
from repro.runtime import Controller
from repro.tables.meters import MeterBank, MeterError, TokenBucket
from repro.workloads import ipv4_packet


class TestTokenBucket:
    def test_burst_then_red(self):
        bucket = TokenBucket("m", rate=0.0001, burst=3)
        colors = [bucket.color(tick) for tick in range(1, 6)]
        assert colors == ["green", "green", "green", "red", "red"]

    def test_refill_over_time(self):
        bucket = TokenBucket("m", rate=1.0, burst=1)
        assert bucket.color(1) == "green"
        assert bucket.color(1) == "red"  # same tick: no refill
        assert bucket.color(2) == "green"  # one tick later: one token

    def test_fractional_rate(self):
        bucket = TokenBucket("m", rate=0.5, burst=1)
        assert bucket.color(0) == "green"
        assert bucket.color(1) == "red"  # only half a token back
        assert bucket.color(2) == "green"

    def test_burst_cap(self):
        bucket = TokenBucket("m", rate=10, burst=2)
        bucket.color(0)
        # A long idle period cannot bank more than `burst` tokens.
        assert [bucket.color(100) for _ in range(3)].count("green") == 2

    def test_clock_must_be_monotone(self):
        bucket = TokenBucket("m", rate=1, burst=1)
        bucket.color(5)
        with pytest.raises(MeterError):
            bucket.color(4)

    def test_stats(self):
        bucket = TokenBucket("m", rate=0.0001, burst=1)
        bucket.color(1)
        bucket.color(1)
        assert bucket.stats.conforming == 1
        assert bucket.stats.exceeding == 1

    def test_validation(self):
        with pytest.raises(MeterError):
            TokenBucket("m", rate=0, burst=1)
        with pytest.raises(MeterError):
            TokenBucket("m", rate=1, burst=0)

    def test_reset(self):
        bucket = TokenBucket("m", rate=0.0001, burst=1)
        bucket.color(1)
        bucket.reset()
        assert bucket.color(0) == "green"


class TestMeterBank:
    def test_lazy_and_configured(self):
        bank = MeterBank()
        default = bank.meter("x")
        assert "x" in bank
        replaced = bank.configure("x", rate=2, burst=8)
        assert replaced is not default
        assert bank.meter("x") is replaced

    def test_drop(self):
        bank = MeterBank()
        bank.meter("x")
        assert bank.drop("x")
        assert not bank.drop("x")


class TestQosUseCase:
    @pytest.fixture
    def controller(self):
        ctl = Controller()
        ctl.load_base(base_rp4_source())
        populate_base_tables(ctl.switch.tables)
        ctl.run_script(qos_load_script(), {"qos.rp4": qos_rp4_source()})
        populate_qos_tables(ctl.switch.tables)
        configure_meters(ctl.switch, rate=0.5, burst=2)
        return ctl

    def _flood(self, controller, src, dst, n=20):
        delivered = 0
        for i in range(n):
            out = controller.switch.inject(
                ipv4_packet(src, dst, sport=4000 + i), 0
            )
            if out is not None:
                delivered += 1
        return delivered

    def test_policed_flow_loses_excess(self, controller):
        delivered = self._flood(controller, "10.1.0.1", "10.2.0.1")
        # rate 0.5/tick: roughly half the back-to-back burst conforms.
        assert 8 <= delivered <= 14
        meter = controller.switch.meters.meter("qos_police")
        assert meter.stats.exceeding > 0
        assert meter.stats.conforming + meter.stats.exceeding == 20

    def test_marked_flow_passes_but_colored(self, controller):
        delivered = self._flood(controller, "10.1.0.2", "10.2.0.2")
        assert delivered == 20  # marking never drops
        meter = controller.switch.meters.meter("qos_mark")
        assert meter.stats.exceeding > 0

    def test_unpoliced_traffic_unmetered(self, controller):
        delivered = self._flood(controller, "10.1.0.9", "10.2.0.9")
        assert delivered == 20
        assert controller.switch.meters.meter("qos_police").stats.conforming + \
            controller.switch.meters.meter("qos_police").stats.exceeding == 0

    def test_idle_gaps_refill(self, controller):
        # Interleave the policed flow with other traffic: the logical
        # clock advances between policed packets, so most conform.
        delivered = 0
        for i in range(10):
            out = controller.switch.inject(
                ipv4_packet("10.1.0.1", "10.2.0.1", sport=6000 + i), 0
            )
            if out is not None:
                delivered += 1
            for j in range(3):  # background traffic advances the clock
                controller.switch.inject(
                    ipv4_packet("10.1.0.9", f"10.2.7.{j + 1}"), 0
                )
        assert delivered == 10

    def test_offload(self, controller):
        controller.run_script("unload --func_name qos")
        controller.switch.meters.drop("qos_police")
        assert "qos_classifier" not in controller.switch.tables
        assert self._flood(controller, "10.1.0.1", "10.2.0.1") == 20

"""The injectable clock and the deterministic obs timing it enables."""

import pytest

from repro.obs.clock import MONOTONIC, ManualClock, MonotonicClock
from repro.obs.timeline import Timeline, TimelineRecorder
from repro.obs.trace import PacketTracer


class TestManualClock:
    def test_time_only_moves_when_told(self):
        clock = ManualClock(start=5.0)
        assert clock.now() == 5.0
        assert clock.now() == 5.0
        clock.advance(2.5)
        assert clock.now() == 7.5

    def test_tick_advances_per_read(self):
        clock = ManualClock(tick=0.001)
        assert clock.now() == 0.0
        assert clock.now() == pytest.approx(0.001)
        assert clock.now() == pytest.approx(0.002)
        assert clock.reads == 3

    def test_rejects_backwards_motion(self):
        clock = ManualClock()
        with pytest.raises(ValueError):
            clock.advance(-1.0)
        with pytest.raises(ValueError):
            ManualClock(tick=-0.5)

    def test_monotonic_clock_moves_forward(self):
        clock = MonotonicClock()
        a = clock.now()
        b = clock.now()
        assert b >= a
        assert MONOTONIC.now() >= 0


class TestDeterministicTracer:
    def test_span_durations_are_exact(self):
        clock = ManualClock(tick=1.0)
        tracer = PacketTracer(clock=clock)
        tracer.begin(clock=1, port=0, length=64)
        span = tracer.start_span("parse", kind="parse")
        tracer.end_span(span)
        tracer.end("emit")
        (trace,) = tracer.traces
        # Every timestamp is one deterministic tick apart.
        assert span.duration == 1.0
        assert trace.root.duration == 3.0

    def test_rebase_yields_zero_origin(self):
        clock = ManualClock(start=100.0, tick=1.0)
        tracer = PacketTracer(clock=clock)
        tracer.begin(clock=1, port=0, length=64)
        tracer.end("emit")
        data = tracer.traces[0].to_dict(rebase=True)
        assert data["root"]["start"] == 0.0
        assert data["root"]["duration"] == 1.0


class TestDeterministicTimeline:
    def test_phase_durations_are_exact(self):
        clock = ManualClock()
        timeline = Timeline("update", clock=clock)
        clock.advance(0.25)
        timeline.phase("compile")
        clock.advance(0.75)
        timeline.phase("load")
        timeline.finish()
        assert timeline.durations() == {"compile": 0.25, "load": 0.75}
        assert timeline.total_seconds == 1.0

    def test_recorder_injects_clock_into_timelines(self):
        clock = ManualClock()
        recorder = TimelineRecorder(clock=clock)
        timeline = recorder.begin("op")
        clock.advance(2.0)
        timeline.phase("work")
        timeline.finish()
        assert recorder.latest("op").total_seconds == 2.0

"""Smoke tests: every example script must run to completion.

Examples are documentation that executes; breaking one is breaking
the README's promises.  Each runs in-process (fast) with stdout
captured.
"""

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLES) >= 5
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{name} produced no output"


class TestExampleOutputs:
    def test_quickstart_shows_mapping(self, capsys):
        runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
        out = capsys.readouterr().out
        assert "TSP mapping" in out
        assert "out port 3" in out

    def test_ecmp_example_spreads(self, capsys):
        runpy.run_path(
            str(EXAMPLES_DIR / "ecmp_runtime_update.py"), run_name="__main__"
        )
        out = capsys.readouterr().out
        assert "egress distribution" in out
        assert "blocks recycled" in out

    def test_srv6_example_end_behavior(self, capsys):
        runpy.run_path(
            str(EXAMPLES_DIR / "srv6_insertion.py"), run_name="__main__"
        )
        out = capsys.readouterr().out
        assert "2001:db8:2::1" in out

    def test_two_node_chain(self, capsys):
        runpy.run_path(
            str(EXAMPLES_DIR / "srv6_two_node_chain.py"), run_name="__main__"
        )
        out = capsys.readouterr().out
        assert "2001:db8:2::42" in out

"""Unit tests for packet builders and trace generators."""

import pytest

from repro.net.headers import standard_header_types
from repro.net.linkage import standard_linkage
from repro.net.packet import Packet
from repro.workloads import (
    ecmp_trace,
    ipv4_packet,
    ipv6_packet,
    l2_packet,
    mixed_l3_trace,
    probe_trace,
    srv6_packet,
    srv6_trace,
    use_case_trace,
)
from repro.net.checksum import internet_checksum


def parsed(data):
    p = Packet(data)
    p.parse_all(standard_header_types(), standard_linkage())
    return p


class TestBuilders:
    def test_ipv4_packet_parses(self):
        p = parsed(ipv4_packet("10.0.0.1", "10.0.0.2", sport=53, dport=80))
        assert p.header_names() == ["ethernet", "ipv4", "udp"]
        assert p.read("ipv4.ttl") == 64
        assert p.read("udp.src_port") == 53

    def test_ipv4_checksum_valid(self):
        data = ipv4_packet("10.0.0.1", "10.0.0.2")
        assert internet_checksum(data[14:34]) == 0

    def test_ipv4_total_len_consistent(self):
        data = ipv4_packet("10.0.0.1", "10.0.0.2", payload=b"xyz")
        total_len = int.from_bytes(data[16:18], "big")
        assert total_len == len(data) - 14

    def test_tcp_variant(self):
        p = parsed(ipv4_packet("10.0.0.1", "10.0.0.2", proto="tcp"))
        assert p.header_names() == ["ethernet", "ipv4", "tcp"]

    def test_ipv6_packet_parses(self):
        p = parsed(ipv6_packet("2001:db8::1", "2001:db8::2"))
        assert p.header_names() == ["ethernet", "ipv6", "udp"]
        assert p.read("ipv6.hop_limit") == 64

    def test_ipv6_payload_len(self):
        data = ipv6_packet("2001:db8::1", "2001:db8::2", payload=b"hi")
        payload_len = int.from_bytes(data[18:20], "big")
        assert payload_len == len(data) - 14 - 40

    def test_l2_packet_not_router_mac(self):
        from repro.programs.base_l2l3 import ROUTER_MAC
        from repro.net.addresses import parse_mac

        data = l2_packet("02:00:00:0a:00:02")
        dst = int.from_bytes(data[:6], "big")
        assert dst != parse_mac(ROUTER_MAC)

    def test_srv6_packet_structure(self):
        from repro.net.linkage import HeaderLink

        linkage = standard_linkage(
            [HeaderLink("ipv6", 43, "srh"), HeaderLink("srh", 41, "ipv6")]
        )
        data = srv6_packet(
            "2001:db8::1",
            "2001:db8:100::1",
            segments=["2001:db8:2::1", "2001:db8:100::1"],
        )
        p = Packet(data)
        p.parse_all(standard_header_types(), linkage)
        assert p.header_names()[:3] == ["ethernet", "ipv6", "srh"]
        assert p.read("srh.segments_left") == 1
        assert p.read("srh.hdr_ext_len") == 4

    def test_srv6_requires_two_segments(self):
        with pytest.raises(ValueError):
            srv6_packet("::1", "::2", segments=["::3"])


class TestTraces:
    def test_mixed_trace_deterministic(self):
        assert mixed_l3_trace(50, seed=3) == mixed_l3_trace(50, seed=3)
        assert mixed_l3_trace(50, seed=3) != mixed_l3_trace(50, seed=4)

    def test_mixed_trace_ratio(self):
        trace = mixed_l3_trace(400, v4_ratio=0.75, seed=1)
        v4 = sum(1 for data, _ in trace if data[12:14] == b"\x08\x00")
        assert 0.65 <= v4 / len(trace) <= 0.85

    def test_mixed_trace_bad_ratio(self):
        with pytest.raises(ValueError):
            mixed_l3_trace(10, v4_ratio=1.5)

    def test_ecmp_trace_all_v4(self):
        trace = ecmp_trace(100)
        assert all(data[12:14] == b"\x08\x00" for data, _ in trace)

    def test_srv6_trace_mix(self):
        trace = srv6_trace(100, endpoint_ratio=0.5, seed=2)
        assert len(trace) == 100
        assert all(data[12:14] == b"\x86\xdd" for data, _ in trace)

    def test_probe_trace_contains_probed_flow(self):
        from repro.net.addresses import parse_ipv4

        trace = probe_trace(200, probed_ratio=0.4, seed=5)
        probed = sum(
            1
            for data, _ in trace
            if int.from_bytes(data[30:34], "big") == parse_ipv4("10.2.0.1")
        )
        assert 0.25 <= probed / len(trace) <= 0.55

    def test_use_case_dispatch(self):
        assert len(use_case_trace("C1", 10)) == 10
        assert len(use_case_trace("C2", 10)) == 10
        assert len(use_case_trace("C3", 10)) == 10
        with pytest.raises(ValueError):
            use_case_trace("C9")

    def test_traces_forward_through_base_switch(self):
        from repro.compiler.rp4bc import compile_base
        from repro.ipsa.switch import IpsaSwitch
        from repro.programs import base_rp4_source
        from repro.programs.base_l2l3 import populate_base_tables

        switch = IpsaSwitch()
        switch.load_config(compile_base(base_rp4_source()).config)
        populate_base_tables(switch.tables)
        for data, port in mixed_l3_trace(100):
            assert switch.inject(data, port) is not None

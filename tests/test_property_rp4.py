"""Property-based tests for the rP4 printer/parser round trip."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.expr import EBin, EConst, EValid
from repro.rp4 import parse_rp4, print_rp4
from repro.rp4.ast import (
    HeaderDecl,
    MatcherArm,
    Rp4Action,
    Rp4Program,
    Rp4Table,
    StageDecl,
)

ident = st.from_regex(r"[a-z][a-z0-9_]{0,10}", fullmatch=True).filter(
    lambda s: s
    not in {
        # keywords of the grammar
        "headers", "header", "structs", "struct", "action", "table",
        "control", "stage", "parser", "matcher", "executor", "user_funcs",
        "func", "if", "else", "default", "implicit", "bit", "key", "size",
        "actions", "in", "out", "inout",
    }
)

field_def = st.tuples(ident, st.integers(min_value=1, max_value=128))


@st.composite
def header_decls(draw):
    name = draw(ident)
    fields = draw(st.lists(field_def, min_size=1, max_size=5, unique_by=lambda f: f[0]))
    decl = HeaderDecl(name=name, fields=fields)
    if draw(st.booleans()):
        decl.selector = fields[0][0]
        decl.links = sorted(
            draw(
                st.dictionaries(
                    st.integers(min_value=0, max_value=0xFFFF),
                    ident,
                    max_size=3,
                )
            ).items()
        )
    return decl


@st.composite
def table_decls(draw, field_refs):
    name = draw(ident)
    n_keys = draw(st.integers(min_value=1, max_value=3))
    kind = draw(st.sampled_from(["exact", "ternary", "hash"]))
    keys = [(draw(st.sampled_from(field_refs)), kind) for _ in range(n_keys)]
    return Rp4Table(name=name, keys=keys, size=draw(st.integers(1, 65536)))


@st.composite
def programs(draw):
    program = Rp4Program()
    headers = draw(
        st.lists(header_decls(), min_size=1, max_size=3, unique_by=lambda h: h.name)
    )
    for header in headers:
        program.headers[header.name] = header
    refs = [
        f"{h.name}.{fname}" for h in headers for fname, _ in h.fields
    ] + ["meta.x"]
    tables = draw(
        st.lists(table_decls(refs), min_size=1, max_size=3, unique_by=lambda t: t.name)
    )
    for table in tables:
        program.tables[table.name] = table
    action = Rp4Action(name=draw(ident), params=[("p0", 8)])
    program.actions[action.name] = action
    stage_name = draw(ident)
    program.ingress_stages[stage_name] = StageDecl(
        name=stage_name,
        parser=[headers[0].name],
        matcher=[
            MatcherArm(EValid(headers[0].name), tables[0].name),
            MatcherArm(None, None),
        ],
        executor={1: action.name, "default": "NoAction"},
    )
    return program


class TestRoundTrip:
    @given(program=programs())
    @settings(max_examples=60, deadline=None)
    def test_print_parse_preserves_structure(self, program):
        text = print_rp4(program)
        again = parse_rp4(text)
        assert set(again.headers) == set(program.headers)
        assert set(again.tables) == set(program.tables)
        assert set(again.actions) == set(program.actions)
        assert set(again.ingress_stages) == set(program.ingress_stages)
        for name, header in program.headers.items():
            assert again.headers[name].fields == header.fields
            assert again.headers[name].selector == header.selector
            assert sorted(again.headers[name].links) == sorted(header.links)
        for name, table in program.tables.items():
            assert again.tables[name].keys == table.keys
            assert again.tables[name].size == table.size
        for name, stage in program.ingress_stages.items():
            twin = again.ingress_stages[name]
            assert twin.parser == stage.parser
            assert twin.executor == stage.executor
            assert [a.table for a in twin.matcher] == [
                a.table for a in stage.matcher
            ]

    @given(
        left=st.integers(min_value=0, max_value=100),
        right=st.integers(min_value=0, max_value=100),
        op=st.sampled_from(["+", "-", "&", "|", "^", "==", "!="]),
    )
    def test_expression_roundtrip(self, left, right, op):
        from repro.lang.expr import parse_expr
        from repro.lang.lexer import Lexer
        from repro.rp4.printer import print_expr

        expr = EBin(op, EConst(left), EConst(right))
        assert parse_expr(Lexer(print_expr(expr))) == expr

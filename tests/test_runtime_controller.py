"""Unit tests for the controller, control channel, and table APIs."""

import pytest

from repro.runtime import ControlChannel, Controller
from repro.runtime.controller import ControllerError
from repro.runtime.table_api import TableApi, TableApiError
from repro.compiler.lowering import lower_table
from repro.programs import (
    base_rp4_source,
    ecmp_load_script,
    ecmp_rp4_source,
    populate_base_tables,
    populate_ecmp_tables,
    srv6_load_script,
    srv6_rp4_source,
)
from repro.workloads import ipv4_packet


@pytest.fixture
def controller():
    ctl = Controller()
    ctl.load_base(base_rp4_source())
    populate_base_tables(ctl.switch.tables)
    return ctl


class TestControlChannel:
    def test_messages_serialized(self):
        channel = ControlChannel()
        message = {"a": [1, 2], "b": {"c": True}}
        echoed = channel.send(message)
        assert echoed == message
        assert echoed is not message  # genuinely round-tripped
        assert channel.stats.messages == 1
        assert channel.stats.bytes_sent > 0

    def test_non_serializable_rejected(self):
        with pytest.raises(TypeError):
            ControlChannel().send({"fn": lambda: 0})


class TestControllerBaseFlow:
    def test_load_base_timings(self, controller):
        timing = controller.history
        assert timing == ["load_base"]
        assert controller.design is not None
        assert controller.switch.active_tsp_count() == 7

    def test_script_before_base_rejected(self):
        with pytest.raises(ControllerError):
            Controller().run_script("unload --func_name x")

    def test_traffic_flows(self, controller):
        out = controller.switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), 0)
        assert out is not None and out.port == 3


class TestControllerUpdates:
    def test_ecmp_update_message_is_a_delta(self, controller):
        plan, stats, timing = controller.run_script(
            ecmp_load_script(), {"ecmp.rp4": ecmp_rp4_source()}
        )
        # Only one template crossed the channel.
        assert stats.templates_written == 1
        assert stats.tables_created == ["ecmp_ipv4", "ecmp_ipv6"]
        assert stats.tables_removed == ["nexthop"]
        assert "nexthop" not in controller.switch.tables

    def test_base_entries_survive_update(self, controller):
        before = len(controller.switch.table("ipv4_lpm"))
        controller.run_script(ecmp_load_script(), {"ecmp.rp4": ecmp_rp4_source()})
        assert len(controller.switch.table("ipv4_lpm")) == before

    def test_traffic_resumes_after_update(self, controller):
        controller.run_script(ecmp_load_script(), {"ecmp.rp4": ecmp_rp4_source()})
        populate_ecmp_tables(controller.switch.tables)
        out = controller.switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), 0)
        assert out is not None and out.port in (2, 3)

    def test_srv6_links_applied(self, controller):
        controller.run_script(srv6_load_script(), {"srv6.rp4": srv6_rp4_source()})
        linkage = controller.switch.linkage
        assert linkage.next_header("ipv6", 43) == "srh"
        assert linkage.next_header("srh", 41) == "inner_ipv6"
        # inner instances alias the base types
        assert controller.switch.header_types["inner_ipv6"].fixed_bits == 320

    def test_design_advances(self, controller):
        old = controller.design
        controller.run_script(ecmp_load_script(), {"ecmp.rp4": ecmp_rp4_source()})
        assert controller.design is not old
        assert "ecmp" in controller.design.program.all_stages()


class TestTableApi:
    def test_action_tags_inferred(self, controller):
        api = controller.api("nexthop")
        entry = api.install((9,), "set_bd_dmac", {"bd": 2, "dmac": 5})
        assert entry.tag == 1

    def test_key_arity_checked(self, controller):
        api = controller.api("dmac")
        with pytest.raises(TableApiError):
            api.install((1,), "set_egress_port", {"port": 1})

    def test_lpm_shape_checked(self, controller):
        api = controller.api("ipv4_lpm")
        with pytest.raises(TableApiError):
            api.install((1, 0x0A000000), "set_nexthop", {"nexthop": 1})
        api.install((1, (0x0A000000, 8)), "set_nexthop", {"nexthop": 1})

    def test_exact_type_checked(self, controller):
        api = controller.api("port_map")
        with pytest.raises(TableApiError):
            api.install(((1, 2),), "set_intf", {"intf": 0})

    def test_hash_table_ignores_key(self, controller):
        controller.run_script(ecmp_load_script(), {"ecmp.rp4": ecmp_rp4_source()})
        api = controller.api("ecmp_ipv4")
        api.install((), "set_bd_dmac", {"bd": 2, "dmac": 7})
        assert len(api) == 1

    def test_entries_and_clear(self):
        table = lower_table("t", [("meta.x", "exact", 8)], 8)
        api = TableApi(table)
        api.install((1,), "NoAction")
        assert len(api.entries()) == 1
        api.clear()
        assert len(api) == 0

    def test_remove(self):
        table = lower_table("t", [("meta.x", "exact", 8)], 8)
        api = TableApi(table)
        entry = api.install((1,), "NoAction")
        api.remove(entry)
        assert len(api) == 0

    def test_tables_listing(self, controller):
        apis = controller.tables()
        assert "ipv4_lpm" in apis and "dmac" in apis

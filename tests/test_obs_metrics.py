"""Unit tests for the metrics registry (repro.obs.metrics)."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    Sample,
    bucket_quantile,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("pkts")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_cannot_decrease(self):
        c = Counter("pkts")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_samples_carry_labels(self):
        c = Counter("table.hits", labels={"table": "ipv4_lpm"})
        c.inc(3)
        (sample,) = list(c.samples())
        assert sample.name == "table.hits"
        assert sample.value == 3
        assert sample.labels == {"table": "ipv4_lpm"}
        assert sample.kind == "counter"


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7

    def test_callback_gauge_reads_at_collect_time(self):
        state = {"v": 1}
        g = Gauge("live", fn=lambda: state["v"])
        assert list(g.samples())[0].value == 1
        state["v"] = 42
        assert list(g.samples())[0].value == 42


class TestHistogram:
    def test_needs_increasing_edges(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=())
        with pytest.raises(ValueError):
            Histogram("h", bounds=(1, 1))
        with pytest.raises(ValueError):
            Histogram("h", bounds=(2, 1))
        Histogram("h", bounds=(64, 128, 256))  # strictly increasing: fine

    def test_observation_on_edge_lands_in_that_bucket(self):
        # Prometheus `le` semantics: value == edge counts in the edge's
        # bucket, not the next one up.
        h = Histogram("bytes", bounds=(64, 128, 256))
        h.observe(64)
        assert h.bucket_counts == [1, 0, 0, 0]
        h.observe(65)
        assert h.bucket_counts == [1, 1, 0, 0]
        h.observe(128)
        assert h.bucket_counts == [1, 2, 0, 0]
        h.observe(1000)  # beyond the last edge: +Inf bucket
        assert h.bucket_counts == [1, 2, 0, 1]

    def test_cumulative_counts_and_edges(self):
        h = Histogram("bytes", bounds=(64, 128))
        for v in (10, 70, 70, 500):
            h.observe(v)
        assert h.bucket_edges() == ["64.0", "128.0", "+Inf"]
        assert h.cumulative_counts() == [1, 3, 4]
        assert h.count == 4
        assert h.sum == 10 + 70 + 70 + 500

    def test_samples_expand_to_bucket_count_sum(self):
        h = Histogram("lat", bounds=(1,))
        h.observe(0.5)
        h.observe(2.0)
        samples = {(s.name, s.labels.get("le")): s.value for s in h.samples()}
        assert samples[("lat_bucket", "1.0")] == 1
        assert samples[("lat_bucket", "+Inf")] == 2
        assert samples[("lat_count", None)] == 2
        assert samples[("lat_sum", None)] == 2.5


class TestQuantiles:
    def test_bucket_quantile_interpolates(self):
        # 10 observations uniform in the (0, 100] bucket: the median
        # interpolates to the bucket midpoint (lower edge taken as 0).
        assert bucket_quantile((100, 200), (10, 0, 0), 0.5) == pytest.approx(50.0)
        # Landing in the second bucket interpolates from its lower edge.
        assert bucket_quantile((100, 200), (5, 5, 0), 0.9) == pytest.approx(180.0)

    def test_bucket_quantile_edge_cases(self):
        assert bucket_quantile((100,), (0, 0), 0.5) is None  # empty
        # Everything in +Inf clamps to the highest finite edge.
        assert bucket_quantile((100, 200), (0, 0, 7), 0.5) == 200.0
        # q outside [0, 1] clamps.
        assert bucket_quantile((100,), (4, 0), 2.0) == pytest.approx(100.0)

    def test_histogram_quantile(self):
        h = Histogram("lat", bounds=(10, 100, 1000))
        assert h.quantile(0.5) is None
        for v in (5, 5, 50, 50, 500, 500):
            h.observe(v)
        p50 = h.quantile(0.5)
        assert 10 < p50 <= 100
        p99 = h.quantile(0.99)
        assert 100 < p99 <= 1000

    def test_snapshot_is_frozen_copy(self):
        h = Histogram("lat", bounds=(10,))
        h.observe(5)
        snap = h.snapshot()
        h.observe(5)
        assert snap.count == 1 and h.count == 2
        assert snap.quantile(0.5) == h.snapshot().delta(snap).quantile(0.5)

    def test_snapshot_delta_clamps_and_checks_bounds(self):
        a = HistogramSnapshot("h", (10.0,), (1, 0), 1, 5.0)
        b = HistogramSnapshot("h", (10.0,), (3, 1), 4, 25.0)
        d = b.delta(a)
        assert d.counts == (2, 1) and d.count == 3 and d.sum == 20.0
        # Backwards (a counter reset) clamps at zero, never negative.
        r = a.delta(b)
        assert r.counts == (0, 0) and r.count == 0 and r.sum == 0.0
        with pytest.raises(ValueError):
            a.delta(HistogramSnapshot("h", (99.0,), (0, 0), 0, 0.0))

    def test_snapshot_to_dict(self):
        snap = HistogramSnapshot("h", (10.0,), (2, 1), 3, 12.0)
        assert snap.to_dict() == {
            "name": "h",
            "bounds": [10.0],
            "counts": [2, 1],
            "count": 3,
            "sum": 12.0,
        }


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("device.packets_in")
        b = reg.counter("device.packets_in")
        assert a is b

    def test_labels_distinguish_instruments(self):
        reg = MetricsRegistry()
        a = reg.counter("table.hits", table="a")
        b = reg.counter("table.hits", table="b")
        assert a is not b
        a.inc(2)
        assert reg.value("table.hits", table="a") == 2
        assert reg.value("table.hits", table="b") == 0

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x", bounds=(1,))

    def test_collectors_merge_into_collect(self):
        reg = MetricsRegistry()
        reg.counter("owned").inc(1)
        reg.add_collector(
            "tm", lambda: [Sample("tm.enqueued", 7, {}, "counter")]
        )
        names = {s.name for s in reg.collect()}
        assert {"owned", "tm.enqueued"} <= names
        assert reg.value("tm.enqueued") == 7
        reg.remove_collector("tm")
        assert reg.value("tm.enqueued", default=-1) == -1

    def test_value_default(self):
        reg = MetricsRegistry()
        assert reg.value("ghost") == 0
        assert reg.value("ghost", default=99) == 99

    def test_value_reaches_histograms_by_base_name(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", bounds=(10,))
        h.observe(5)
        h.observe(50)
        # Base-name lookup falls back to the observation count, so any
        # metric kind is addressable the same way.
        assert reg.value("lat") == 2
        assert reg.value("lat_sum") == 55

    def test_histogram_snapshot_from_collected_samples(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", bounds=(10, 100), table="x")
        for v in (5, 50, 500):
            h.observe(v)
        snap = reg.histogram_snapshot("lat", table="x")
        assert snap is not None
        assert snap.bounds == (10.0, 100.0)
        assert snap.counts == (1, 1, 1)  # cumulative buckets undiffed
        assert snap.count == 3 and snap.sum == 555
        assert reg.histogram_snapshot("lat", table="other") is None
        assert reg.histogram_snapshot("ghost") is None

    def test_to_dict_flat_mapping(self):
        reg = MetricsRegistry()
        reg.counter("device.packets_in").inc(3)
        reg.counter("table.hits", table="lpm").inc(1)
        flat = reg.to_dict()
        assert flat["device_packets_in"] == 3
        assert flat['table_hits{table="lpm"}'] == 1

    def test_prometheus_exposition(self):
        reg = MetricsRegistry()
        reg.counter("device.packets_in").inc(3)
        reg.gauge("tm.occupancy").set(2)
        h = reg.histogram("device.packet_bytes", (64, 128))
        h.observe(100)
        text = reg.to_prometheus()
        assert "# TYPE device_packets_in counter" in text
        assert "device_packets_in 3" in text
        assert "# TYPE tm_occupancy gauge" in text
        assert 'device_packet_bytes_bucket{le="+Inf"} 1' in text
        assert "device_packet_bytes_count 1" in text
        assert "device_packet_bytes_sum 100" in text
        assert text.endswith("\n")

    def test_label_values_escaped(self):
        # Prometheus text format: backslash, quote, and newline in a
        # label value must be escaped (and backslash first, so the
        # escapes themselves survive).
        reg = MetricsRegistry()
        reg.counter("flow.hits", flow='10.0.0.1->"evil"\\\n').inc(1)
        text = reg.to_prometheus()
        assert 'flow_hits{flow="10.0.0.1->\\"evil\\"\\\\\\n"} 1' in text
        assert text.count("\n") == 2  # TYPE line + sample line only


class TestSwitchRegistry:
    """The switch's registry is the source of truth for snapshot()."""

    @pytest.fixture
    def switch(self):
        from repro.compiler.rp4bc import compile_base
        from repro.ipsa.switch import IpsaSwitch
        from repro.programs import base_rp4_source, populate_base_tables

        device = IpsaSwitch(n_tsps=8)
        device.load_config(compile_base(base_rp4_source()).config)
        populate_base_tables(device.tables)
        return device

    def test_registry_matches_legacy_snapshot(self, switch):
        from repro.runtime.stats import snapshot
        from repro.workloads import ipv4_packet

        for _ in range(3):
            switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), port=0)
        stats = snapshot(switch)
        reg = switch.metrics
        assert reg.value("device.packets_in") == stats["device"]["packets_in"] == 3
        assert reg.value("device.packets_out") == stats["device"]["packets_out"]
        assert reg.value("tm.enqueued") == stats["tm"]["enqueued"] == 3
        assert (
            reg.value("table.hits", table="ipv4_lpm")
            == stats["tables"]["ipv4_lpm"]["hits"]
        )
        tsp0 = next(t for t in stats["tsps"] if t["index"] == 0)
        assert reg.value("tsp.packets", tsp=0) == tsp0["packets"] == 3

    def test_packet_size_histogram_observes_injections(self, switch):
        from repro.workloads import ipv4_packet

        data = ipv4_packet("10.1.0.1", "10.2.0.5")
        switch.inject(data, port=0)
        hist = switch.metrics.histogram(
            "device.packet_bytes", switch._packet_bytes.bounds
        )
        assert hist.count == 1
        assert hist.sum == len(data)

    def test_prometheus_export_covers_subsystems(self, switch):
        from repro.workloads import ipv4_packet

        switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), port=0)
        text = switch.metrics.to_prometheus()
        assert "device_packets_in 1" in text
        assert 'tsp_packets{tsp="0"} 1' in text
        assert 'table_entries{table="ipv4_lpm"}' in text
        assert "tm_enqueued 1" in text

"""Tests for the three command-line tools (rp4fc, rp4bc, ipbm-ctl)."""

import json

import pytest

from repro.compiler.cli import rp4bc_main, rp4fc_main
from repro.runtime.cli import main as ipbm_ctl_main
from repro.programs import (
    base_p4_source,
    base_rp4_source,
    ecmp_load_script,
    ecmp_rp4_source,
)


@pytest.fixture
def files(tmp_path):
    base_p4 = tmp_path / "base.p4"
    base_p4.write_text(base_p4_source())
    base_rp4 = tmp_path / "base.rp4"
    base_rp4.write_text(base_rp4_source())
    ecmp_rp4 = tmp_path / "ecmp.rp4"
    ecmp_rp4.write_text(ecmp_rp4_source())
    script = tmp_path / "update.txt"
    script.write_text(ecmp_load_script())
    return tmp_path


class TestRp4fcCli:
    def test_writes_rp4_and_api(self, files):
        out = files / "out.rp4"
        api = files / "api.py"
        code = rp4fc_main(
            [str(files / "base.p4"), "-o", str(out), "--api", str(api)]
        )
        assert code == 0
        from repro.rp4 import parse_rp4

        prog = parse_rp4(out.read_text())
        assert "ipv4_lpm" in prog.tables
        compile(api.read_text(), "<api>", "exec")

    def test_stdout_default(self, files, capsys):
        rp4fc_main([str(files / "base.p4")])
        assert "table ipv4_lpm" in capsys.readouterr().out


class TestRp4bcCli:
    def test_base_config(self, files):
        out = files / "config.json"
        code = rp4bc_main([str(files / "base.rp4"), "-o", str(out)])
        assert code == 0
        config = json.loads(out.read_text())
        assert len(config["templates"]) == 7

    def test_with_update_script(self, files):
        out = files / "config.json"
        code = rp4bc_main(
            [
                str(files / "base.rp4"),
                "-o", str(out),
                "--script", str(files / "update.txt"),
                "--snippet", f"ecmp.rp4={files / 'ecmp.rp4'}",
            ]
        )
        assert code == 0
        config = json.loads(out.read_text())
        assert config["update"]["new_tables"] == ["ecmp_ipv4", "ecmp_ipv6"]
        assert config["update"]["removed_stages"] == ["nexthop"]

    def test_greedy_layout_flag(self, files, capsys):
        code = rp4bc_main([str(files / "base.rp4"), "--layout", "greedy"])
        assert code == 0
        assert "templates" in capsys.readouterr().out

    def test_bad_snippet_spec(self, files):
        with pytest.raises(SystemExit):
            rp4bc_main(
                [
                    str(files / "base.rp4"),
                    "--script", str(files / "update.txt"),
                    "--snippet", "missing-equals-sign",
                ]
            )


class TestIpbmCtl:
    def test_base_only(self, files, capsys):
        code = ipbm_ctl_main([str(files / "base.rp4")])
        assert code == 0
        out = capsys.readouterr().out
        assert "base design loaded" in out
        assert "TSP 0" in out

    def test_with_script(self, files, capsys):
        code = ipbm_ctl_main(
            [
                str(files / "base.rp4"),
                "--script", str(files / "update.txt"),
                "--snippet", f"ecmp.rp4={files / 'ecmp.rp4'}",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "update applied" in out
        assert "ecmp" in out


class TestIpbmCtlExtended:
    def test_populate_and_stats(self, files, capsys):
        code = ipbm_ctl_main([str(files / "base.rp4"), "--populate", "--stats"])
        assert code == 0
        out = capsys.readouterr().out
        assert "populated: populate_base_tables" in out
        assert "device: in=0" in out

    def test_pcap_replay(self, files, capsys):
        from repro.net.pcap import load_trace, save_trace
        from repro.workloads import mixed_l3_trace

        pcap_in = files / "in.pcap"
        pcap_out = files / "out.pcap"
        save_trace(str(pcap_in), mixed_l3_trace(20, seed=8))
        code = ipbm_ctl_main(
            [
                str(files / "base.rp4"),
                "--populate",
                "--pcap-in", str(pcap_in),
                "--pcap-out", str(pcap_out),
            ]
        )
        assert code == 0
        assert "replayed 20 packets: 20 forwarded" in capsys.readouterr().out
        assert len(load_trace(str(pcap_out))) == 20

    def test_update_one_shot(self, files, capsys):
        code = ipbm_ctl_main(
            [
                "update",
                str(files / "base.rp4"),
                "--script", str(files / "update.txt"),
                "--snippet", f"ecmp.rp4={files / 'ecmp.rp4'}",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "update applied" in out
        assert "stall=" in out

    def test_update_staged_commit(self, files, capsys):
        code = ipbm_ctl_main(
            [
                "update",
                str(files / "base.rp4"),
                "--script", str(files / "update.txt"),
                "--snippet", f"ecmp.rp4={files / 'ecmp.rp4'}",
                "--staged",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "staged txn" in out and "phase=validated" in out
        assert "committed txn" in out
        assert "ecmp" in out

    def test_update_abort_is_a_dry_run(self, files, capsys):
        code = ipbm_ctl_main(
            [
                "update",
                str(files / "base.rp4"),
                "--script", str(files / "update.txt"),
                "--snippet", f"ecmp.rp4={files / 'ecmp.rp4'}",
                "--abort",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "aborted txn" in out
        assert "device state unchanged" in out

    def test_update_staging_failure_exits_nonzero(self, files, capsys):
        # The script references a snippet that was never supplied.
        code = ipbm_ctl_main(
            [
                "update",
                str(files / "base.rp4"),
                "--script", str(files / "update.txt"),
                "--staged",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "staging failed" in out
        assert "device unchanged" in out

    def test_update_fabric_rollout(self, files, capsys):
        code = ipbm_ctl_main(
            [
                "update",
                str(files / "base.rp4"),
                "--script", str(files / "update.txt"),
                "--snippet", f"ecmp.rp4={files / 'ecmp.rp4'}",
                "--nodes", "3",
                "--wave-size", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "rollout complete: canary=n0 waves=[['n1', 'n2']]" in out
        assert "n2:" in out

    def test_health_check_healthy_fleet(self, files, capsys):
        code = ipbm_ctl_main(
            ["health", "check", "--nodes", "2", "--packets", "4", "--ticks", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "n0: health=1.00" in out
        assert "n1: health=1.00" in out
        assert "0 firing" in out

    def test_health_check_fault_exits_nonzero(self, files, capsys):
        code = ipbm_ctl_main(
            [
                "health", "check",
                "--nodes", "2",
                "--packets", "4",
                "--ticks", "4",
                "--fault", "n1",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "n1: health=0.00 firing=" in out
        assert "device-drop-rate" in out

    def test_health_check_json_and_metrics(self, files, capsys):
        metrics = files / "alerts.prom"
        code = ipbm_ctl_main(
            [
                "health", "check",
                "--nodes", "2",
                "--ticks", "4",
                "--fault", "n0",
                "--json",
                "--metrics-out", str(metrics),
            ]
        )
        assert code == 1
        summary = json.loads(capsys.readouterr().out.split("\n", 1)[1])
        assert summary["devices"]["n0"]["score"] == 0.0
        assert summary["devices"]["n1"]["score"] == 1.0
        exposition = metrics.read_text()
        assert 'ALERTS{alertname="device-drop-rate"' in exposition
        assert 'health_score{device="n1"} 1' in exposition

    def test_health_watch_streams_transitions(self, files, capsys):
        code = ipbm_ctl_main(
            ["health", "watch", "--nodes", "2", "--ticks", "4", "--fault", "n1"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "tick 0: n0=1.00 n1=1.00" in out
        assert "device-drop-rate@n1: pending -> firing" in out

    def test_health_rules_round_trip(self, files, capsys):
        rules_file = files / "rules.json"
        code = ipbm_ctl_main(["health", "rules", "--out", str(rules_file)])
        assert code == 0
        assert "wrote 3 rules" in capsys.readouterr().out
        payload = json.loads(rules_file.read_text())
        assert [r["kind"] for r in payload] == [
            "threshold", "burn_rate", "absence"
        ]
        # Reload the written file and render it back as JSON: identical.
        code = ipbm_ctl_main(
            ["health", "rules", "--rules", str(rules_file), "--json"]
        )
        assert code == 0
        assert json.loads(capsys.readouterr().out) == payload

    def test_health_dump_writes_postmortem(self, files, capsys):
        postmortem = files / "flight.json"
        code = ipbm_ctl_main(
            ["health", "dump", str(postmortem), "--nodes", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "rollout aborted at 'n2'" in out
        assert "rolled back: n2, n1, n0" in out
        record = json.loads(postmortem.read_text())
        assert record["reason"] == "rollout_abort"
        assert record["counts"]["rollback"] == 3
        kinds = {e["kind"] for e in record["events"]}
        assert {"metric", "alert", "txn_commit", "rollback"} <= kinds

    def test_health_unknown_fault_node(self, files):
        with pytest.raises(SystemExit):
            ipbm_ctl_main(["health", "check", "--fault", "ghost"])

    def test_script_with_populate(self, files, capsys):
        code = ipbm_ctl_main(
            [
                str(files / "base.rp4"),
                "--populate",
                "--script", str(files / "update.txt"),
                "--snippet", f"ecmp.rp4={files / 'ecmp.rp4'}",
                "--stats",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "populate_ecmp_tables" in out
        assert "table ecmp_ipv4" in out

"""Unit tests for the hardware resource/power/throughput models."""

import pytest

from repro.compiler.rp4bc import TargetSpec, compile_base
from repro.hw import (
    ipsa_power,
    ipsa_resources,
    ipsa_throughput,
    pisa_power,
    pisa_resources,
    pisa_throughput,
    power_vs_stages,
)
from repro.hw.power import crossover_stage
from repro.ipsa.switch import IpsaSwitch
from repro.memory.crossbar import ClusteredCrossbar
from repro.p4 import build_hlir, parse_p4
from repro.pisa.switch import PisaSwitch
from repro.programs import base_p4_source, base_rp4_source
from repro.programs.base_l2l3 import populate_base_tables
from repro.workloads import mixed_l3_trace


@pytest.fixture(scope="module")
def base_design():
    return compile_base(base_rp4_source())


@pytest.fixture(scope="module")
def base_hlir():
    return build_hlir(parse_p4(base_p4_source()))


class TestResources:
    def test_pisa_breakdown_matches_paper(self, base_hlir):
        report = pisa_resources(base_hlir, n_stages=8)
        assert report.lut["Front parser"] == pytest.approx(0.88, abs=0.05)
        assert report.lut_total == pytest.approx(6.20, abs=0.1)
        assert report.ff_total == pytest.approx(0.57, abs=0.05)

    def test_ipsa_breakdown_matches_paper(self, base_design):
        report = ipsa_resources(base_design)
        assert report.lut["Crossbar"] == pytest.approx(1.29, abs=0.1)
        assert report.lut_total == pytest.approx(7.12, abs=0.2)
        assert 0.75 <= report.ff_total <= 1.0  # paper: 0.92

    def test_ipsa_costs_more_than_pisa(self, base_design, base_hlir):
        ipsa = ipsa_resources(base_design)
        pisa = pisa_resources(base_hlir)
        assert ipsa.lut_total > pisa.lut_total
        assert ipsa.ff_total > pisa.ff_total
        # FF penalty proportionally larger (template stores are FF-heavy)
        assert (ipsa.ff_total / pisa.ff_total) > (ipsa.lut_total / pisa.lut_total)

    def test_clustered_crossbar_cheaper(self):
        target = TargetSpec(
            memory_clusters=4,
            crossbar=ClusteredCrossbar(tsp_cluster_size=2, memory_clusters=4),
        )
        clustered = ipsa_resources(compile_base(base_rp4_source(), target))
        full = ipsa_resources(compile_base(base_rp4_source()))
        assert clustered.lut["Crossbar"] < full.lut["Crossbar"]

    def test_rows_include_total(self, base_hlir):
        rows = pisa_resources(base_hlir).rows()
        assert rows[-1][0] == "Total"


class TestPower:
    def test_pisa_flat(self):
        assert pisa_power(8).total == pytest.approx(2.95, abs=0.01)

    def test_ipsa_about_ten_percent_more(self):
        ratio = ipsa_power(8).total / pisa_power(8).total
        assert 1.05 <= ratio <= 1.20

    def test_ipsa_scales_with_active(self):
        totals = [ipsa_power(k).total for k in range(1, 9)]
        assert totals == sorted(totals)
        assert totals[0] < pisa_power(8).total

    def test_fig6_series(self):
        rows = power_vs_stages()
        assert len(rows) == 8
        pisa_values = {p for _, p, _ in rows}
        assert len(pisa_values) == 1  # PISA is flat
        assert rows[0][2] < rows[0][1]  # IPSA wins at low occupancy
        assert rows[-1][2] > rows[-1][1]  # and loses at full occupancy

    def test_crossover_exists(self):
        cross = crossover_stage()
        assert cross is not None and 2 <= cross <= 8

    def test_active_bounds(self):
        with pytest.raises(ValueError):
            ipsa_power(9, n_tsps=8)


class TestThroughput:
    @pytest.fixture(scope="class")
    def reports(self, base_design):
        ipsa = IpsaSwitch()
        ipsa.load_config(base_design.config)
        populate_base_tables(ipsa.tables)
        pisa = PisaSwitch(n_stages=8)
        pisa.load(base_p4_source())
        populate_base_tables(pisa.tables)
        trace = mixed_l3_trace(200)
        return (
            pisa_throughput(pisa, trace),
            ipsa_throughput(ipsa, base_design, trace),
        )

    def test_pisa_faster(self, reports):
        pisa, ipsa = reports
        assert pisa.model_mpps > ipsa.model_mpps
        assert 1.5 <= pisa.model_mpps / ipsa.model_mpps <= 5.0

    def test_magnitudes(self, reports):
        pisa, ipsa = reports
        assert 90 <= pisa.model_mpps <= 210
        assert 30 <= ipsa.model_mpps <= 110

    def test_all_forwarded(self, reports):
        pisa, ipsa = reports
        assert pisa.forwarded == pisa.packets
        assert ipsa.forwarded == ipsa.packets

    def test_software_pps_measured(self, reports):
        pisa, ipsa = reports
        assert pisa.software_pps > 0 and ipsa.software_pps > 0

    def test_software_pps_deterministic_with_manual_clock(self, base_design):
        from repro.obs.clock import ManualClock

        ipsa = IpsaSwitch()
        ipsa.load_config(base_design.config)
        populate_base_tables(ipsa.tables)
        pisa = PisaSwitch(n_stages=8)
        pisa.load(base_p4_source())
        populate_base_tables(pisa.tables)
        trace = mixed_l3_trace(50)
        # One tick per clock read: the measured window is exactly 1s,
        # so pps equals the packet count -- no scheduler jitter at all.
        ipsa_report = ipsa_throughput(
            ipsa, base_design, trace, clock=ManualClock(tick=1.0)
        )
        pisa_report = pisa_throughput(pisa, trace, clock=ManualClock(tick=1.0))
        assert ipsa_report.software_pps == 50.0
        assert pisa_report.software_pps == 50.0
        # The cycle model itself never depends on the wall clock.
        assert ipsa_report.model_mpps == pytest.approx(
            ipsa_throughput(ipsa, base_design, trace).model_mpps
        )

"""Unit tests for Internet checksum helpers."""

import pytest

from repro.net.checksum import internet_checksum, ipv4_header_checksum


class TestInternetChecksum:
    def test_known_vector(self):
        # RFC 1071 worked example.
        data = bytes.fromhex("0001f203f4f5f6f7")
        assert internet_checksum(data) == 0x220D

    def test_odd_length_padded(self):
        assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")

    def test_all_zero(self):
        assert internet_checksum(b"\x00" * 20) == 0xFFFF

    def test_verification_property(self):
        # A header containing its own checksum sums to zero.
        header = bytearray(bytes.fromhex(
            "450000730000400040110000c0a80001c0a800c7"
        ))
        csum = ipv4_header_checksum(bytes(header))
        header[10:12] = csum.to_bytes(2, "big")
        assert internet_checksum(bytes(header)) == 0


class TestIpv4HeaderChecksum:
    def test_wikipedia_vector(self):
        header = bytes.fromhex("450000730000400040110000c0a80001c0a800c7")
        assert ipv4_header_checksum(header) == 0xB861

    def test_checksum_field_ignored(self):
        base = bytes.fromhex("450000730000400040110000c0a80001c0a800c7")
        poisoned = base[:10] + b"\xde\xad" + base[12:]
        assert ipv4_header_checksum(base) == ipv4_header_checksum(poisoned)

    def test_short_header_rejected(self):
        with pytest.raises(ValueError):
            ipv4_header_checksum(b"\x45\x00")

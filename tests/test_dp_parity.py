"""Differential tests for the unified execution core (repro.dp).

The single hook-parameterized loop replaced three hand-maintained
copies of the dataplane semantics; these tests pin the invariant that
made the refactor safe: plain, traced, and profiled runs are
byte-identical on the wire and identical in their table/stat effects,
and ``inject_batch`` equals N individual ``inject`` calls.
"""

import pytest

from repro.bench.scenarios import case_trace, make_switch

CASES = ("C1", "C2", "C3")
N_PACKETS = 25


def _run(switch, trace):
    """Inject a trace packet-by-packet; one output slot per packet."""
    return [switch.inject(data, port) for data, port in trace]


def _wire(outputs):
    """PortOuts reduced to comparable (port, bytes, to_cpu) tuples."""
    return [
        None if out is None else (out.port, out.data, out.to_cpu)
        for out in outputs
    ]


def _effects(switch):
    """The externally visible side effects of a run."""
    effects = {
        "packets_in": switch.packets_in,
        "packets_out": switch.packets_out,
        "packets_dropped": switch.packets_dropped,
        "punted": switch.punted,
        "drop_reasons": dict(switch.drop_reasons),
        "tables": {
            name: (table.hit_count, table.miss_count)
            for name, table in switch.tables.items()
        },
    }
    pipeline = switch.pipeline
    if hasattr(pipeline, "tsps"):
        effects["tsps"] = [
            (t.stats.packets, t.stats.lookups, t.stats.actions_run)
            for t in pipeline.tsps
        ]
    else:
        stats = pipeline.stats
        effects["stats"] = (stats.packets, stats.lookups, stats.actions_run)
    return effects


@pytest.mark.parametrize("arch", ["ipsa", "pisa"])
@pytest.mark.parametrize("case", CASES)
class TestInstrumentationParity:
    """C1-C3: tracing/profiling observe; they must not perturb."""

    def test_traced_run_is_byte_identical(self, arch, case):
        trace = case_trace(case, N_PACKETS)
        plain = make_switch(arch, case)
        traced = make_switch(arch, case)
        traced.enable_tracing(capacity=N_PACKETS)
        plain_outs = _run(plain, trace)
        traced_outs = _run(traced, trace)
        assert _wire(plain_outs) == _wire(traced_outs)
        assert _effects(plain) == _effects(traced)

    def test_profiled_run_is_byte_identical(self, arch, case):
        trace = case_trace(case, N_PACKETS)
        plain = make_switch(arch, case)
        profiled = make_switch(arch, case)
        profiled.enable_profiling()
        plain_outs = _run(plain, trace)
        profiled_outs = _run(profiled, trace)
        assert _wire(plain_outs) == _wire(profiled_outs)
        assert _effects(plain) == _effects(profiled)
        assert profiled.profiler.packets == N_PACKETS


@pytest.mark.parametrize("arch", ["ipsa", "pisa"])
class TestBatchEquivalence:
    """inject_batch(trace) == [inject(p) for p in trace], slot for slot."""

    @pytest.mark.parametrize("case", ("base",) + CASES)
    def test_batch_matches_singles(self, arch, case):
        trace = case_trace(case, N_PACKETS)
        singles = make_switch(arch, case)
        batched = make_switch(arch, case)
        single_outs = _run(singles, trace)
        batch = batched.inject_batch(trace)
        assert len(batch) == N_PACKETS
        assert _wire(single_outs) == _wire(list(batch))
        assert _effects(singles) == _effects(batched)
        assert batch.forwarded == sum(
            1 for out in single_outs if out is not None
        )
        assert batch.dropped == N_PACKETS - batch.forwarded

    def test_batch_matches_singles_profiled(self, arch):
        trace = case_trace("base", N_PACKETS)
        singles = make_switch(arch, "base")
        batched = make_switch(arch, "base")
        singles.enable_profiling()
        batched.enable_profiling()
        single_outs = _run(singles, trace)
        batch = batched.inject_batch(trace)
        assert _wire(single_outs) == _wire(list(batch))
        assert batched.profiler.packets == N_PACKETS
        assert singles.profiler.phase_seconds().keys() == (
            batched.profiler.phase_seconds().keys()
        )

    def test_batch_loops_inject_under_tracing(self, arch):
        """With a tracer attached each packet still gets its own trace."""
        trace = case_trace("base", 5)
        switch = make_switch(arch, "base")
        switch.enable_tracing(capacity=16)
        batch = switch.inject_batch(trace)
        assert len(switch.tracer.traces) == 5
        assert batch.forwarded + batch.dropped == 5

"""Differential tests for the unified execution core (repro.dp).

The single hook-parameterized loop replaced three hand-maintained
copies of the dataplane semantics; these tests pin the invariant that
made the refactor safe: plain, traced, and profiled runs are
byte-identical on the wire and identical in their table/stat effects,
and ``inject_batch`` equals N individual ``inject`` calls.

The columnar classes extend the same contract to the vectorized batch
path (:mod:`repro.dp.columnar`): across the whole case matrix a batch
run with the columnar fast path enabled must be byte-identical on the
wire -- same ports, same drop slots, same drop reasons, same table and
stage counters -- to the scalar interpreter, including when divergent
packets (varbit INT stacks, short frames, unknown EtherTypes) are
peeled out of an otherwise homogeneous batch.
"""

import pytest

from repro.bench.scenarios import (
    case_trace,
    make_ipsa_controller,
    make_switch,
)

CASES = ("C1", "C2", "C3")
N_PACKETS = 25


def _scalar_switch(arch, case):
    """A switch pinned to the scalar interpreter."""
    switch = make_switch(arch, case)
    switch.dp.columnar_enabled = False
    return switch


def _run(switch, trace):
    """Inject a trace packet-by-packet; one output slot per packet."""
    return [switch.inject(data, port) for data, port in trace]


def _wire(outputs):
    """PortOuts reduced to comparable (port, bytes, to_cpu) tuples."""
    return [
        None if out is None else (out.port, out.data, out.to_cpu)
        for out in outputs
    ]


def _effects(switch):
    """The externally visible side effects of a run."""
    effects = {
        "packets_in": switch.packets_in,
        "packets_out": switch.packets_out,
        "packets_dropped": switch.packets_dropped,
        "punted": switch.punted,
        "drop_reasons": dict(switch.drop_reasons),
        "tables": {
            name: (table.hit_count, table.miss_count)
            for name, table in switch.tables.items()
        },
    }
    pipeline = switch.pipeline
    if hasattr(pipeline, "tsps"):
        effects["tsps"] = [
            (t.stats.packets, t.stats.lookups, t.stats.actions_run)
            for t in pipeline.tsps
        ]
    else:
        stats = pipeline.stats
        effects["stats"] = (stats.packets, stats.lookups, stats.actions_run)
    return effects


@pytest.mark.parametrize("arch", ["ipsa", "pisa"])
@pytest.mark.parametrize("case", CASES)
class TestInstrumentationParity:
    """C1-C3: tracing/profiling observe; they must not perturb."""

    def test_traced_run_is_byte_identical(self, arch, case):
        trace = case_trace(case, N_PACKETS)
        plain = make_switch(arch, case)
        traced = make_switch(arch, case)
        traced.enable_tracing(capacity=N_PACKETS)
        plain_outs = _run(plain, trace)
        traced_outs = _run(traced, trace)
        assert _wire(plain_outs) == _wire(traced_outs)
        assert _effects(plain) == _effects(traced)

    def test_profiled_run_is_byte_identical(self, arch, case):
        trace = case_trace(case, N_PACKETS)
        plain = make_switch(arch, case)
        profiled = make_switch(arch, case)
        profiled.enable_profiling()
        plain_outs = _run(plain, trace)
        profiled_outs = _run(profiled, trace)
        assert _wire(plain_outs) == _wire(profiled_outs)
        assert _effects(plain) == _effects(profiled)
        assert profiled.profiler.packets == N_PACKETS


@pytest.mark.parametrize("arch", ["ipsa", "pisa"])
class TestBatchEquivalence:
    """inject_batch(trace) == [inject(p) for p in trace], slot for slot."""

    @pytest.mark.parametrize("case", ("base",) + CASES)
    def test_batch_matches_singles(self, arch, case):
        trace = case_trace(case, N_PACKETS)
        singles = make_switch(arch, case)
        batched = make_switch(arch, case)
        single_outs = _run(singles, trace)
        batch = batched.inject_batch(trace)
        assert len(batch) == N_PACKETS
        assert _wire(single_outs) == _wire(list(batch))
        assert _effects(singles) == _effects(batched)
        assert batch.forwarded == sum(
            1 for out in single_outs if out is not None
        )
        assert batch.dropped == N_PACKETS - batch.forwarded

    def test_batch_matches_singles_profiled(self, arch):
        trace = case_trace("base", N_PACKETS)
        singles = make_switch(arch, "base")
        batched = make_switch(arch, "base")
        singles.enable_profiling()
        batched.enable_profiling()
        single_outs = _run(singles, trace)
        batch = batched.inject_batch(trace)
        assert _wire(single_outs) == _wire(list(batch))
        assert batched.profiler.packets == N_PACKETS
        assert singles.profiler.phase_seconds().keys() == (
            batched.profiler.phase_seconds().keys()
        )

    def test_batch_loops_inject_under_tracing(self, arch):
        """With a tracer attached each packet still gets its own trace."""
        trace = case_trace("base", 5)
        switch = make_switch(arch, "base")
        switch.enable_tracing(capacity=16)
        batch = switch.inject_batch(trace)
        assert len(switch.tracer.traces) == 5
        assert batch.forwarded + batch.dropped == 5


@pytest.mark.parametrize("arch", ["ipsa", "pisa"])
@pytest.mark.parametrize("case", ("base",) + CASES)
class TestColumnarParity:
    """The vectorized batch path vs the scalar interpreter.

    Full {base,C1,C2,C3} x {ipsa,pisa} matrix: whatever mixture of
    vectorized groups and scalar peels a case produces, the columnar
    front door must be byte-identical on the wire and identical in
    drop reasons, table counters, and stage stats.
    """

    def test_columnar_batch_is_byte_identical(self, arch, case):
        trace = case_trace(case, 60)
        scalar = _scalar_switch(arch, case)
        fast = make_switch(arch, case)
        assert fast.dp.columnar_enabled
        scalar_batch = scalar.inject_batch(trace)
        fast_batch = fast.inject_batch(trace)
        assert _wire(list(scalar_batch)) == _wire(list(fast_batch))
        assert _effects(scalar) == _effects(fast)

    def test_columnar_batch_matches_singles(self, arch, case):
        trace = case_trace(case, 40)
        singles = _scalar_switch(arch, case)
        fast = make_switch(arch, case)
        single_outs = _run(singles, trace)
        batch = fast.inject_batch(trace)
        assert _wire(single_outs) == _wire(list(batch))
        assert _effects(singles) == _effects(fast)


@pytest.mark.parametrize("arch", ["ipsa", "pisa"])
@pytest.mark.parametrize("case", ("base", "C1"))
def test_columnar_engages_on_hot_cases(arch, case):
    """The headline cells must actually vectorize, or the parity
    matrix above would be comparing the scalar loop with itself."""
    from repro.dp import columnar

    switch = make_switch(arch, case)
    items = case_trace(case, 32)
    outputs = columnar.try_run_batch(switch.dp, items)
    assert outputs is not None
    assert len(outputs) == 32


@pytest.mark.parametrize("arch", ["ipsa", "pisa"])
def test_mixed_divergent_batch_preserves_order(arch):
    """A heterogeneous batch -- several parse-set signatures plus rows
    that fall off the parse graph -- comes back in injection order,
    slot for slot, whatever mixture of vector groups and scalar peels
    the classifier produced."""
    from repro.workloads import ipv4_packet, ipv6_packet, l2_packet

    items = []
    for i in range(12):
        items.append((ipv4_packet("10.1.0.1", "10.2.0.1", sport=3000 + i), 0))
        if i % 2 == 0:
            items.append((ipv6_packet("2001:db8::1", "2001:db8:2::5"), 0))
        if i % 3 == 0:
            items.append((l2_packet(i % 4), 0))
        if i % 4 == 0:
            # unknown EtherType: parses eth, then falls off the graph
            items.append((bytes(12) + b"\x88\xb5" + bytes(32), 0))
    scalar = _scalar_switch(arch, "base")
    fast = make_switch(arch, "base")
    scalar_batch = scalar.inject_batch(items)
    fast_batch = fast.inject_batch(items)
    assert len(fast_batch) == len(items)
    assert _wire(list(scalar_batch)) == _wire(list(fast_batch))
    assert _effects(scalar) == _effects(fast)


class TestColumnarIntShimPeel:
    """Varbit INT stacks must peel to the scalar loop, byte-identically."""

    @staticmethod
    def _int_trace(n=8):
        """Packets wearing an INT shim + hop stack, built by replaying
        plain ipv4 through a source switch with ``int_insert`` live."""
        from repro.programs import (
            int_load_script,
            int_rp4_source,
            populate_int_tables,
        )
        from repro.workloads import ipv4_packet

        source = make_ipsa_controller("base")
        source.run_script(int_load_script(), {"int.rp4": int_rp4_source()})
        populate_int_tables(source.switch.tables, switch_id=1)
        source.switch.enable_int()
        outs = [
            source.switch.inject(
                ipv4_packet("10.1.0.1", "10.2.0.1", sport=1024 + i), 0
            )
            for i in range(n)
        ]
        items = [(out.data, 0) for out in outs if out is not None]
        assert items, "INT source produced no output packets"
        return items

    @staticmethod
    def _int_sink():
        """A switch whose parse graph reaches the varbit INT stack.

        Base + ``int_insert`` + ``int_strip`` (the strip function links
        itself after the insert stage), tables populated for the sink
        role.  INT timestamping stays *off*: ``enable_int`` would pin
        the front door to the scalar loop, and this test needs the
        columnar path attempted so the varbit rows actually peel.
        """
        from repro.obs.intcol import IntCollector
        from repro.programs import (
            int_load_script,
            int_rp4_source,
            int_strip_load_script,
            int_strip_rp4_source,
            populate_int_sink_tables,
            populate_int_tables,
        )

        controller = make_ipsa_controller("base")
        controller.run_script(
            int_load_script(), {"int.rp4": int_rp4_source()}
        )
        populate_int_tables(controller.switch.tables, switch_id=2)
        controller.run_script(
            int_strip_load_script(),
            {"int_strip.rp4": int_strip_rp4_source()},
        )
        populate_int_sink_tables(controller.switch.tables)
        switch = controller.switch
        switch.attach_int_collector(IntCollector(), node="sink")
        return switch

    def test_int_shim_batch_is_byte_identical(self):
        from repro.workloads import ipv4_packet

        int_items = self._int_trace()
        plain_items = [
            (ipv4_packet("10.1.0.5", "10.2.0.9", sport=2000 + i), 0)
            for i in range(len(int_items))
        ]
        # Interleave so the peel must scatter back into its slots.
        mixed = [
            item for pair in zip(plain_items, int_items) for item in pair
        ]
        scalar = self._int_sink()
        scalar.dp.columnar_enabled = False
        fast = self._int_sink()
        scalar_batch = scalar.inject_batch(mixed)
        fast_batch = fast.inject_batch(mixed)
        assert _wire(list(scalar_batch)) == _wire(list(fast_batch))
        assert _effects(scalar) == _effects(fast)

    def test_varbit_rows_peel_at_classification(self):
        """The classifier sends exactly the INT-wearing rows to the
        peel list: their parse chain reaches the varbit hop stack,
        which has no fixed column layout.  The plain rows classify
        into a normal signature group -- on *this* device that group
        is then ineligible too (``int_insert`` runs an extern), so the
        whole batch defers to the scalar loop, which is what the
        byte-identical test above exercises end to end."""
        from repro.dp import columnar
        from repro.workloads import ipv4_packet

        switch = self._int_sink()
        np = columnar.require_numpy()
        core = switch.dp
        plan = core.plan()
        prog = columnar.ColumnarProgram(np, core, plan)
        assert prog.supported

        plain_items = [
            (ipv4_packet("10.1.0.5", "10.2.0.9", sport=2000 + i), 0)
            for i in range(8)
        ]
        int_items = self._int_trace(4)
        items = plain_items + int_items
        _mat, _lengths, _ports, groups, peel = columnar._classify(
            np, items, prog.header_types, prog.linkage, prog.first_header
        )
        peeled = sorted(int(i) for rows in peel for i in rows)
        assert peeled == list(range(len(plain_items), len(items)))
        grouped = sorted(
            int(i)
            for _chain, _terminal, row_arrays in groups.values()
            for rows in row_arrays
            for i in rows
        )
        assert grouped == list(range(len(plain_items)))
        # Extern-laden pipeline: every signature is ineligible, so the
        # batch as a whole falls back rather than half-running.
        assert columnar.try_run_batch(core, items) is None


class TestColumnarPlanEpochs:
    """The cached columnar program follows plan invalidation/flips."""

    def test_epoch_flip_between_batches(self):
        from repro.bench.scenarios import CASE_ARTIFACTS

        script, snippet, name, populate, _ = CASE_ARTIFACTS["C1"]
        scalar_ctl = make_ipsa_controller("base")
        fast_ctl = make_ipsa_controller("base")
        scalar_sw = scalar_ctl.switch
        scalar_sw.dp.columnar_enabled = False
        fast_sw = fast_ctl.switch

        base_trace = case_trace("base", 40)
        s1 = scalar_sw.inject_batch(base_trace)
        f1 = fast_sw.inject_batch(base_trace)
        assert _wire(list(s1)) == _wire(list(f1))
        cached_before = fast_sw.dp._columnar
        assert cached_before is not None
        assert cached_before[0] is fast_sw.dp.plan()

        # The epoch flip: C1 loaded in-situ between batches.  The old
        # columnar program is keyed on the old plan object, so the
        # flip retires it for free.
        for ctl in (scalar_ctl, fast_ctl):
            ctl.run_script(script(), {name: snippet()})
            populate(ctl.switch.tables)

        c1_trace = case_trace("C1", 40)
        s2 = scalar_sw.inject_batch(c1_trace)
        f2 = fast_sw.inject_batch(c1_trace)
        assert _wire(list(s2)) == _wire(list(f2))
        assert _effects(scalar_sw) == _effects(fast_sw)
        cached_after = fast_sw.dp._columnar
        assert cached_after[0] is fast_sw.dp.plan()
        assert cached_after[0] is not cached_before[0]

    def test_occupied_tm_defers_to_scalar(self):
        """In-flight TM packets (mid-update drains) force the scalar
        loop: the columnar passthrough assumes an empty TM."""
        from repro.dp import columnar

        switch = make_switch("ipsa", "base")
        trace = case_trace("base", 8)
        parked = switch.dp.new_packet(trace[0][0], 0)
        switch.pipeline.tm.enqueue(parked)
        assert columnar.try_run_batch(switch.dp, trace) is None

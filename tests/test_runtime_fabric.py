"""Tests for the multi-switch fabric."""

import pytest

from repro.net.addresses import parse_ipv6, parse_mac
from repro.programs import (
    base_rp4_source,
    populate_base_tables,
    srv6_load_script,
    srv6_rp4_source,
)
from repro.programs.base_l2l3 import ROUTER_MAC
from repro.runtime import Controller
from repro.runtime.fabric import Delivery, Fabric, FabricError
from repro.tables.table import TableEntry
from repro.workloads import ipv4_packet, srv6_packet


def base_node():
    controller = Controller()
    controller.load_base(base_rp4_source())
    populate_base_tables(controller.switch.tables)
    return controller


def two_node_fabric():
    """A <-> B on A's port 3 / B's port 0.

    A's next hop 2 resolves to a DMAC that must be B's router MAC for
    routing to continue at B, so A's nexthop entry is repointed.
    """
    fabric = Fabric()
    a = fabric.add_node("A", base_node())
    fabric.add_node("B", base_node())
    fabric.wire("A", 3, "B", 0)

    # Repoint A's nexthop 2 at B's router MAC (port 3 -> the wire).
    nexthop = a.switch.table("nexthop")
    old = next(e for e in nexthop.entries() if e.key == (2,))
    nexthop.remove_entry(old)
    nexthop.add_entry(
        TableEntry(
            key=(2,),
            action="set_bd_dmac",
            action_data={"bd": 2, "dmac": parse_mac(ROUTER_MAC)},
            tag=1,
        )
    )
    a.switch.table("dmac").add_entry(
        TableEntry(
            key=(2, parse_mac(ROUTER_MAC)),
            action="set_egress_port",
            action_data={"port": 3},
            tag=1,
        )
    )
    return fabric


class TestTopology:
    def test_duplicate_node_rejected(self):
        fabric = Fabric()
        fabric.add_node("A", base_node())
        with pytest.raises(FabricError):
            fabric.add_node("A", base_node())

    def test_unknown_node(self):
        with pytest.raises(FabricError):
            Fabric().node("ghost")

    def test_double_wire_rejected(self):
        fabric = Fabric()
        fabric.add_node("A", base_node())
        fabric.add_node("B", base_node())
        fabric.wire("A", 3, "B", 0)
        with pytest.raises(FabricError):
            fabric.wire("A", 3, "B", 1)

    def test_wiring_is_bidirectional(self):
        fabric = Fabric()
        fabric.add_node("A", base_node())
        fabric.add_node("B", base_node())
        fabric.wire("A", 3, "B", 0)
        assert fabric.peer("A", 3) == ("B", 0)
        assert fabric.peer("B", 0) == ("A", 3)

    def test_max_hops_validation(self):
        with pytest.raises(ValueError):
            Fabric(max_hops=0)


class TestForwarding:
    def test_single_node_edge_delivery(self):
        fabric = Fabric()
        fabric.add_node("A", base_node())
        delivery = fabric.send("A", ipv4_packet("10.1.0.1", "10.2.0.5"), 0)
        assert isinstance(delivery, Delivery)
        assert delivery.node == "A" and delivery.port == 3
        assert delivery.hops == 1 and delivery.path == ("A",)

    def test_two_hop_path(self):
        fabric = two_node_fabric()
        delivery = fabric.send("A", ipv4_packet("10.1.0.1", "10.2.0.5"), 0)
        assert delivery is not None
        assert delivery.path == ("A", "B")
        assert delivery.hops == 2
        # TTL decremented once per routing hop.
        assert delivery.data[14 + 8] == 62

    def test_drop_counted(self):
        fabric = Fabric()
        fabric.add_node("A", base_node())
        assert fabric.send("A", ipv4_packet("10.1.0.1", "10.2.0.5"), 42) is None
        assert fabric.stats.dropped == 1

    def test_loop_cut(self):
        # Repoint A's next hop at its own router MAC and wire its
        # egress back into itself: every traversal re-routes the
        # packet, TTL (64) will not save us within max_hops=3 -- the
        # hop bound must.
        fabric = Fabric(max_hops=3)
        a = fabric.add_node("A", base_node())
        nexthop = a.switch.table("nexthop")
        old = next(e for e in nexthop.entries() if e.key == (2,))
        nexthop.remove_entry(old)
        nexthop.add_entry(
            TableEntry(
                key=(2,),
                action="set_bd_dmac",
                action_data={"bd": 2, "dmac": parse_mac(ROUTER_MAC)},
                tag=1,
            )
        )
        a.switch.table("dmac").add_entry(
            TableEntry(
                key=(2, parse_mac(ROUTER_MAC)),
                action="set_egress_port",
                action_data={"port": 3},
                tag=1,
            )
        )
        fabric.wire("A", 3, "A", 0)
        result = fabric.send("A", ipv4_packet("10.1.0.1", "10.2.0.5"), 0)
        assert result is None
        assert fabric.stats.loops_cut == 1


class TestRollout:
    def test_srv6_rollout_node_by_node(self):
        fabric = two_node_fabric()
        timings = fabric.rollout(
            srv6_load_script(), {"srv6.rp4": srv6_rp4_source()}
        )
        assert set(timings) == {"A", "B"}
        for name in ("A", "B"):
            from repro.programs import populate_srv6_tables

            populate_srv6_tables(fabric.node(name).switch.tables)
        # SRv6 chain across the fabric: A Ends (SID ours), routes the
        # next segment toward B via nexthop 2 (= the wire), B routes on.
        controller_a = fabric.node("A")
        controller_a.api("local_sid")  # exists on both
        packet = srv6_packet(
            src="2001:db8:9::1",
            active_sid="2001:db8:100::1",
            segments=["2001:db8:2::1", "2001:db8:100::1"],
            segments_left=1,
        )
        delivery = fabric.send("A", packet, 0)
        assert delivery is not None
        assert delivery.path == ("A", "B")
        # Outer DA advanced to the final segment by A's End behavior.
        da = delivery.data[14 + 24 : 14 + 40]
        assert da == parse_ipv6("2001:db8:2::1").to_bytes(16, "big")

    def test_partial_rollout(self):
        fabric = two_node_fabric()
        timings = fabric.rollout(
            srv6_load_script(), {"srv6.rp4": srv6_rp4_source()}, nodes=["A"]
        )
        assert set(timings) == {"A"}
        assert "local_sid" in fabric.node("A").switch.tables
        assert "local_sid" not in fabric.node("B").switch.tables

"""Tests for the multi-switch fabric."""

import pytest

from repro.net.addresses import parse_ipv6, parse_mac
from repro.programs import (
    base_rp4_source,
    populate_base_tables,
    srv6_load_script,
    srv6_rp4_source,
)
from repro.programs.base_l2l3 import ROUTER_MAC
from repro.runtime import Controller
from repro.runtime.fabric import (
    Delivery,
    Fabric,
    FabricError,
    HealthGateError,
    RolloutError,
)
from repro.tables.table import TableEntry
from repro.workloads import ipv4_packet, srv6_packet


def base_node():
    controller = Controller()
    controller.load_base(base_rp4_source())
    populate_base_tables(controller.switch.tables)
    return controller


def two_node_fabric():
    """A <-> B on A's port 3 / B's port 0.

    A's next hop 2 resolves to a DMAC that must be B's router MAC for
    routing to continue at B, so A's nexthop entry is repointed.
    """
    fabric = Fabric()
    a = fabric.add_node("A", base_node())
    fabric.add_node("B", base_node())
    fabric.wire("A", 3, "B", 0)

    # Repoint A's nexthop 2 at B's router MAC (port 3 -> the wire).
    nexthop = a.switch.table("nexthop")
    old = next(e for e in nexthop.entries() if e.key == (2,))
    nexthop.remove_entry(old)
    nexthop.add_entry(
        TableEntry(
            key=(2,),
            action="set_bd_dmac",
            action_data={"bd": 2, "dmac": parse_mac(ROUTER_MAC)},
            tag=1,
        )
    )
    a.switch.table("dmac").add_entry(
        TableEntry(
            key=(2, parse_mac(ROUTER_MAC)),
            action="set_egress_port",
            action_data={"port": 3},
            tag=1,
        )
    )
    return fabric


class TestTopology:
    def test_duplicate_node_rejected(self):
        fabric = Fabric()
        fabric.add_node("A", base_node())
        with pytest.raises(FabricError):
            fabric.add_node("A", base_node())

    def test_unknown_node(self):
        with pytest.raises(FabricError):
            Fabric().node("ghost")

    def test_double_wire_rejected(self):
        fabric = Fabric()
        fabric.add_node("A", base_node())
        fabric.add_node("B", base_node())
        fabric.wire("A", 3, "B", 0)
        with pytest.raises(FabricError):
            fabric.wire("A", 3, "B", 1)

    def test_wiring_is_bidirectional(self):
        fabric = Fabric()
        fabric.add_node("A", base_node())
        fabric.add_node("B", base_node())
        fabric.wire("A", 3, "B", 0)
        assert fabric.peer("A", 3) == ("B", 0)
        assert fabric.peer("B", 0) == ("A", 3)

    def test_max_hops_validation(self):
        with pytest.raises(ValueError):
            Fabric(max_hops=0)


class TestForwarding:
    def test_single_node_edge_delivery(self):
        fabric = Fabric()
        fabric.add_node("A", base_node())
        delivery = fabric.send("A", ipv4_packet("10.1.0.1", "10.2.0.5"), 0)
        assert isinstance(delivery, Delivery)
        assert delivery.node == "A" and delivery.port == 3
        assert delivery.hops == 1 and delivery.path == ("A",)

    def test_two_hop_path(self):
        fabric = two_node_fabric()
        delivery = fabric.send("A", ipv4_packet("10.1.0.1", "10.2.0.5"), 0)
        assert delivery is not None
        assert delivery.path == ("A", "B")
        assert delivery.hops == 2
        # TTL decremented once per routing hop.
        assert delivery.data[14 + 8] == 62

    def test_drop_counted(self):
        fabric = Fabric()
        fabric.add_node("A", base_node())
        assert fabric.send("A", ipv4_packet("10.1.0.1", "10.2.0.5"), 42) is None
        assert fabric.stats.dropped == 1

    def test_loop_cut(self):
        # Repoint A's next hop at its own router MAC and wire its
        # egress back into itself: every traversal re-routes the
        # packet, TTL (64) will not save us within max_hops=3 -- the
        # hop bound must.
        fabric = Fabric(max_hops=3)
        a = fabric.add_node("A", base_node())
        nexthop = a.switch.table("nexthop")
        old = next(e for e in nexthop.entries() if e.key == (2,))
        nexthop.remove_entry(old)
        nexthop.add_entry(
            TableEntry(
                key=(2,),
                action="set_bd_dmac",
                action_data={"bd": 2, "dmac": parse_mac(ROUTER_MAC)},
                tag=1,
            )
        )
        a.switch.table("dmac").add_entry(
            TableEntry(
                key=(2, parse_mac(ROUTER_MAC)),
                action="set_egress_port",
                action_data={"port": 3},
                tag=1,
            )
        )
        fabric.wire("A", 3, "A", 0)
        result = fabric.send("A", ipv4_packet("10.1.0.1", "10.2.0.5"), 0)
        assert result is None
        assert fabric.stats.loops_cut == 1


class TestRollout:
    def test_srv6_rollout_node_by_node(self):
        fabric = two_node_fabric()
        timings = fabric.rollout(
            srv6_load_script(), {"srv6.rp4": srv6_rp4_source()}
        )
        assert set(timings) == {"A", "B"}
        for name in ("A", "B"):
            from repro.programs import populate_srv6_tables

            populate_srv6_tables(fabric.node(name).switch.tables)
        # SRv6 chain across the fabric: A Ends (SID ours), routes the
        # next segment toward B via nexthop 2 (= the wire), B routes on.
        controller_a = fabric.node("A")
        controller_a.api("local_sid")  # exists on both
        packet = srv6_packet(
            src="2001:db8:9::1",
            active_sid="2001:db8:100::1",
            segments=["2001:db8:2::1", "2001:db8:100::1"],
            segments_left=1,
        )
        delivery = fabric.send("A", packet, 0)
        assert delivery is not None
        assert delivery.path == ("A", "B")
        # Outer DA advanced to the final segment by A's End behavior.
        da = delivery.data[14 + 24 : 14 + 40]
        assert da == parse_ipv6("2001:db8:2::1").to_bytes(16, "big")

    def test_partial_rollout(self):
        fabric = two_node_fabric()
        timings = fabric.rollout(
            srv6_load_script(), {"srv6.rp4": srv6_rp4_source()}, nodes=["A"]
        )
        assert set(timings) == {"A"}
        assert "local_sid" in fabric.node("A").switch.tables
        assert "local_sid" not in fabric.node("B").switch.tables

    def test_mid_rollout_failure_reports_blast_radius(self):
        fabric = two_node_fabric()
        fabric.node("B").channel.drop_kinds.add("update.prepare")
        with pytest.raises(RolloutError) as excinfo:
            fabric.rollout(srv6_load_script(), {"srv6.rp4": srv6_rp4_source()})
        err = excinfo.value
        assert err.updated == ["A"]
        assert err.failed == "B"
        assert err.pending == []
        assert err.rolled_back == []  # plain rollout never reverts
        # A keeps its committed update; B was never touched.
        assert "local_sid" in fabric.node("A").switch.tables
        assert "local_sid" not in fabric.node("B").switch.tables


GOOD_PROBE = [(ipv4_packet("10.1.0.1", "10.2.0.5"), 0)]
#: Port 42 is unwired and unknown to the port tables: guaranteed drop.
BAD_PROBE = [(ipv4_packet("10.1.0.1", "10.2.0.5"), 42)]


def four_node_fabric():
    fabric = Fabric()
    for name in ("A", "B", "C", "D"):
        fabric.add_node(name, base_node())
    return fabric


class TestStagedRollout:
    def test_canary_then_waves_happy_path(self):
        fabric = two_node_fabric()
        report = fabric.staged_rollout(
            srv6_load_script(),
            {"srv6.rp4": srv6_rp4_source()},
            probe_trace=GOOD_PROBE,
        )
        assert report.canary == "A"
        assert report.waves == [["B"]]
        assert set(report.timings) == {"A", "B"}
        assert report.probes == {"A": 0.0, "B": 0.0}
        for name in ("A", "B"):
            assert "local_sid" in fabric.node(name).switch.tables

    def test_wave_partitioning(self):
        fabric = four_node_fabric()
        report = fabric.staged_rollout(
            srv6_load_script(),
            {"srv6.rp4": srv6_rp4_source()},
            canary="B",
            wave_size=2,
        )
        assert report.canary == "B"
        assert report.waves == [["A", "C"], ["D"]]
        assert set(report.timings) == {"A", "B", "C", "D"}

    def test_failing_canary_leaves_fleet_untouched(self):
        fabric = two_node_fabric()
        epoch_b = fabric.node("B").switch.dp.epoch
        with pytest.raises(RolloutError) as excinfo:
            fabric.staged_rollout(
                srv6_load_script(),
                {"srv6.rp4": srv6_rp4_source()},
                probe_trace=BAD_PROBE,
                max_drop_rate=0.0,
            )
        err = excinfo.value
        assert err.failed == "A"
        assert isinstance(err.cause, HealthGateError)
        assert err.rolled_back == ["A"]
        assert err.pending == ["B"]
        # Every node is back on (or never left) the old design.
        assert "local_sid" not in fabric.node("A").switch.tables
        assert "local_sid" not in fabric.node("B").switch.tables
        assert fabric.node("B").switch.dp.epoch == epoch_b
        # The fleet still forwards end to end.
        assert fabric.send("A", *GOOD_PROBE[0]) is not None

    def test_mid_wave_failure_rolls_back_in_reverse(self):
        fabric = four_node_fabric()
        fabric.node("D").channel.drop_kinds.add("update.prepare")
        with pytest.raises(RolloutError) as excinfo:
            fabric.staged_rollout(
                srv6_load_script(),
                {"srv6.rp4": srv6_rp4_source()},
                wave_size=2,
            )
        err = excinfo.value
        assert err.updated == ["A", "B", "C"]
        assert err.failed == "D"
        assert err.rolled_back == ["C", "B", "A"]
        assert err.pending == []
        for name in ("A", "B", "C", "D"):
            controller = fabric.node(name)
            assert "local_sid" not in controller.switch.tables
            assert controller.switch.inject(*GOOD_PROBE[0]) is not None

    def test_unknown_canary_rejected(self):
        fabric = two_node_fabric()
        with pytest.raises(FabricError):
            fabric.staged_rollout(
                srv6_load_script(),
                {"srv6.rp4": srv6_rp4_source()},
                canary="ghost",
            )

    def test_bad_wave_size_rejected(self):
        fabric = two_node_fabric()
        with pytest.raises(ValueError):
            fabric.staged_rollout(srv6_load_script(), wave_size=0)


def drop_rate_rules():
    from repro.obs.health import ThresholdRule

    return [
        ThresholdRule(
            "device-drop-rate",
            metric="device.packets_dropped",
            signal="rate",
            window=5.0,
            op=">",
            value=0.0,
            for_seconds=1.0,
            severity="critical",
        )
    ]


class TestHealthGatedRollout:
    """staged_rollout with a health engine attached: the gate becomes
    continuous soak scoring instead of the one-shot probe check."""

    def attach(self, fabric):
        from repro.obs.clock import ManualClock

        engine = fabric.attach_health(
            rules=drop_rate_rules(), clock=ManualClock(tick=1.0)
        )
        return engine

    def test_healthy_fleet_passes_and_reports_scores(self):
        fabric = two_node_fabric()
        self.attach(fabric)
        report = fabric.staged_rollout(
            srv6_load_script(),
            {"srv6.rp4": srv6_rp4_source()},
            probe_trace=GOOD_PROBE,
        )
        assert report.health == {"A": 1.0, "B": 1.0}
        assert report.alerts == []
        assert report.flight_record is None
        for name in ("A", "B"):
            assert "local_sid" in fabric.node(name).switch.tables

    def test_firing_rule_aborts_and_rolls_back_fleet(self):
        fabric = four_node_fabric()
        self.attach(fabric)
        # Sabotage C's routing table: its soak probes all drop, the
        # drop-rate rule goes pending -> firing, the gate trips.
        lpm = fabric.node("C").switch.table("ipv4_lpm")
        for entry in list(lpm.entries()):
            lpm.remove_entry(entry)
        with pytest.raises(RolloutError) as excinfo:
            fabric.staged_rollout(
                srv6_load_script(),
                {"srv6.rp4": srv6_rp4_source()},
                probe_trace=GOOD_PROBE,
                wave_size=2,
                soak_ticks=4,
            )
        err = excinfo.value
        assert err.failed == "C"
        assert isinstance(err.cause, HealthGateError)
        assert "device-drop-rate" in str(err.cause)
        assert err.updated == ["A", "B", "C"]
        assert err.rolled_back == ["C", "B", "A"]
        assert err.pending == ["D"]
        for name in ("A", "B", "C", "D"):
            assert "local_sid" not in fabric.node(name).switch.tables
        # The report rides the error: C's lifecycle is in the alert
        # log and its last observed score breached the gate.
        report = err.report
        assert report is not None
        edges = [
            (a["from"], a["to"])
            for a in report.alerts
            if a["device"] == "C"
        ]
        assert ("inactive", "pending") in edges
        assert ("pending", "firing") in edges
        assert report.health["C"] < 1.0

    def test_abort_captures_flight_record(self):
        fabric = four_node_fabric()
        engine = self.attach(fabric)
        lpm = fabric.node("C").switch.table("ipv4_lpm")
        for entry in list(lpm.entries()):
            lpm.remove_entry(entry)
        with pytest.raises(RolloutError) as excinfo:
            fabric.staged_rollout(
                srv6_load_script(),
                {"srv6.rp4": srv6_rp4_source()},
                probe_trace=GOOD_PROBE,
                wave_size=2,
                soak_ticks=4,
            )
        record = excinfo.value.report.flight_record
        assert record is not None
        assert record["reason"] == "rollout_abort"
        # The ring holds the whole story: commits, metric motion, the
        # alert edges, and the three automatic rollbacks (dumped after
        # the unwind, so they are included).
        assert record["counts"]["rollback"] == 3
        assert record["counts"]["txn_commit"] >= 3  # >= 1 per updated node
        assert record["counts"]["alert"] >= 2
        assert record["counts"]["metric"] >= 1
        rollback_devices = [
            e["device"] for e in record["events"] if e["kind"] == "rollback"
        ]
        assert rollback_devices == ["C", "B", "A"]
        assert engine.recorder.last_dump() is record

    def test_detach_restores_legacy_probe_gate(self):
        fabric = two_node_fabric()
        engine = self.attach(fabric)
        assert fabric.detach_health() is engine
        assert fabric.health is None
        with pytest.raises(RolloutError) as excinfo:
            fabric.staged_rollout(
                srv6_load_script(),
                {"srv6.rp4": srv6_rp4_source()},
                probe_trace=BAD_PROBE,
                max_drop_rate=0.0,
            )
        err = excinfo.value
        assert isinstance(err.cause, HealthGateError)
        assert err.report.flight_record is None  # no engine, no dump


def fleet_fabric(n_nodes):
    fabric = Fabric()
    for index in range(n_nodes):
        fabric.add_node(f"n{index}", base_node())
    return fabric


def config_json(controller):
    import json

    return json.dumps(controller.design.config, sort_keys=True)


class TestShardedRollout:
    """staged_rollout on a sharded fabric: batched wave fan-out with
    the same deterministic reverse-order rollback contract."""

    def test_sharded_happy_path_updates_every_node(self):
        fabric = fleet_fabric(6)
        fabric.shard(2, start=False)
        try:
            report = fabric.staged_rollout(
                srv6_load_script(),
                {"srv6.rp4": srv6_rp4_source()},
                wave_size=3,
                probe_trace=GOOD_PROBE,
            )
            assert set(report.timings) == {f"n{i}" for i in range(6)}
            assert all(rate == 0.0 for rate in report.probes.values())
            for index in range(6):
                assert "local_sid" in fabric.node(f"n{index}").switch.tables
        finally:
            fabric.unshard()

    def test_dropped_commit_mid_wave_rolls_back_byte_identical(self):
        # The ISSUE's fault scenario: one node's update.commit frame
        # is lost mid-wave.  Batched commits mean nodes on *other*
        # shards in the same wave may have already flipped -- all of
        # them must unwind, reverse order, and every node's config
        # must land byte-identical to the pre-rollout state.
        baseline = config_json(base_node())
        fabric = fleet_fabric(8)
        fabric.shard(3, start=False)
        fabric.node("n5").channel.drop_kinds.add("update.commit")
        try:
            with pytest.raises(RolloutError) as excinfo:
                fabric.staged_rollout(
                    srv6_load_script(),
                    {"srv6.rp4": srv6_rp4_source()},
                    wave_size=4,
                )
            err = excinfo.value
            assert err.failed == "n5"
            # Canary n0, wave 1 = n1-n4 committed; in n5's wave the
            # other shards' nodes (n6, n7) committed before the
            # failure surfaced.
            assert err.updated == ["n0", "n1", "n2", "n3", "n4", "n6", "n7"]
            assert err.rolled_back == list(reversed(err.updated))
            assert err.pending == []
            for index in range(8):
                controller = fabric.node(f"n{index}")
                assert "local_sid" not in controller.switch.tables
                assert config_json(controller) == baseline
                assert controller.switch.inject(*GOOD_PROBE[0]) is not None
        finally:
            fabric.unshard()

    def test_staging_failure_aborts_whole_wave_shadow(self):
        # A staging failure must abort the wave while every member is
        # still shadow: no node in that wave commits, earlier waves
        # roll back.
        fabric = fleet_fabric(6)
        fabric.shard(2, start=False)
        fabric.node("n4").channel.drop_kinds.add("update.prepare")
        try:
            with pytest.raises(RolloutError) as excinfo:
                fabric.staged_rollout(
                    srv6_load_script(),
                    {"srv6.rp4": srv6_rp4_source()},
                    wave_size=3,
                )
            err = excinfo.value
            assert err.failed == "n4"
            assert err.updated == ["n0", "n1", "n2", "n3"]
            assert err.rolled_back == ["n3", "n2", "n1", "n0"]
            assert "n5" in err.pending
            for index in range(6):
                assert "local_sid" not in fabric.node(
                    f"n{index}"
                ).switch.tables
        finally:
            fabric.unshard()


class TestPerHopRegistryMetrics:
    def test_send_labels_every_hop(self):
        fabric = two_node_fabric()
        delivery = fabric.send("A", ipv4_packet("10.1.0.1", "10.2.0.5"), 0)
        assert delivery is not None and delivery.path == ("A", "B")
        metrics = fabric.metrics
        assert metrics.value("fabric.injected", node="A") == 1
        # A forwarded out port 3 (the wire), B out its edge port.
        assert metrics.value("fabric.hop_forwarded", node="A", port="3") == 1
        assert metrics.value(
            "fabric.hop_forwarded", node="B", port=str(delivery.port)
        ) == 1
        assert metrics.value(
            "fabric.delivered", node="B", port=str(delivery.port)
        ) == 1

    def test_drop_labels_the_dropping_node(self):
        fabric = Fabric()
        fabric.add_node("A", base_node())
        assert fabric.send("A", ipv4_packet("10.1.0.1", "10.2.0.5"), 42) is None
        assert fabric.metrics.value("fabric.hop_dropped", node="A") == 1

"""Unit tests for rp4fc (P4 -> rP4) and the API generator."""

import pytest

from repro.compiler.rp4fc import Rp4fcError, rp4fc
from repro.lang.expr import EUnary
from repro.p4 import build_hlir, parse_p4
from repro.programs import base_p4_source, base_rp4_source
from repro.programs.p4_variants import srv6_p4_source
from repro.rp4 import analyze, parse_rp4


@pytest.fixture(scope="module")
def result():
    return rp4fc(build_hlir(parse_p4(base_p4_source())))


class TestStructure:
    def test_headers_with_linkage(self, result):
        eth = result.program.headers["ethernet"]
        assert eth.selector == "ethertype"
        assert (0x0800, "ipv4") in eth.links

    def test_metadata_struct(self, result):
        meta = result.program.struct_alias("meta")
        assert meta is not None
        assert ("nexthop", 16) in meta.members

    def test_one_stage_per_apply(self, result):
        hlir = build_hlir(parse_p4(base_p4_source()))
        applies = hlir.applied_tables("ingress") + hlir.applied_tables("egress")
        assert set(result.program.all_stages()) == set(applies)

    def test_predicates_from_control_flow(self, result):
        stage = result.program.ingress_stages["ipv4_lpm"]
        arm = stage.matcher[0]
        assert arm.table == "ipv4_lpm"
        assert arm.cond is not None  # guarded by the if

    def test_else_branch_negated(self, result):
        # ipv6_lpm sits in the else-if branch; its predicate includes a
        # negation of the ipv4 condition.
        stage = result.program.ingress_stages["ipv6_lpm"]

        def has_negation(expr):
            if isinstance(expr, EUnary) and expr.op == "!":
                return True
            return any(
                has_negation(child)
                for child in getattr(expr, "__dict__", {}).values()
                if hasattr(child, "__class__") and hasattr(child, "__dataclass_fields__")
            )

        assert has_negation(stage.matcher[0].cond)

    def test_executor_tags(self, result):
        stage = result.program.ingress_stages["nexthop"]
        assert stage.executor[1] == "set_bd_dmac"
        assert stage.executor["default"] == "drop"

    def test_entries_set(self, result):
        assert result.program.ingress_entry == "port_map"
        assert result.program.egress_entry == "smac_rewrite"


class TestEquivalence:
    def test_output_analyzes_clean(self, result):
        analyze(result.program)

    def test_output_parses_back(self, result):
        again = parse_rp4(result.rp4_source)
        assert set(again.tables) == set(result.program.tables)

    def test_output_compiles_to_same_tsp_count(self, result):
        """rp4fc(P4 base) and the hand-written rP4 base design must
        map onto the same number of TSPs."""
        from repro.compiler.rp4bc import compile_base

        generated = compile_base(result.program)
        handwritten = compile_base(base_rp4_source())
        assert generated.plan.tsp_count == handwritten.plan.tsp_count

    def test_srv6_variant_transforms(self):
        out = rp4fc(build_hlir(parse_p4(srv6_p4_source())))
        assert "srh" in out.program.headers
        assert "local_sid" in out.program.tables
        analyze(out.program)


class TestApiGeneration:
    def test_api_source_compiles(self, result):
        compile(result.api_source, "<generated>", "exec")

    def test_api_classes_present(self, result):
        assert "class Ipv4LpmApi(TableApi):" in result.api_source
        assert "TABLE_APIS" in result.api_source

    def test_api_executes(self, result):
        namespace = {}
        exec(compile(result.api_source, "<generated>", "exec"), namespace)
        apis = namespace["TABLE_APIS"]
        assert set(apis) == set(result.program.tables)
        from repro.compiler.lowering import lower_table

        table = lower_table("port_map", [("meta.ingress_port", "exact", 16)], 64)
        api = apis["port_map"](table)
        api.add(0, action="set_intf", intf=1)
        assert len(api) == 1


class TestErrors:
    def test_bare_statement_rejected(self):
        src = """
        struct metadata { bit<1> m; }
        parser P(packet_in pkt) { state start { transition accept; } }
        control MyIngress(inout headers hdr) {
            apply { meta.m = 1; }
        }
        control MyEgress(inout headers hdr) { apply { } }
        """
        with pytest.raises(Rp4fcError):
            rp4fc(build_hlir(parse_p4(src)))

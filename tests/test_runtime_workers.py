"""Tests for device workers, batch commands, and metric shards."""

import pytest

from repro.programs import (
    base_rp4_source,
    populate_base_tables,
    srv6_load_script,
    srv6_rp4_source,
)
from repro.runtime import Controller
from repro.runtime.fabric import Fabric
from repro.runtime.workers import (
    MetricShardAccumulator,
    ShardSnapshotter,
    UpdatePlanCache,
    WorkerError,
    merge_shard_into,
)
from repro.obs.metrics import MetricsRegistry
from repro.workloads import ipv4_packet

SCRIPT = srv6_load_script()
SOURCES = {"srv6.rp4": srv6_rp4_source()}
PACKET = ipv4_packet("10.1.0.1", "10.2.0.5")


def base_node():
    controller = Controller()
    controller.load_base(base_rp4_source())
    populate_base_tables(controller.switch.tables)
    return controller


def sharded_fleet(n_nodes=6, n_workers=2, start=False):
    """Isolated base nodes, sharded; deterministic (threadless) mode
    by default so command execution interleaves predictably."""
    fabric = Fabric()
    for index in range(n_nodes):
        fabric.add_node(f"n{index}", base_node())
    fabric.shard(n_workers, start=start)
    return fabric


class TestFramedCommands:
    def test_inject_batch_walks_traffic(self):
        fabric = sharded_fleet(2, 1)
        worker = fabric.workers[0]
        reply = worker.request(
            "worker.inject_batch",
            {"items": [{"i": 0, "node": "n0", "port": 0,
                        "data": PACKET.hex()}]},
        )
        assert len(reply["deliveries"]) == 1
        assert reply["deliveries"][0]["node"] == "n0"
        assert reply["dropped"] == [] and reply["loops"] == []

    def test_stage_commit_rollback_round_trip(self):
        fabric = sharded_fleet(2, 1)
        worker = fabric.workers[0]
        before = fabric.node("n0").design.config
        staged = worker.request(
            "worker.stage",
            {"node": "n0", "script": SCRIPT, "sources": SOURCES},
        )
        committed = worker.request(
            "worker.commit", {"node": "n0", "token": staged["token"]}
        )
        assert committed["total_seconds"] >= 0
        restored = worker.request("worker.rollback", {"node": "n0"})
        assert "restored" in restored
        assert fabric.node("n0").design.config == before

    def test_unknown_node_is_worker_error(self):
        fabric = sharded_fleet(2, 1)
        with pytest.raises(WorkerError):
            fabric.workers[0].request(
                "worker.stage",
                {"node": "ghost", "script": SCRIPT, "sources": SOURCES},
            )

    def test_unknown_command_is_worker_error(self):
        fabric = sharded_fleet(2, 1)
        with pytest.raises(WorkerError):
            fabric.workers[0].request("worker.nonsense", {})

    def test_error_reply_keeps_worker_serving(self):
        fabric = sharded_fleet(2, 1)
        worker = fabric.workers[0]
        with pytest.raises(WorkerError):
            worker.request("worker.rollback", {"node": "ghost"})
        reply = worker.request("worker.probe", {
            "node": "n0", "items": [[PACKET.hex(), 0]],
        })
        assert reply["dropped"] == 0

    def test_scatter_gather_replies_fifo(self):
        fabric = sharded_fleet(2, 1)
        worker = fabric.workers[0]
        worker.post_request("worker.probe", {
            "node": "n0", "items": [[PACKET.hex(), 0]],
        })
        worker.post_request("worker.probe", {
            "node": "n1", "items": [[PACKET.hex(), 0], [PACKET.hex(), 0]],
        })
        first = worker.collect_reply("worker.probe")
        second = worker.collect_reply("worker.probe")
        assert first["total"] == 1
        assert second["total"] == 2


class TestBatchCommands:
    def test_stage_batch_stages_all(self):
        fabric = sharded_fleet(3, 1)
        worker = fabric.workers[0]
        reply = worker.request(
            "worker.stage_batch",
            {"nodes": ["n0", "n1", "n2"], "script": SCRIPT,
             "sources": SOURCES},
        )
        assert [entry["node"] for entry in reply["results"]] == [
            "n0", "n1", "n2",
        ]
        assert all("token" in entry for entry in reply["results"])

    def test_stage_batch_stops_at_first_failure(self):
        fabric = sharded_fleet(3, 1)
        worker = fabric.workers[0]
        reply = worker.request(
            "worker.stage_batch",
            {"nodes": ["n0", "ghost", "n2"], "script": SCRIPT,
             "sources": SOURCES},
        )
        results = reply["results"]
        # n0 staged, ghost errored, n2 never attempted.
        assert len(results) == 2
        assert "token" in results[0]
        assert results[1]["node"] == "ghost" and "error" in results[1]

    def test_commit_batch_commits_in_order(self):
        fabric = sharded_fleet(2, 1)
        worker = fabric.workers[0]
        staged = worker.request(
            "worker.stage_batch",
            {"nodes": ["n0", "n1"], "script": SCRIPT, "sources": SOURCES},
        )["results"]
        reply = worker.request(
            "worker.commit_batch",
            {"items": [{"node": e["node"], "token": e["token"]}
                       for e in staged]},
        )
        assert [entry["node"] for entry in reply["results"]] == ["n0", "n1"]
        assert all(e["total_seconds"] >= 0 for e in reply["results"])

    def test_commit_batch_failure_parks_later_tokens(self):
        fabric = sharded_fleet(2, 1)
        worker = fabric.workers[0]
        staged = worker.request(
            "worker.stage_batch",
            {"nodes": ["n0", "n1"], "script": SCRIPT, "sources": SOURCES},
        )["results"]
        items = [
            {"node": "n0", "token": "bogus"},
            {"node": "n1", "token": staged[1]["token"]},
        ]
        reply = worker.request("worker.commit_batch", {"items": items})
        results = reply["results"]
        assert len(results) == 1 and "error" in results[0]
        # The later token is still parked: the caller can abort it.
        aborted = worker.request(
            "worker.abort", {"node": "n1", "token": staged[1]["token"]}
        )
        assert aborted["aborted"]

    def test_probe_batch_per_node_results(self):
        fabric = sharded_fleet(3, 1)
        reply = fabric.workers[0].request(
            "worker.probe_batch",
            {"nodes": ["n0", "n1", "n2"], "items": [[PACKET.hex(), 0]]},
        )
        assert [entry["node"] for entry in reply["results"]] == [
            "n0", "n1", "n2",
        ]
        assert all(entry["dropped"] == 0 for entry in reply["results"])


class TestMetricShards:
    def test_snapshotter_ships_deltas(self):
        registry = MetricsRegistry()
        counter = registry.counter("x.count", node="n0")
        snapshotter = ShardSnapshotter()
        counter.inc(3)
        first = snapshotter.snapshot([({}, registry)])
        counter.inc(2)
        second = snapshotter.snapshot([({}, registry)])
        values = {
            tuple(sorted(labels.items())): value
            for name, labels, kind, value in first + second
            if name == "x.count"
        }
        assert values[(("node", "n0"),)] == 2  # last delta
        deltas = [v for n, _l, _k, v in first + second if n == "x.count"]
        assert sum(deltas) == 5  # lossless across snapshots

    def test_merge_shard_into_accumulates_counters(self):
        registry = MetricsRegistry()
        shard = {"samples": [["pkts", {"node": "n0"}, "counter", 4]]}
        assert merge_shard_into(registry, shard) == 1
        merge_shard_into(registry, shard)
        assert registry.value("pkts", node="n0") == 8

    def test_merge_shard_into_overwrites_gauges(self):
        registry = MetricsRegistry()
        merge_shard_into(
            registry, {"samples": [["depth", {}, "gauge", 4]]}
        )
        merge_shard_into(
            registry, {"samples": [["depth", {}, "gauge", 2]]}
        )
        assert registry.value("depth") == 2

    def test_accumulator_value_lookup(self):
        accumulator = MetricShardAccumulator()
        accumulator.apply(
            {"samples": [["pkts", {"node": "n1"}, "counter", 7]]}
        )
        assert accumulator.value("pkts", node="n1") == 7
        assert accumulator.shards_applied == 1

    def test_histogram_buckets_merge_exactly(self):
        # Histograms cross the shard boundary as their _bucket/_count/
        # _sum counter series; the merged registry must reconstruct
        # the exact snapshot.
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", (0.1, 1.0), node="n0")
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        snapshotter = ShardSnapshotter()
        shard = {"samples": snapshotter.snapshot([({}, registry)])}
        central = MetricsRegistry()
        merge_shard_into(central, shard)
        snapshot = central.histogram_snapshot("lat", node="n0")
        assert snapshot is not None
        assert snapshot.count == 3
        assert snapshot.sum == pytest.approx(5.55)
        assert snapshot.counts == (1, 1, 1)  # one per bucket incl. +Inf

    def test_worker_metrics_shard_is_lossless(self):
        fabric = sharded_fleet(4, 2)
        items = [(f"n{i % 4}", PACKET, 0) for i in range(40)]
        results = fabric.send_batch(items)
        assert all(r is not None for r in results)
        fabric.sync_metrics()
        total = sum(
            s.value
            for s in fabric.metrics.collect()
            if s.name == "fabric.delivered"
        )
        assert total == 40 == fabric.stats.delivered


class TestShardedEquivalence:
    def test_sharded_send_matches_serial(self):
        serial = sharded_fleet(4, 2, start=False)
        serial.unshard()
        sharded = sharded_fleet(4, 2, start=False)
        items = [(f"n{i % 4}", PACKET, 0) for i in range(12)]
        serial_out = serial.send_batch(items)
        sharded_out = sharded.send_batch(items)
        assert [d and d.data for d in serial_out] == [
            d and d.data for d in sharded_out
        ]
        assert [d and (d.node, d.port, d.hops, d.path) for d in serial_out] \
            == [d and (d.node, d.port, d.hops, d.path) for d in sharded_out]


class TestUpdatePlanCache:
    def test_fleet_rollout_compiles_once(self):
        fabric = sharded_fleet(6, 2)
        fabric.staged_rollout(SCRIPT, SOURCES, wave_size=3)
        cache = fabric.plan_cache
        assert cache.misses == 1  # the canary
        assert cache.hits == 5  # every peer reused the compile

    def test_cache_key_covers_design_content(self):
        fabric = sharded_fleet(2, 1)
        node = fabric.node("n0")
        fingerprint_a = UpdatePlanCache.fingerprint(
            node.design, SCRIPT, SOURCES
        )
        fingerprint_b = UpdatePlanCache.fingerprint(
            node.design, SCRIPT + "\n", SOURCES
        )
        assert fingerprint_a != fingerprint_b

    def test_unshard_uninstalls_cache(self):
        fabric = sharded_fleet(2, 1)
        assert all(
            fabric.node(f"n{i}").plan_cache is not None for i in range(2)
        )
        fabric.unshard()
        assert all(
            fabric.node(f"n{i}").plan_cache is None for i in range(2)
        )

"""Unit tests for address codecs."""

import pytest

from repro.net.addresses import (
    format_ipv4,
    format_ipv6,
    format_mac,
    parse_ipv4,
    parse_ipv6,
    parse_mac,
    parse_prefix,
)


class TestMac:
    def test_roundtrip(self):
        text = "00:11:22:33:44:55"
        assert format_mac(parse_mac(text)) == text

    def test_parse_value(self):
        assert parse_mac("00:00:00:00:00:01") == 1
        assert parse_mac("ff:ff:ff:ff:ff:ff") == (1 << 48) - 1

    def test_malformed(self):
        with pytest.raises(ValueError):
            parse_mac("00:11:22:33:44")
        with pytest.raises(ValueError):
            parse_mac("001:1:22:33:44:55")

    def test_format_range_check(self):
        with pytest.raises(ValueError):
            format_mac(1 << 48)


class TestIpv4:
    def test_roundtrip(self):
        assert format_ipv4(parse_ipv4("192.168.0.1")) == "192.168.0.1"

    def test_value(self):
        assert parse_ipv4("10.0.0.1") == 0x0A000001

    def test_malformed(self):
        with pytest.raises(ValueError):
            parse_ipv4("256.0.0.1")


class TestIpv6:
    def test_roundtrip(self):
        assert format_ipv6(parse_ipv6("2001:db8::1")) == "2001:db8::1"

    def test_value(self):
        assert parse_ipv6("::1") == 1


class TestPrefix:
    def test_v4_prefix(self):
        assert parse_prefix("10.0.0.0/8") == (0x0A000000, 8)

    def test_v4_host_default(self):
        assert parse_prefix("10.0.0.1") == (0x0A000001, 32)

    def test_v6_prefix(self):
        value, plen = parse_prefix("2001:db8::/32", v6=True)
        assert plen == 32
        assert value >> 96 == 0x20010DB8

    def test_v6_host_default(self):
        assert parse_prefix("::1", v6=True) == (1, 128)

    def test_length_out_of_range(self):
        with pytest.raises(ValueError):
            parse_prefix("10.0.0.0/33")

"""Tests for the streaming health engine (repro.obs.health)."""

import json

import pytest

from repro.obs.clock import ManualClock
from repro.obs.health import (
    AbsenceRule,
    AlertInstance,
    BurnRateRule,
    FlightRecorder,
    HealthEngine,
    HistogramSeries,
    ThresholdRule,
    WindowedSeries,
    default_rules,
    dump_rules,
    load_rules,
    rule_from_dict,
)
from repro.obs.metrics import Histogram, MetricsRegistry


class TestWindowedSeries:
    def test_latest_and_len(self):
        s = WindowedSeries()
        assert s.latest() is None and len(s) == 0
        s.push(0.0, 5)
        s.push(1.0, 7)
        assert s.latest() == 7 and len(s) == 2

    def test_prunes_beyond_horizon(self):
        s = WindowedSeries(horizon=10.0)
        s.push(0.0, 1)
        s.push(5.0, 2)
        s.push(20.0, 3)  # floor = 10: both earlier points age out
        assert len(s) == 1
        assert s.latest() == 3

    def test_delta_and_rate(self):
        s = WindowedSeries()
        s.push(0.0, 100)
        s.push(2.0, 110)
        s.push(4.0, 130)
        assert s.delta(4.0, 10.0) == 30
        assert s.rate(4.0, 10.0) == pytest.approx(30 / 4)
        # Window narrows to the last two points.
        assert s.delta(4.0, 2.0) == 20
        assert s.rate(4.0, 2.0) == pytest.approx(10.0)

    def test_rate_clamps_counter_reset(self):
        s = WindowedSeries()
        s.push(0.0, 100)
        s.push(1.0, 3)  # process restart: counter reset
        assert s.rate(1.0, 10.0) == 0.0

    def test_single_point_has_no_rate(self):
        s = WindowedSeries()
        s.push(0.0, 5)
        assert s.delta(0.0, 10.0) is None
        assert s.rate(0.0, 10.0) is None

    def test_spans(self):
        s = WindowedSeries()
        s.push(0.0, 1)
        s.push(5.0, 2)
        assert s.spans(5.0, 5.0)
        assert not s.spans(5.0, 6.0)

    def test_ewma_weights_recent_samples(self):
        s = WindowedSeries()
        s.push(0.0, 0)
        s.push(10.0, 100)
        ewma = s.ewma(10.0, half_life=10.0)
        # Weights: 0.5 for the old point, 1.0 for the new one.
        assert ewma == pytest.approx(100 / 1.5)


class TestHistogramSeries:
    def test_windowed_quantile_uses_snapshot_delta(self):
        h = Histogram("lat", bounds=(10, 100, 1000))
        series = HistogramSeries()
        h.observe(5)  # old observation, outside the window
        series.push(0.0, h.snapshot())
        for _ in range(10):
            h.observe(500)
        series.push(10.0, h.snapshot())
        # Window [5, 10]: only the ten 500ish observations count.
        q = series.quantile(10.0, 5.0, 0.5)
        assert 100 < q <= 1000

    def test_empty_and_single_point(self):
        series = HistogramSeries()
        assert series.quantile(0.0, 5.0, 0.5) is None
        h = Histogram("lat", bounds=(10,))
        h.observe(5)
        series.push(0.0, h.snapshot())
        assert series.quantile(0.0, 5.0, 0.5) == pytest.approx(5.0)


class TestRuleSerialization:
    def test_round_trip_all_kinds(self):
        rules = default_rules()
        payload = json.loads(json.dumps(dump_rules(rules)))
        restored = load_rules(payload)
        assert dump_rules(restored) == dump_rules(rules)
        assert [r.kind for r in restored] == ["threshold", "burn_rate", "absence"]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            rule_from_dict({"kind": "psychic", "name": "x"})

    def test_threshold_validates_op_and_signal(self):
        with pytest.raises(ValueError):
            ThresholdRule("r", metric="m", value=1, op="~")
        with pytest.raises(ValueError):
            ThresholdRule("r", metric="m", value=1, signal="vibes")
        ThresholdRule("r", metric="m", value=1, signal="p99")  # quantile: fine
        ThresholdRule("r", metric="m", value=1, signal="p99.9")

    def test_bad_severity_rejected(self):
        with pytest.raises(ValueError):
            ThresholdRule("r", metric="m", value=1, severity="mauve")

    def test_burn_rate_needs_positive_objective(self):
        with pytest.raises(ValueError):
            BurnRateRule("r", errors="e", total="t", objective=0)


class TestAlertLifecycle:
    def test_immediate_firing_when_for_is_zero(self):
        rule = ThresholdRule("r", metric="m", value=0, for_seconds=0.0)
        alert = AlertInstance(rule, "dev")
        edges = alert.step(0.0, condition=True)
        assert [(e.from_state, e.to_state) for e in edges] == [
            ("inactive", "pending"),
            ("pending", "firing"),
        ]
        assert alert.state == "firing"

    def test_for_duration_hysteresis(self):
        rule = ThresholdRule("r", metric="m", value=0, for_seconds=2.0)
        alert = AlertInstance(rule, "dev")
        assert [e.to_state for e in alert.step(0.0, True)] == ["pending"]
        assert alert.step(1.0, True) == []  # held 1s < 2s: still pending
        assert [e.to_state for e in alert.step(2.0, True)] == ["firing"]

    def test_pending_clears_without_firing(self):
        rule = ThresholdRule("r", metric="m", value=0, for_seconds=5.0)
        alert = AlertInstance(rule, "dev")
        alert.step(0.0, True)
        edges = alert.step(1.0, False)
        assert [e.to_state for e in edges] == ["inactive"]
        # A later breach starts the for-clock over.
        alert.step(2.0, True)
        assert alert.step(4.0, True) == []
        assert alert.state == "pending"

    def test_resolve_needs_sustained_clear(self):
        rule = ThresholdRule(
            "r", metric="m", value=0, for_seconds=0.0, resolve_seconds=2.0
        )
        alert = AlertInstance(rule, "dev")
        alert.step(0.0, True)
        assert alert.state == "firing"
        assert alert.step(1.0, False) == []  # clear for 0s < 2s
        # A re-breach resets the clear-clock.
        alert.step(2.0, True)
        assert alert.state == "firing"
        assert alert.step(3.0, False) == []
        edges = alert.step(5.0, False)
        assert [e.to_state for e in edges] == ["resolved"]
        assert alert.state == "inactive"

    def test_transition_dict_shape(self):
        rule = ThresholdRule("r", metric="m", value=0, severity="warning")
        alert = AlertInstance(rule, "dev")
        (pending, firing) = alert.step(7.0, True)
        d = firing.to_dict()
        assert d == {
            "ts": 7.0,
            "rule": "r",
            "device": "dev",
            "from": "pending",
            "to": "firing",
            "severity": "warning",
        }


class TestFlightRecorder:
    def test_ring_is_bounded(self):
        rec = FlightRecorder(capacity=3, clock=ManualClock())
        for i in range(5):
            rec.record("metric", ts=float(i), n=i)
        assert len(rec.events) == 3
        assert [e["n"] for e in rec.events] == [2, 3, 4]

    def test_auto_dump_on_rollback(self):
        rec = FlightRecorder(clock=ManualClock())
        rec.record("metric", ts=0.0)
        assert rec.last_dump() is None
        rec.record("rollback", ts=1.0, restored_tables=["nexthop"])
        dump = rec.last_dump()
        assert dump is not None
        assert dump["reason"] == "rollback"
        assert dump["counts"] == {"metric": 1, "rollback": 1}

    def test_bound_recorder_stamps_device(self):
        rec = FlightRecorder(clock=ManualClock())
        handle = rec.bind("n3")
        event = handle.record("txn_abort", ts=0.0)
        assert event["device"] == "n3"
        # An explicit device label wins over the binding.
        event = handle.record("txn_abort", ts=1.0, device="other")
        assert event["device"] == "other"

    def test_dump_json_round_trips(self):
        rec = FlightRecorder(clock=ManualClock())
        rec.record("metric", ts=0.0, value=3)
        parsed = json.loads(rec.dump_json(reason="test"))
        assert parsed["reason"] == "test"
        assert parsed["events"][0]["value"] == 3

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


def drop_rate_rule(**overrides):
    spec = dict(
        metric="device.packets_dropped",
        signal="rate",
        window=5.0,
        op=">",
        value=0.0,
        for_seconds=1.0,
        severity="critical",
    )
    spec.update(overrides)
    return ThresholdRule("drops", **spec)


class TestHealthEngine:
    @pytest.fixture
    def clock(self):
        return ManualClock(start=0.0, tick=0.0)

    def make_engine(self, clock, rules):
        engine = HealthEngine(clock=clock)
        engine.install(rules)
        return engine

    def test_threshold_rate_rule_fires_and_resolves(self, clock):
        reg = MetricsRegistry()
        drops = reg.counter("device.packets_dropped")
        engine = self.make_engine(clock, [drop_rate_rule(resolve_seconds=1.0)])
        engine.add_source("dev", reg)

        engine.tick()  # baseline sample at t=0
        clock.advance(1.0)
        drops.inc(4)
        transitions = engine.tick()  # rate > 0 observed: pending
        assert [t.to_state for t in transitions] == ["pending"]
        assert engine.device_health("dev") == 1.0  # pending doesn't score

        clock.advance(1.0)
        drops.inc(4)
        transitions = engine.tick()  # held >= for_seconds: firing
        assert [t.to_state for t in transitions] == ["firing"]
        assert engine.device_health("dev") == 0.0  # critical zeroes the score

        # The bleed stops; the 5s window must age the deltas out, then
        # the resolve clock must run down.
        later = []
        for _ in range(8):
            clock.advance(1.0)
            later.extend(engine.tick())
        assert [t.to_state for t in later] == ["resolved"]
        assert engine.device_health("dev") == 1.0

    def test_burn_rate_math_and_multiwindow_gate(self, clock):
        reg = MetricsRegistry()
        errs = reg.counter("device.packets_dropped")
        total = reg.counter("device.packets_in")
        rule = BurnRateRule(
            "burn",
            errors="device.packets_dropped",
            total="device.packets_in",
            objective=0.01,
            short_window=5.0,
            long_window=60.0,
            burn_factor=1.0,
        )
        engine = self.make_engine(clock, [rule])
        engine.add_source("dev", reg)
        engine.tick()

        # 2% errors vs a 1% objective: burn should be 2.0 in any window.
        clock.advance(1.0)
        total.inc(100)
        errs.inc(2)
        engine.tick()
        ctx_source = engine._sources["dev"]
        from repro.obs.health import _EvalContext

        ctx = _EvalContext(1.0, 1.0, ctx_source.scalars, ctx_source.hists)
        assert rule.burn(ctx, 5.0) == pytest.approx(2.0)
        assert rule.burn(ctx, 60.0) == pytest.approx(2.0)
        assert rule.condition(ctx)

        # Error-free traffic at the same volume burns at zero.
        clock.advance(1.0)
        total.inc(100)
        engine.tick()
        ctx = _EvalContext(2.0, 2.0, ctx_source.scalars, ctx_source.hists)
        assert rule.burn(ctx, 1.5) == pytest.approx(0.0)

    def test_absence_rule_fires_on_flat_and_missing(self, clock):
        reg = MetricsRegistry()
        beat = reg.counter("device.packets_in")
        rule = AbsenceRule("heartbeat", metric="device.packets_in", window=5.0)
        engine = self.make_engine(clock, [rule])
        engine.add_source("dev", reg)
        missing = MetricsRegistry()  # never grows the metric at all
        engine.add_source("ghost", missing)

        beat.inc(1)
        for _ in range(7):
            engine.tick()
            clock.advance(1.0)
        # dev's counter went flat for > window; ghost never reported.
        states = {a.device: a.state for a in engine.alerts()}
        assert states["dev"] == "firing"
        assert states["ghost"] == "firing"
        # warning severity: score drops but does not zero.
        assert engine.device_health("dev") == pytest.approx(0.6)

        beat.inc(1)  # traffic resumes
        engine.tick()
        assert engine.device_health("dev") == 1.0

    def test_quantile_rule_reads_histograms(self, clock):
        reg = MetricsRegistry()
        hist = reg.histogram("int.latency", (100, 1000, 10000))
        rule = ThresholdRule(
            "p99-lat",
            metric="int.latency",
            signal="p99",
            window=10.0,
            op=">",
            value=500.0,
            for_seconds=0.0,
        )
        engine = self.make_engine(clock, [rule])
        engine.add_source("dev", reg)
        hist.observe(50)
        engine.tick()
        assert engine.firing("dev") == []
        clock.advance(1.0)
        for _ in range(20):
            hist.observe(5000)
        transitions = engine.tick()
        assert [t.to_state for t in transitions] == ["pending", "firing"]

    def test_device_scoped_rule_skips_other_sources(self, clock):
        rule = drop_rate_rule(for_seconds=0.0, device="a")
        engine = self.make_engine(clock, [rule])
        reg_a, reg_b = MetricsRegistry(), MetricsRegistry()
        drops_a = reg_a.counter("device.packets_dropped")
        drops_b = reg_b.counter("device.packets_dropped")
        engine.add_source("a", reg_a)
        engine.add_source("b", reg_b)
        engine.tick()
        clock.advance(1.0)
        drops_a.inc(5)
        drops_b.inc(5)
        engine.tick()
        assert {a.device for a in engine.firing()} == {"a"}

    def test_alerts_exported_prometheus_style(self, clock):
        reg = MetricsRegistry()
        drops = reg.counter("device.packets_dropped")
        engine = self.make_engine(clock, [drop_rate_rule(for_seconds=0.0)])
        engine.add_source("dev", reg)
        engine.tick()
        clock.advance(1.0)
        drops.inc(3)
        engine.tick()
        text = engine.to_prometheus()
        assert (
            'ALERTS{alertname="drops",alertstate="firing",'
            'device="dev",severity="critical"} 1' in text
        )
        assert 'health_score{device="dev"} 0' in text
        assert "health_ticks 2" in text

    def test_metric_changes_land_in_flight_ring(self, clock):
        reg = MetricsRegistry()
        drops = reg.counter("device.packets_dropped")
        engine = self.make_engine(clock, [drop_rate_rule()])
        engine.add_source("dev", reg)
        engine.tick()
        clock.advance(1.0)
        drops.inc(2)
        engine.tick()
        clock.advance(1.0)
        engine.tick()  # unchanged: no new metric event
        metric_events = [
            e for e in engine.recorder.events if e["kind"] == "metric"
        ]
        assert [e["value"] for e in metric_events] == [0, 2]
        assert metric_events[1]["delta"] == 2

    def test_health_summary_shape(self, clock):
        reg = MetricsRegistry()
        drops = reg.counter("device.packets_dropped")
        engine = self.make_engine(clock, [drop_rate_rule(for_seconds=0.0)])
        engine.add_source("dev", reg)
        engine.tick()
        clock.advance(1.0)
        drops.inc(1)
        engine.tick()
        summary = engine.health_summary()
        assert summary["rules"] == 1
        assert summary["devices"]["dev"]["score"] == 0.0
        assert summary["devices"]["dev"]["firing"][0]["rule"] == "drops"

    def test_remove_source_unhooks_recorder(self, clock):
        class FakeSwitch:
            flight_recorder = None

        engine = self.make_engine(clock, [])
        switch = FakeSwitch()
        engine.add_source("dev", MetricsRegistry(), switch=switch)
        assert switch.flight_recorder is not None
        engine.remove_source("dev")
        assert switch.flight_recorder is None

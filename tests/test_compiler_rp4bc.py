"""Unit tests for rp4bc: base compile, incremental updates, allocation."""

import pytest

from repro.compiler.merge import MergeMode
from repro.compiler.rp4bc import (
    CompileError,
    TargetSpec,
    compile_base,
    compile_update,
)
from repro.compiler.layout import LayoutError
from repro.memory.blocks import MemoryKind
from repro.programs import (
    BASE_STAGE_LETTERS,
    base_rp4_source,
    ecmp_load_script,
    ecmp_rp4_source,
    flowprobe_load_script,
    flowprobe_rp4_source,
    srv6_load_script,
    srv6_rp4_source,
)


@pytest.fixture(scope="module")
def base():
    return compile_base(base_rp4_source())


class TestCompileBase:
    def test_seven_tsps(self, base):
        assert base.plan.tsp_count == 7

    def test_stage_letters(self, base):
        letters = base.stage_letters(BASE_STAGE_LETTERS)
        assert letters["A"] == 0
        assert letters["D"] == letters["E"]  # v4/v6 lpm share a TSP
        assert letters["I"] == letters["J"]  # egress pair shares a TSP

    def test_selector(self, base):
        selector = base.config["selector"]
        assert selector["tm_input"] == 5
        assert selector["tm_output"] == 7
        assert selector["bypassed"] == [6]

    def test_tables_allocated(self, base):
        mappings = base.pool.mappings()
        assert set(mappings) == set(base.table_layouts)
        # ipv4_host: 16+32 key + 8 tag + 16 data = 72 bits, 8192 deep
        host = base.table_layouts["ipv4_host"]
        assert host.entry_width == 72
        assert mappings["ipv4_host"].total_blocks == 8  # 1 wide x 8 deep

    def test_table_kinds(self, base):
        assert base.table_layouts["ipv4_lpm"].kind is MemoryKind.SRAM

    def test_config_complete(self, base):
        config = base.config
        assert set(config["tables"]) == set(base.table_layouts)
        assert "ethernet" in config["headers"]
        assert "set_bd_dmac" in config["actions"]
        assert len(config["templates"]) == 7

    def test_too_few_tsps(self):
        with pytest.raises(LayoutError):
            compile_base(base_rp4_source(), TargetSpec(n_tsps=5))

    def test_merge_mode_none_needs_ten(self):
        target = TargetSpec(n_tsps=10, merge_mode=MergeMode.NONE)
        design = compile_base(base_rp4_source(), target)
        assert design.plan.tsp_count == 10

    def test_greedy_layout_target(self):
        design = compile_base(
            base_rp4_source(), TargetSpec(layout_algorithm="greedy")
        )
        assert design.plan.tsp_count == 7

    def test_bad_layout_algorithm(self):
        with pytest.raises(CompileError):
            compile_base(
                base_rp4_source(), TargetSpec(layout_algorithm="quantum")
            )


class TestEcmpUpdate:
    @pytest.fixture(scope="class")
    def plan(self):
        base = compile_base(base_rp4_source())
        return compile_update(
            base, ecmp_load_script(), {"ecmp.rp4": ecmp_rp4_source()}
        )

    def test_one_tsp_rewritten(self, plan):
        assert plan.rewritten_tsps == [5]
        assert len(plan.new_templates) == 1
        assert plan.new_templates[0]["tsp"] == 5

    def test_replaces_nexthop(self, plan):
        assert plan.removed_stages == ["nexthop"]
        assert plan.freed_tables == ["nexthop"]
        assert "nexthop" not in plan.design.program.tables

    def test_new_tables_allocated(self, plan):
        assert plan.new_tables == ["ecmp_ipv4", "ecmp_ipv6"]
        assert "ecmp_ipv4" in plan.design.pool.mappings()
        assert "nexthop" not in plan.design.pool.mappings()

    def test_blocks_recycled(self, plan):
        base = compile_base(base_rp4_source())
        # nexthop blocks were freed before ecmp blocks were claimed
        assert plan.design.pool.free_count(MemoryKind.SRAM) <= base.pool.free_count(
            MemoryKind.SRAM
        )

    def test_old_design_untouched(self):
        base = compile_base(base_rp4_source())
        snapshot_tables = set(base.program.tables)
        compile_update(base, ecmp_load_script(), {"ecmp.rp4": ecmp_rp4_source()})
        assert set(base.program.tables) == snapshot_tables
        assert "ecmp" not in base.graph.nodes
        assert "nexthop" in base.pool.mappings()

    def test_unchanged_templates_reused(self, plan):
        base = compile_base(base_rp4_source())
        old_by_slot = {t["tsp"]: t for t in base.templates}
        for template in plan.design.templates:
            if template["tsp"] != 5:
                assert template == old_by_slot[template["tsp"]]


class TestSrv6Update:
    @pytest.fixture(scope="class")
    def plan(self):
        base = compile_base(base_rp4_source())
        return compile_update(
            base, srv6_load_script(), {"srv6.rp4": srv6_rp4_source()}
        )

    def test_header_links(self, plan):
        pairs = {(l.pre, l.tag, l.next) for l in plan.link_headers}
        assert ("ipv6", 43, "srh") in pairs
        assert ("srh", 41, "inner_ipv6") in pairs
        assert ("srh", 4, "inner_ipv4") in pairs

    def test_merges_without_extra_tsp(self, plan):
        # srv6 shares a TSP with an independent base stage, so the
        # update still fits in 7 TSPs and rewrites exactly one template.
        group = plan.design.plan.group_of("srv6")
        assert len(group) == 2 and "srv6" in group
        assert plan.design.plan.tsp_count == 7
        assert len(plan.rewritten_tsps) == 1
        # Ordering constraint: srv6 (writes ipv6.dst_addr) must be
        # placed before the FIB stages that read it.
        order = [
            name
            for _, g in plan.design.plan.all_groups()
            for name in g
        ]
        assert order.index("srv6") < order.index("ipv6_lpm")

    def test_srh_header_in_config(self, plan):
        assert "srh" in plan.design.config["headers"]
        assert ("seg0", 128) in [
            tuple(f) for f in plan.design.config["headers"]["srh"]["fields"]
        ]

    def test_exclusivity_preserved(self, plan):
        deps = plan.design.deps
        assert deps.headers_exclusive("ipv4", "ipv6")

    def test_unload_restores(self, plan):
        after = compile_update(plan.design, "unload --func_name srv6")
        assert after.removed_stages == ["srv6"]
        assert sorted(after.freed_tables) == ["end_transit", "local_sid"]
        assert after.design.plan.tsp_count == 7
        assert "srv6" not in after.design.program.all_stages()


class TestErrors:
    def test_missing_snippet_source(self):
        base = compile_base(base_rp4_source())
        with pytest.raises(CompileError, match="no source"):
            compile_update(base, "load ghost.rp4 --func_name g", {})

    def test_update_failure_leaves_design_intact(self):
        base = compile_base(base_rp4_source())
        before = dict(base.layout.slots)
        with pytest.raises(Exception):
            compile_update(base, "del_link port_map nexthop")
        assert base.layout.slots == before


class TestChainedUpdates:
    def test_probe_then_ecmp(self):
        base = compile_base(base_rp4_source())
        step1 = compile_update(
            base, flowprobe_load_script(), {"flowprobe.rp4": flowprobe_rp4_source()}
        )
        step2 = compile_update(
            step1.design, ecmp_load_script(), {"ecmp.rp4": ecmp_rp4_source()}
        )
        stages = step2.design.program.all_stages()
        assert "flow_probe" in stages and "ecmp" in stages
        assert "nexthop" not in stages
        assert step2.design.plan.tsp_count == 7

"""The continuous bench harness: scenarios, schema, comparison, CLI."""

import copy
import json

import pytest

from repro.bench.harness import main as harness_main
from repro.bench.harness import measure_cell, run_matrix
from repro.bench.scenarios import (
    CASES,
    SWITCHES,
    case_trace,
    make_ipsa,
    make_pisa,
    make_switch,
)
from repro.bench.schema import (
    SCHEMA_VERSION,
    compare_documents,
    format_comparison,
    validate_bench,
)
from repro.obs.clock import ManualClock
from repro.runtime.cli import main as ipbm_ctl_main


class TestScenarios:
    def test_unknown_arch_and_case_rejected(self):
        with pytest.raises(ValueError):
            make_switch("tofino")
        with pytest.raises(ValueError):
            case_trace("C9", 10)

    def test_ipsa_case_has_snippet_tables(self):
        switch = make_ipsa("C1")
        assert "ecmp_ipv4" in switch.tables

    def test_pisa_case_loads_full_variant(self):
        switch = make_pisa("C2")
        assert "local_sid" in switch.tables  # the SRv6 variant's table

    def test_every_cell_forwards_traffic(self):
        # The matrix is only a benchmark if its packets take the real
        # fast path; a cell that drops everything measures nothing.
        for case in CASES:
            trace = case_trace(case, 12)
            for arch in SWITCHES:
                switch = make_switch(arch, case)
                forwarded = sum(
                    1 for data, port in trace
                    if switch.inject(data, port) is not None
                )
                assert forwarded > 0, f"{arch}/{case} forwarded nothing"


@pytest.fixture(scope="module")
def smoke_doc():
    return run_matrix(mode="smoke", sizes=[20])


class TestHarness:
    def test_measure_cell_deterministic_with_manual_clock(self):
        clock = ManualClock(tick=1.0)
        result = measure_cell("pisa", "base", 10, clock=clock)
        # Each timed window is exactly one 1s tick wide.
        assert result["seconds"] == 1.0
        assert result["pps"] == float(result["packets"])
        assert result["profile"]["overhead_pct"] == 0.0

    def test_smoke_doc_is_schema_valid(self, smoke_doc):
        assert validate_bench(smoke_doc) == []
        assert smoke_doc["schema_version"] == SCHEMA_VERSION
        assert smoke_doc["mode"] == "smoke"

    def test_smoke_doc_covers_full_matrix(self, smoke_doc):
        cells = {(r["switch"], r["case"]) for r in smoke_doc["results"]}
        assert cells == {(s, c) for s in SWITCHES for c in CASES}

    def test_results_carry_profile_shares(self, smoke_doc):
        for result in smoke_doc["results"]:
            shares = result["profile"]["phase_shares"]
            assert sum(shares.values()) == pytest.approx(1.0)
            assert result["profile"]["engine_lookups"]

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            run_matrix(mode="quick")


class TestValidation:
    def test_rejects_non_dict(self):
        assert validate_bench([]) != []

    def test_missing_key_reported(self, smoke_doc):
        doc = copy.deepcopy(smoke_doc)
        del doc["results"][0]["pps"]
        assert any("pps" in p for p in validate_bench(doc))

    def test_packet_conservation_checked(self, smoke_doc):
        doc = copy.deepcopy(smoke_doc)
        doc["results"][0]["dropped"] += 1
        assert any("forwarded+dropped" in p for p in validate_bench(doc))

    def test_share_sum_checked(self, smoke_doc):
        doc = copy.deepcopy(smoke_doc)
        shares = doc["results"][0]["profile"]["phase_shares"]
        shares[next(iter(shares))] += 0.5
        assert any("sum" in p for p in validate_bench(doc))

    def test_switch_coverage_vs_matrix(self, smoke_doc):
        doc = copy.deepcopy(smoke_doc)
        doc["results"] = [
            r for r in doc["results"] if r["switch"] == "ipsa"
        ]
        assert any("matrix.switches" in p for p in validate_bench(doc))


class TestUpdateStall:
    """Acceptance: the transactional path discards fewer packets and
    stalls strictly shorter than the in-place baseline, per case."""

    def test_smoke_doc_has_both_paths_per_case(self, smoke_doc):
        cells = {
            (c["case"], c["path"]) for c in smoke_doc["update_stall"]
        }
        assert cells == {
            (case, path)
            for case in ("C1", "C2", "C3")
            for path in ("txn", "inplace")
        }

    def test_txn_beats_inplace(self, smoke_doc):
        by_cell = {
            (c["case"], c["path"]): c for c in smoke_doc["update_stall"]
        }
        for case in ("C1", "C2", "C3"):
            txn, inplace = by_cell[(case, "txn")], by_cell[(case, "inplace")]
            assert txn["drained_packets"] == 0
            assert inplace["drained_packets"] > 0
            assert txn["stall_ns"] < inplace["stall_ns"]
            assert txn["completed_inflight"] == inplace["drained_packets"]
            assert txn["served_during_update"] > 0
            assert inplace["served_during_update"] == 0

    def test_validation_rejects_txn_not_strictly_better(self, smoke_doc):
        doc = copy.deepcopy(smoke_doc)
        for cell in doc["update_stall"]:
            if cell["case"] == "C1" and cell["path"] == "txn":
                cell["stall_ns"] = 1e12
        assert any(
            "not strictly below" in p for p in validate_bench(doc)
        )

    def test_validation_rejects_missing_stall_key(self, smoke_doc):
        doc = copy.deepcopy(smoke_doc)
        del doc["update_stall"][0]["stall_ns"]
        assert any("stall_ns" in p for p in validate_bench(doc))

    def test_section_is_optional_for_old_documents(self, smoke_doc):
        doc = copy.deepcopy(smoke_doc)
        del doc["update_stall"]
        assert validate_bench(doc) == []

    def test_unknown_path_rejected(self, smoke_doc):
        doc = copy.deepcopy(smoke_doc)
        doc["update_stall"][0]["path"] = "yolo"
        assert any("unknown" in p for p in validate_bench(doc))


class TestIntOverhead:
    """The ``int_overhead`` cell: telemetry stack on vs off."""

    def test_smoke_doc_has_the_cell(self, smoke_doc):
        cell = smoke_doc["int_overhead"]
        assert cell["packets"] > 0
        assert cell["ns_per_pkt_off"] > 0 and cell["ns_per_pkt_on"] > 0
        # Every watched packet pushed exactly one hop record.
        assert cell["hop_records"] == cell["packets"]

    def test_validation_rejects_dead_int_stage(self, smoke_doc):
        doc = copy.deepcopy(smoke_doc)
        doc["int_overhead"]["hop_records"] = 0
        assert any("never fired" in p for p in validate_bench(doc))

    def test_validation_rejects_missing_key(self, smoke_doc):
        doc = copy.deepcopy(smoke_doc)
        del doc["int_overhead"]["ns_per_pkt_on"]
        assert any("ns_per_pkt_on" in p for p in validate_bench(doc))

    def test_section_is_optional_for_old_documents(self, smoke_doc):
        doc = copy.deepcopy(smoke_doc)
        del doc["int_overhead"]
        assert validate_bench(doc) == []

    def test_comparison_regression_detected(self, smoke_doc):
        worse = copy.deepcopy(smoke_doc)
        worse["int_overhead"]["ns_per_pkt_on"] *= 3.0  # beyond the gate
        comparison = compare_documents(smoke_doc, worse)
        assert {d.metric for d in comparison.regressions} == {
            "ns_per_pkt_on"
        }

    def test_baseline_without_cell_notes_new_cell(self, smoke_doc):
        old = copy.deepcopy(smoke_doc)
        del old["int_overhead"]
        comparison = compare_documents(old, smoke_doc)
        assert comparison.ok
        assert "int_overhead" in comparison.new_cells


class TestHealthOverhead:
    """The ``health_overhead`` cell: engine polling on vs off."""

    def test_smoke_doc_has_the_cell(self, smoke_doc):
        cell = smoke_doc["health_overhead"]
        assert cell["packets"] > 0
        assert cell["ns_per_pkt_off"] > 0 and cell["ns_per_pkt_on"] > 0
        assert cell["ticks"] > 0 and cell["rules"] > 0

    def test_validation_rejects_dead_engine(self, smoke_doc):
        doc = copy.deepcopy(smoke_doc)
        doc["health_overhead"]["ticks"] = 0
        assert any("never evaluated" in p for p in validate_bench(doc))

    def test_validation_rejects_missing_key(self, smoke_doc):
        doc = copy.deepcopy(smoke_doc)
        del doc["health_overhead"]["ns_per_pkt_on"]
        assert any("ns_per_pkt_on" in p for p in validate_bench(doc))

    def test_section_is_optional_for_old_documents(self, smoke_doc):
        doc = copy.deepcopy(smoke_doc)
        del doc["health_overhead"]
        assert validate_bench(doc) == []

    def test_comparison_regression_detected(self, smoke_doc):
        worse = copy.deepcopy(smoke_doc)
        worse["health_overhead"]["ns_per_pkt_on"] *= 3.0
        comparison = compare_documents(smoke_doc, worse)
        assert any(
            d.cell == "health_overhead" for d in comparison.regressions
        )

    def test_baseline_without_cell_notes_new_cell(self, smoke_doc):
        old = copy.deepcopy(smoke_doc)
        del old["health_overhead"]
        comparison = compare_documents(old, smoke_doc)
        assert comparison.ok
        assert "health_overhead" in comparison.new_cells


class TestComparison:
    def test_identical_documents_ok(self, smoke_doc):
        comparison = compare_documents(smoke_doc, smoke_doc)
        assert comparison.ok
        assert "no regressions" in format_comparison(comparison)

    def test_throughput_regression_detected(self, smoke_doc):
        worse = copy.deepcopy(smoke_doc)
        for result in worse["results"]:
            result["pps"] *= 0.5
            result["ns_per_pkt"] *= 2.0
        comparison = compare_documents(smoke_doc, worse)
        assert not comparison.ok
        metrics = {d.metric for d in comparison.regressions}
        assert metrics == {"pps", "ns_per_pkt"}
        assert "REGRESSED" in format_comparison(comparison)

    def test_improvement_is_not_a_regression(self, smoke_doc):
        better = copy.deepcopy(smoke_doc)
        for result in better["results"]:
            result["pps"] *= 2.0
            result["ns_per_pkt"] *= 0.5
        assert compare_documents(smoke_doc, better).ok

    def test_overhead_regression_detected(self, smoke_doc):
        worse = copy.deepcopy(smoke_doc)
        for result in worse["results"]:
            result["profile"]["overhead_pct"] += 100.0
        comparison = compare_documents(smoke_doc, worse)
        assert {d.metric for d in comparison.regressions} == {
            "overhead_pct"
        }

    def test_missing_cell_reported(self, smoke_doc):
        partial = copy.deepcopy(smoke_doc)
        partial["results"] = [
            r for r in partial["results"] if r["case"] != "C3"
        ]
        partial["matrix"]["cases"] = ["base", "C1", "C2"]
        comparison = compare_documents(smoke_doc, partial)
        assert comparison.missing_cells == ["ipsa/C3", "pisa/C3"]

    def test_stall_regression_detected(self, smoke_doc):
        worse = copy.deepcopy(smoke_doc)
        for cell in worse["update_stall"]:
            if cell["path"] == "txn":
                cell["drained_packets"] += 4
        comparison = compare_documents(smoke_doc, worse)
        assert {d.metric for d in comparison.regressions} == {
            "drained_packets"
        }

    def test_stall_jitter_within_tolerance_ok(self, smoke_doc):
        noisy = copy.deepcopy(smoke_doc)
        for cell in noisy["update_stall"]:
            cell["stall_ns"] *= 1.5  # within the loose stall gate
        assert compare_documents(smoke_doc, noisy).ok

    def test_baseline_without_stall_section_notes_new_cells(
        self, smoke_doc
    ):
        old = copy.deepcopy(smoke_doc)
        del old["update_stall"]
        comparison = compare_documents(old, smoke_doc)
        assert comparison.ok
        assert "stall:C1/txn" in comparison.new_cells

    def test_largest_trace_wins_per_cell(self, smoke_doc):
        doubled = copy.deepcopy(smoke_doc)
        for result in list(doubled["results"]):
            bigger = copy.deepcopy(result)
            bigger["packets"] *= 10
            bigger["pps"] = 1.0  # the cell value comparison should use
            doubled["results"].append(bigger)
        comparison = compare_documents(smoke_doc, doubled)
        assert all(
            d.new == 1.0 for d in comparison.deltas if d.metric == "pps"
        )


class TestHarnessCli:
    def test_smoke_run_writes_valid_file(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_test.json"
        code = harness_main(
            ["--smoke", "--sizes", "20", "--out", str(out_path)]
        )
        assert code == 0
        doc = json.loads(out_path.read_text())
        assert validate_bench(doc) == []
        assert "wrote 8 results" in capsys.readouterr().out

    def test_validate_and_compare_flow(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_a.json"
        harness_main(
            ["--smoke", "--sizes", "20", "--quiet", "--out", str(out_path)]
        )
        capsys.readouterr()
        assert harness_main(["--validate", str(out_path)]) == 0
        assert "valid repro-bench" in capsys.readouterr().out
        assert (
            harness_main(["--compare", str(out_path), str(out_path)]) == 0
        )
        assert "no regressions" in capsys.readouterr().out

    def test_compare_regression_exit_codes(self, tmp_path, capsys):
        base = tmp_path / "old.json"
        harness_main(
            ["--smoke", "--sizes", "20", "--quiet", "--out", str(base)]
        )
        worse_doc = json.loads(base.read_text())
        for result in worse_doc["results"]:
            result["pps"] *= 0.1
            result["ns_per_pkt"] *= 10.0
            columnar = result.get("columnar")
            if columnar is not None:
                # speedup_x is validated as derived from these two, so
                # a hand-worsened document must keep it consistent.
                columnar["speedup_x"] = (
                    columnar["ns_per_pkt_off"] / result["ns_per_pkt"]
                )
        worse = tmp_path / "new.json"
        worse.write_text(json.dumps(worse_doc))
        capsys.readouterr()
        assert harness_main(["--compare", str(base), str(worse)]) == 1
        assert (
            harness_main(
                ["--compare", str(base), str(worse), "--report-only"]
            )
            == 0
        )

    def test_validate_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"kind": "something-else"}')
        assert harness_main(["--validate", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().out


class TestIpbmCtlIntegration:
    def test_profile_subcommand(self, tmp_path, capsys):
        folded = tmp_path / "stacks.folded"
        code = ipbm_ctl_main(
            [
                "profile",
                "--switch", "ipsa",
                "--case", "base",
                "--packets", "20",
                "--folded", str(folded),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ipsa/base: 20 packets" in out
        assert "phases:" in out
        lines = folded.read_text().strip().splitlines()
        assert lines and all(
            line.startswith("ipsa;") and line.rsplit(" ", 1)[1].isdigit()
            for line in lines
        )

    def test_bench_subcommand_forwards_to_harness(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_cli.json"
        code = ipbm_ctl_main(
            [
                "bench", "--smoke", "--quiet",
                "--sizes", "20",
                "--cases", "base",
                "--out", str(out_path),
            ]
        )
        assert code == 0
        assert validate_bench(json.loads(out_path.read_text())) == []

    def test_int_report_subcommand(self, capsys):
        code = ipbm_ctl_main(
            ["int", "report", "--nodes", "3", "--packets", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "4 packets sent, 4 delivered" in out
        assert "12 hop records" in out
        assert "switch 1 -> switch 2 -> switch 3" in out

    def test_int_export_subcommand(self, tmp_path, capsys):
        records = tmp_path / "int.jsonl"
        metrics = tmp_path / "int.prom"
        code = ipbm_ctl_main(
            [
                "int", "export", str(records),
                "--packets", "3",
                "--strip", "sink",
                "--metrics-out", str(metrics),
            ]
        )
        assert code == 0
        lines = records.read_text().strip().splitlines()
        assert len(lines) == 3
        first = json.loads(lines[0])
        assert first["path"] == [1, 2, 3]
        assert "int_hop_latency_ns_bucket" in metrics.read_text()

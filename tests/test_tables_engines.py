"""Unit tests for the match engines."""

import pytest

from repro.tables.engines import ExactEngine, HashEngine, LpmEngine, TernaryEngine


class TestExactEngine:
    def test_insert_lookup(self):
        e = ExactEngine()
        e.insert((1, 2), "a")
        assert e.lookup((1, 2)) == "a"
        assert e.lookup((2, 1)) is None

    def test_overwrite(self):
        e = ExactEngine()
        e.insert((1,), "a")
        e.insert((1,), "b")
        assert e.lookup((1,)) == "b"
        assert len(e) == 1

    def test_remove(self):
        e = ExactEngine()
        e.insert((1,), "a")
        assert e.remove((1,)) == "a"
        assert e.lookup((1,)) is None

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            ExactEngine().remove((5,))


class TestLpmEngine:
    def test_longest_prefix_wins(self):
        e = LpmEngine(exact_count=0, lpm_width=32)
        e.insert((), 0x0A000000, 8, "short")
        e.insert((), 0x0A010000, 16, "long")
        assert e.lookup((0x0A010203,)) == "long"
        assert e.lookup((0x0A990203,)) == "short"

    def test_default_route(self):
        e = LpmEngine(0, 32)
        e.insert((), 0, 0, "default")
        assert e.lookup((0xDEADBEEF,)) == "default"

    def test_exact_prefix_fields(self):
        # VRF id (exact) + destination (lpm), as in the FIB stages.
        e = LpmEngine(exact_count=1, lpm_width=32)
        e.insert((1,), 0x0A000000, 8, "vrf1")
        e.insert((2,), 0x0A000000, 8, "vrf2")
        assert e.lookup((1, 0x0A000001)) == "vrf1"
        assert e.lookup((2, 0x0A000001)) == "vrf2"
        assert e.lookup((3, 0x0A000001)) is None

    def test_host_route(self):
        e = LpmEngine(0, 32)
        e.insert((), 0x0A000001, 32, "host")
        e.insert((), 0x0A000000, 24, "net")
        assert e.lookup((0x0A000001,)) == "host"
        assert e.lookup((0x0A000002,)) == "net"

    def test_remove(self):
        e = LpmEngine(0, 32)
        e.insert((), 0x0A000000, 8, "a")
        e.remove((), 0x0A000000, 8)
        assert e.lookup((0x0A000001,)) is None

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            LpmEngine(0, 32).remove((), 0, 8)

    def test_prefix_len_bounds(self):
        e = LpmEngine(0, 32)
        with pytest.raises(ValueError):
            e.insert((), 0, 33, "x")

    def test_ipv6_width(self):
        e = LpmEngine(0, 128)
        e.insert((), 0x20010DB8 << 96, 32, "doc")
        assert e.lookup(((0x20010DB8 << 96) + 5,)) == "doc"

    def test_value_bits_beyond_prefix_ignored(self):
        e = LpmEngine(0, 32)
        e.insert((), 0x0A0000FF, 24, "net")  # host bits set in the value
        assert e.lookup((0x0A000001,)) == "net"


class TestTernaryEngine:
    def test_priority_order(self):
        e = TernaryEngine(1)
        e.insert((0x10,), (0xF0,), 1, "low")
        e.insert((0x12,), (0xFF,), 10, "high")
        assert e.lookup((0x12,)) == "high"
        assert e.lookup((0x13,)) == "low"

    def test_wildcard_field(self):
        e = TernaryEngine(2)
        e.insert((5, 0), (0xFF, 0), 1, "any-second")
        assert e.lookup((5, 123)) == "any-second"
        assert e.lookup((6, 123)) is None

    def test_remove(self):
        e = TernaryEngine(1)
        e.insert((5,), (0xFF,), 1, "x")
        assert e.remove((5,), (0xFF,)) == "x"
        assert e.lookup((5,)) is None

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            TernaryEngine(1).remove((5,), (0xFF,))

    def test_field_count_enforced(self):
        with pytest.raises(ValueError):
            TernaryEngine(2).insert((1,), (1,), 0, "x")


class TestHashEngine:
    def test_deterministic_selection(self):
        e = HashEngine()
        for name in ("m0", "m1", "m2"):
            e.insert(name)
        first = e.lookup((42, 1))
        assert all(e.lookup((42, 1)) == first for _ in range(10))

    def test_distribution_covers_members(self):
        e = HashEngine()
        for name in ("m0", "m1", "m2", "m3"):
            e.insert(name)
        picks = {e.lookup((flow, 99)) for flow in range(200)}
        assert picks == {"m0", "m1", "m2", "m3"}

    def test_empty_misses(self):
        assert HashEngine().lookup((1,)) is None

    def test_remove_member(self):
        e = HashEngine()
        e.insert("a")
        e.insert("b")
        assert e.remove_member(0) == "a"
        assert e.lookup((7,)) == "b"

    def test_remove_bad_index(self):
        with pytest.raises(KeyError):
            HashEngine().remove_member(0)


class TestMatchKindRegistry:
    """engines.py is the single source of truth for match kinds: the
    rP4/P4 parsers, the validator, and rp4lint all import from here."""

    def test_registry_maps_kind_to_engine(self):
        from repro.tables.engines import ENGINES

        assert ENGINES["exact"] is ExactEngine
        assert ENGINES["lpm"] is LpmEngine
        assert ENGINES["ternary"] is TernaryEngine
        assert ENGINES["hash"] is HashEngine

    def test_match_kinds_cover_the_registry(self):
        from repro.tables.engines import ENGINES, MATCH_KINDS, P4_MATCH_KINDS

        assert MATCH_KINDS == frozenset(ENGINES)
        assert P4_MATCH_KINDS == MATCH_KINDS | {"selector"}

    def test_parsers_and_validator_share_the_registry(self):
        from repro.compiler import validate
        from repro.rp4 import parser as rp4_parser
        from repro.p4 import parser as p4_parser
        from repro.tables import engines

        assert rp4_parser.MATCH_KINDS is engines.MATCH_KINDS
        assert validate.MATCH_KINDS is engines.MATCH_KINDS
        assert p4_parser.P4_MATCH_KINDS is engines.P4_MATCH_KINDS

"""Tests for TM multicast replication."""

import pytest

from repro.compiler.rp4bc import compile_base
from repro.ipsa.switch import IpsaSwitch
from repro.ipsa.tm import TrafficManager
from repro.net.packet import Packet
from repro.tables.table import TableEntry


class TestTmGroups:
    def test_group_management(self):
        tm = TrafficManager()
        tm.set_group(1, [2, 3])
        assert tm.group(1) == [2, 3]
        tm.del_group(1)
        assert tm.group(1) == []

    def test_group_validation(self):
        tm = TrafficManager()
        with pytest.raises(ValueError):
            tm.set_group(0, [1])
        with pytest.raises(ValueError):
            tm.set_group(1, [])
        with pytest.raises(KeyError):
            tm.del_group(9)

    def test_unicast_passthrough(self):
        tm = TrafficManager()
        p = Packet(b"x")
        assert tm.enqueue_or_replicate(p) == 1
        assert tm.dequeue() is p

    def test_replication_clones_per_member(self):
        tm = TrafficManager()
        tm.set_group(5, [1, 2, 3])
        p = Packet(b"x")
        p.metadata["mcast_grp"] = 5
        assert tm.enqueue_or_replicate(p) == 3
        copies = tm.drain()
        assert sorted(c.metadata["egress_spec"] for c in copies) == [1, 2, 3]
        assert all(c.metadata["mcast_grp"] == 0 for c in copies)
        assert all(c is not p for c in copies)

    def test_unknown_group_drops(self):
        tm = TrafficManager()
        p = Packet(b"x")
        p.metadata["mcast_grp"] = 7
        assert tm.enqueue_or_replicate(p) == 0
        assert tm.stats.dropped == 1


#: Minimal design: the INGRESS stage decides unicast vs flood (the
#: multicast decision must precede the TM, which does the replication);
#: the egress stage stamps a per-copy field so clones are observable.
_MCAST_RP4 = """
headers {
    header ethernet {
        bit<48> dst_addr;
        bit<48> src_addr;
        bit<16> ethertype;
    }
}
structs {
    struct metadata {
        bit<16> stamp;
    } meta;
}
action set_port(bit<16> port) {
    meta.egress_spec = port;
}
action flood(bit<16> group) {
    meta.mcast_grp = group;
}
action stamp_copy(bit<48> mac) {
    ethernet.src_addr = mac;
}
table fwd {
    key = { ethernet.dst_addr: exact; }
    size = 64;
}
table per_copy {
    key = { meta.egress_spec: exact; }
    size = 16;
}
control rP4_Ingress {
    stage fwd {
        parser { ethernet };
        matcher { fwd.apply(); };
        executor {
            1: set_port;
            2: flood;
            default: drop;
        }
    }
}
control rP4_Egress {
    stage rewrite {
        parser { ethernet };
        matcher { per_copy.apply(); };
        executor {
            1: stamp_copy;
            default: NoAction;
        }
    }
}
user_funcs {
    func fwd { fwd }
    func rewrite { rewrite }
    ingress_entry: fwd;
    egress_entry: rewrite;
}
"""


class TestSwitchMulticast:
    @pytest.fixture
    def switch(self):
        design = compile_base(_MCAST_RP4)
        device = IpsaSwitch()
        device.load_config(design.config)
        device.table("fwd").add_entry(
            TableEntry(key=(0xAA,), action="set_port", action_data={"port": 2}, tag=1)
        )
        device.table("fwd").add_entry(
            TableEntry(key=(0xBB,), action="flood", action_data={"group": 9}, tag=2)
        )
        for port in (1, 2, 3):
            device.table("per_copy").add_entry(
                TableEntry(
                    key=(port,),
                    action="stamp_copy",
                    action_data={"mac": 0x020000000000 + port},
                    tag=1,
                )
            )
        device.pipeline.tm.set_group(9, [1, 2, 3])
        return device

    @staticmethod
    def _eth(dst):
        return dst.to_bytes(6, "big") + b"\x02" + b"\x00" * 5 + b"\x88\xb5" + b"pay"

    def test_unicast_unaffected(self, switch):
        outs = switch.inject_multi(self._eth(0xAA), 0)
        assert len(outs) == 1 and outs[0].port == 2

    def test_flooded_flow_replicates(self, switch):
        outs = switch.inject_multi(self._eth(0xBB), 0)
        assert sorted(o.port for o in outs) == [1, 2, 3]
        assert switch.packets_out == 3

    def test_egress_runs_per_copy(self, switch):
        outs = switch.inject_multi(self._eth(0xBB), 0)
        smacs = sorted(int.from_bytes(o.data[6:12], "big") for o in outs)
        assert smacs == [0x020000000001, 0x020000000002, 0x020000000003]

    def test_inject_returns_first_copy(self, switch):
        out = switch.inject(self._eth(0xBB), 0)
        assert out is not None and out.port == 1

    def test_unknown_group_drops(self, switch):
        switch.table("fwd").add_entry(
            TableEntry(key=(0xCC,), action="flood", action_data={"group": 77}, tag=2)
        )
        assert switch.inject_multi(self._eth(0xCC), 0) == []
        assert switch.packets_dropped == 1

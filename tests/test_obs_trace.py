"""Packet-tracer tests: span nesting, drop taxonomy, round-trips."""

import pytest

from repro.compiler.rp4bc import compile_base
from repro.ipsa.switch import IpsaSwitch
from repro.net.packet import Packet
from repro.obs.trace import DropReason, PacketTrace, PacketTracer, format_trace
from repro.programs import base_rp4_source, populate_base_tables
from repro.workloads import ipv4_packet


@pytest.fixture
def switch():
    device = IpsaSwitch(n_tsps=8)
    device.load_config(compile_base(base_rp4_source()).config)
    populate_base_tables(device.tables)
    return device


class TestTracerLifecycle:
    def test_off_by_default(self, switch):
        assert switch.tracer is None
        out = switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), port=0)
        assert out is not None and out.port == 3  # forwarding unaffected

    def test_enable_is_idempotent(self, switch):
        tracer = switch.enable_tracing(capacity=4)
        assert switch.enable_tracing() is tracer

    def test_disable_returns_captured_traces(self, switch):
        tracer = switch.enable_tracing()
        switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), port=0)
        detached = switch.disable_tracing()
        assert detached is tracer
        assert switch.tracer is None
        assert len(detached.traces) == 1
        # Further traffic records nothing.
        switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), port=0)
        assert len(detached.traces) == 1

    def test_capacity_bounds_history(self, switch):
        switch.enable_tracing(capacity=2)
        for _ in range(5):
            switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), port=0)
        assert len(switch.tracer.traces) == 2
        assert [t.seq for t in switch.tracer.traces] == [3, 4]

    def test_traced_run_forwards_identically(self, switch):
        data = ipv4_packet("10.1.0.1", "10.2.0.5")
        untraced = switch.inject(data, port=0)
        switch.enable_tracing()
        traced = switch.inject(data, port=0)
        assert traced.port == untraced.port
        assert traced.data == untraced.data


class TestSpanTree:
    """Acceptance: one span per active TSP with correct children."""

    def test_one_span_per_active_tsp(self, switch):
        switch.enable_tracing()
        out = switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), port=0)
        assert out.port == 3
        (trace,) = switch.tracer.traces
        spans = trace.tsp_spans()
        # Base design: 7 active TSPs of 8 (TSP 6 is bypassed).
        active = [t.index for t in switch.pipeline.active_tsps()]
        assert len(active) == 7
        assert [s.attrs["tsp"] for s in spans] == active
        assert [s.name for s in spans] == [f"tsp{i}" for i in active]

    def test_parse_match_execute_children(self, switch):
        switch.enable_tracing()
        switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), port=0)
        (trace,) = switch.tracer.traces
        for span in trace.tsp_spans():
            kinds = [c.kind for c in span.children]
            # Every TSP parses then matches; stages that fire an action
            # also execute.  Order within each stage is fixed.
            assert kinds[0] == "parse"
            assert "match" in kinds
            assert set(kinds) <= {"parse", "match", "execute"}
            for child in span.children:
                if child.kind == "parse":
                    assert "headers" in child.attrs
                if child.kind == "match" and child.attrs.get("matched", True):
                    assert "hit" in child.attrs and "table" in child.attrs
                if child.kind == "execute":
                    assert "action" in child.attrs

    def test_first_tsp_parses_ethernet(self, switch):
        switch.enable_tracing()
        switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), port=0)
        (trace,) = switch.tracer.traces
        first = trace.tsp_spans()[0]
        parse = next(c for c in first.children if c.kind == "parse")
        assert "ethernet" in parse.attrs["headers"]

    def test_ingress_and_egress_sides_recorded(self, switch):
        switch.enable_tracing()
        switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), port=0)
        (trace,) = switch.tracer.traces
        sides = [s.attrs["side"] for s in trace.tsp_spans()]
        assert "ingress" in sides and "egress" in sides
        # The selector boundary: every ingress span precedes every egress.
        assert sides == sorted(sides, key=lambda s: s == "egress")

    def test_tm_events_bracket_the_boundary(self, switch):
        switch.enable_tracing()
        switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), port=0)
        (trace,) = switch.tracer.traces
        tm_events = [c for c in trace.root.children if c.kind == "tm"]
        names = [e.name for e in tm_events]
        assert "tm.enqueue" in names and "tm.dequeue" in names
        enqueue = next(e for e in tm_events if e.name == "tm.enqueue")
        assert enqueue.attrs["queued"] == 1

    def test_find_walks_depth_first(self, switch):
        switch.enable_tracing()
        switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), port=0)
        (trace,) = switch.tracer.traces
        matches = trace.root.find("match")
        assert len(matches) >= 7  # at least one lookup per active TSP
        assert all(m.kind == "match" for m in matches)


class TestDropTaxonomy:
    def test_ingress_action_drop(self, switch):
        # Port 9 misses port_map, whose default action is drop.
        switch.enable_tracing()
        out = switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), port=9)
        assert out is None
        (trace,) = switch.tracer.traces
        assert trace.outcome == "drop"
        assert trace.drop_reason == DropReason.INGRESS_ACTION.value
        assert switch.drop_reasons == {"ingress_action": 1}

    def test_tm_tail_drop(self, switch):
        switch.enable_tracing()
        switch.pipeline.tm.buffer_packets = 1
        switch.pipeline.tm.enqueue_or_replicate(Packet(b"x" * 64))  # fill it
        out = switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), port=0)
        assert out is None
        (trace,) = switch.tracer.traces
        assert trace.drop_reason == DropReason.TM_TAIL_DROP.value
        assert switch.drop_reasons.get("tm_tail_drop") == 1

    def test_drop_reasons_reach_the_registry(self, switch):
        switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), port=9)
        assert (
            switch.metrics.value("device.drops", reason="ingress_action") == 1
        )

    def test_drop_reasons_counted_without_tracer(self, switch):
        assert switch.tracer is None
        switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), port=9)
        assert switch.drop_reasons == {"ingress_action": 1}

    def test_note_drop_keeps_first_reason(self):
        tracer = PacketTracer()
        tracer.begin()
        tracer.note_drop(DropReason.TM_TAIL_DROP)
        tracer.note_drop(DropReason.EGRESS_ACTION)
        trace = tracer.end("drop")
        assert trace.drop_reason == DropReason.TM_TAIL_DROP.value


class TestRoundTrip:
    def test_trace_json_round_trip(self, switch):
        switch.enable_tracing()
        switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), port=0)
        (trace,) = switch.tracer.traces
        clone = PacketTrace.from_dict(trace.to_dict())
        assert clone.to_dict() == trace.to_dict()
        assert clone.seq == trace.seq
        assert clone.outcome == "emit"
        assert clone.egress_ports == [3]
        assert len(clone.tsp_spans()) == len(trace.tsp_spans())

    def test_format_trace_renders_the_tree(self, switch):
        switch.enable_tracing()
        switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), port=0)
        (trace,) = switch.tracer.traces
        text = format_trace(trace)
        assert "EMIT -> port 3" in text
        assert "- tsp0" in text
        assert "- parse" in text and "- match" in text and "- execute" in text

    def test_format_trace_renders_drops(self, switch):
        switch.enable_tracing()
        switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), port=9)
        (trace,) = switch.tracer.traces
        assert "DROP (ingress_action)" in format_trace(trace)


class TestPisaTracing:
    @pytest.fixture
    def bmv2(self):
        from repro.pisa.switch import PisaSwitch
        from repro.programs import base_p4_source

        device = PisaSwitch(n_stages=8)
        device.load(base_p4_source())
        populate_base_tables(device.tables)
        return device

    def test_stage_spans_with_match_execute(self, bmv2):
        bmv2.enable_tracing()
        out = bmv2.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), port=0)
        assert out is not None and out.port == 3
        (trace,) = bmv2.tracer.traces
        stages = [s for s in trace.root.children if s.kind == "stage"]
        assert stages, "PISA trace should contain stage spans"
        for stage in stages:
            kinds = [c.kind for c in stage.children]
            assert kinds[0] == "match"
        # The full front-end parse happens once, before the pipeline.
        parses = [s for s in trace.root.children if s.kind == "parse"]
        assert len(parses) == 1
        assert "ethernet" in parses[0].attrs["headers"]

    def test_traced_run_forwards_identically(self, bmv2):
        data = ipv4_packet("10.1.0.1", "10.2.0.5")
        untraced = bmv2.inject(data, port=0)
        bmv2.enable_tracing()
        traced = bmv2.inject(data, port=0)
        assert traced.port == untraced.port
        assert traced.data == untraced.data

"""Multi-hop INT across a line fabric: paths, latency, rollout evidence."""

import pytest

from repro.bench.scenarios import make_int_fabric
from repro.obs.clock import ManualClock
from repro.programs import acl_load_script, acl_rp4_source
from repro.workloads import ipv4_packet


def watched(sport=1024):
    return ipv4_packet("10.1.0.1", "10.2.0.1", sport=sport)


@pytest.fixture
def line3():
    clock = ManualClock(start=1.0, tick=1e-6)
    fabric, collector = make_int_fabric(n_nodes=3, clock=clock, strip="edge")
    return fabric, collector


class TestMultiHopPath:
    def test_hop_order_matches_wiring(self, line3):
        fabric, collector = line3
        delivery = fabric.send("sw0", watched(), 0)
        assert delivery is not None
        assert tuple(delivery.path) == ("sw0", "sw1", "sw2")
        assert len(collector.records) == 1
        record = collector.records[0]
        # One hop record per instrumented switch, in traversal order.
        assert record["path"] == [1, 2, 3]
        assert record["flow"] == "10.1.0.1->10.2.0.1"
        assert record["node"] == "sw2"

    def test_timestamps_monotonic_along_path(self, line3):
        fabric, collector = line3
        fabric.send("sw0", watched(), 0)
        hops = collector.records[0]["hops"]
        stamps = []
        for hop in hops:
            assert hop["ingress_ts"] <= hop["egress_ts"]
            stamps.extend((hop["ingress_ts"], hop["egress_ts"]))
        assert stamps == sorted(stamps)
        assert collector.records[0]["e2e_latency_ns"] > 0
        # All hops forwarded under the same (fully rolled out) epoch.
        assert collector.records[0]["epoch_mismatch"] is False

    def test_edge_strip_delivers_plain_packet(self, line3):
        fabric, _collector = line3
        delivery = fabric.send("sw0", watched(), 0)
        assert delivery.data[12:14] == b"\x08\x00"

    def test_latency_histograms_exported(self, line3):
        fabric, collector = line3
        fabric.send("sw0", watched(), 0)
        text = collector.metrics.to_prometheus()
        assert "int_e2e_latency_ns_bucket" in text
        for switch_id in (1, 2, 3):
            assert f'int_hop_latency_ns_count{{switch="{switch_id}"}}' in text

    def test_latency_quantiles(self, line3):
        fabric, collector = line3
        for sport in range(1024, 1032):
            fabric.send("sw0", watched(sport), 0)
        p50 = collector.latency_quantile(0.5)
        p99 = collector.latency_quantile(0.99)
        assert p50 is not None and p99 is not None
        assert 0 < p50 <= p99
        # Per-hop quantiles address individual switches; an unknown
        # switch has no observations.
        assert collector.latency_quantile(0.99, switch_id=1) > 0
        assert collector.latency_quantile(0.99, switch_id=77) is None
        summary = collector.summary()
        assert summary["e2e_latency_ns"]["p50"] == p50
        assert set(summary["hop_latency_p99_ns"]) == {"1", "2", "3"}

    def test_sink_strip_reports_device_side(self):
        clock = ManualClock(start=1.0, tick=1e-6)
        fabric, collector = make_int_fabric(
            n_nodes=3, clock=clock, strip="sink"
        )
        delivery = fabric.send("sw0", watched(), 0)
        assert delivery is not None
        assert delivery.data[12:14] == b"\x08\x00"
        assert len(collector.records) == 1
        record = collector.records[0]
        assert record["path"] == [1, 2, 3]
        assert record["node"] == "sw2"


class TestRolloutEvidence:
    def test_mixed_epochs_only_inside_flip_window(self, line3):
        fabric, collector = line3
        trace = [(watched(sport=2000 + i), 0) for i in range(3)]

        # Before the rollout every node forwards under the same epoch.
        for data, port in trace:
            fabric.send("sw0", data, port)
        assert all(not r["epoch_mismatch"] for r in collector.records)

        report = fabric.staged_rollout(
            acl_load_script(),
            {"acl.rp4": acl_rp4_source()},
            wave_size=1,
            evidence_trace=trace,
        )

        # canary:sw0, wave:0 (sw1), wave:1 (sw2).
        assert [e["after"] for e in report.epoch_evidence] == [
            "canary:sw0",
            "wave:0",
            "wave:1",
        ]
        mid = report.epoch_evidence[:-1]
        final = report.epoch_evidence[-1]
        # Inside the flip window packets straddle old and new plans --
        # the staged rollout is observable in-band.
        for checkpoint in mid:
            assert len(checkpoint["epochs"]) == 2
            assert checkpoint["mismatched_packets"] == checkpoint["packets"]
        # Once every node committed, the evidence is single-epoch again.
        assert len(final["epochs"]) == 1
        assert final["mismatched_packets"] == 0
        assert final["epochs"][0] == max(mid[0]["epochs"])

    def test_collector_epoch_evidence_view(self, line3):
        fabric, collector = line3
        trace = [(watched(sport=3000), 0)]
        fabric.staged_rollout(
            acl_load_script(),
            {"acl.rp4": acl_rp4_source()},
            wave_size=1,
            evidence_trace=trace,
        )
        evidence = collector.epoch_evidence()
        assert evidence, "mid-rollout packets must record mixed epochs"
        assert all(len(r["epochs"]) > 1 for r in evidence)
        assert collector.summary()["epoch_mismatch_packets"] == len(evidence)

"""Compiled stage plans: caching, invalidation, and drop fidelity.

The dataplane core compiles each device's stages into a plan with
pre-resolved table/action references at commit time; every runtime
event that could change what the plan resolved (template write, table
repoint, selector reconfig, full load) must invalidate it -- or the
device keeps forwarding with stale references.
"""

import pytest

from repro.bench.scenarios import make_ipsa_controller, make_switch
from repro.programs import ecmp_load_script, ecmp_rp4_source
from repro.tables.table import Table, TableEntry
from repro.workloads import ipv4_packet


@pytest.fixture
def controller():
    return make_ipsa_controller("base")


class TestPlanCache:
    def test_plan_compiled_once_and_reused(self, controller):
        switch = controller.switch
        plan = switch.dp.plan()
        compiles = switch.dp.plan_compiles
        for _ in range(5):
            switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), 0)
        assert switch.dp.plan() is plan
        assert switch.dp.plan_compiles == compiles

    def test_apply_update_flips_a_precompiled_plan(self, controller):
        switch = controller.switch
        epoch = switch.dp.epoch
        generation = switch.dp.generation
        invalidations_before = dict(switch.dp.plan_invalidations)
        controller.run_script(
            ecmp_load_script(), {"ecmp.rp4": ecmp_rp4_source()}
        )
        # The transactional path never invalidates: the shadow plan is
        # compiled during prepare and installed by an epoch flip, so
        # the cache stays warm through the whole update.
        assert switch.dp.plan_invalidations == invalidations_before
        assert switch.dp.plan_flips.get("txn_commit", 0) == 1
        assert switch.dp.epoch == epoch + 1
        assert switch.dp.generation > generation
        assert switch.dp._plan is not None
        assert switch.metrics.value("dp.plan_epoch") == switch.dp.epoch
        assert switch.metrics.value(
            "dp.plan_flips", reason="txn_commit"
        ) == 1
        timeline = switch.timelines.latest("apply_update")
        assert "flip" in [p.name for p in timeline.phases]

    def test_invalidations_reach_the_registry(self, controller):
        switch = controller.switch
        generation = switch.dp.generation
        switch.pipeline.configure_selector(switch.pipeline.selector)
        assert switch.dp.generation == generation + 1
        assert switch.metrics.value(
            "dp.plan_invalidations", reason="selector"
        ) >= 1
        assert (
            switch.metrics.value("dp.plan_generation")
            == switch.dp.generation
        )
        assert switch.metrics.value("dp.plan_compiles") == (
            switch.dp.plan_compiles
        )


class TestRuntimeInvalidation:
    def test_template_write_changes_behavior(self, controller):
        """After the in-situ ECMP load the recompiled plan spreads
        flows over several next hops (paper use case C1)."""
        switch = controller.switch

        def ports(n_flows=40):
            outs = switch.inject_batch(
                [
                    (
                        ipv4_packet(
                            "10.1.0.1",
                            f"10.2.0.{flow + 1}",
                            sport=1000 + flow,
                        ),
                        0,
                    )
                    for flow in range(n_flows)
                ]
            )
            return {out.port for out in outs if out is not None}

        before = ports()
        assert len(before) == 1
        generation = switch.dp.generation
        controller.run_script(
            ecmp_load_script(), {"ecmp.rp4": ecmp_rp4_source()}
        )
        from repro.programs import populate_ecmp_tables

        populate_ecmp_tables(switch.tables)
        assert switch.dp.generation > generation
        assert len(ports()) > 1

    def test_set_table_repoint_invalidates(self, controller):
        """Plans hold direct table refs: a repoint without
        invalidation would keep matching against the old object."""
        switch = controller.switch
        drop_probe = (ipv4_packet("10.1.0.1", "10.2.0.5"), 9)
        assert switch.inject(*drop_probe) is None  # port 9 misses port_map

        old = switch.table("port_map")
        replacement = Table(
            "port_map", list(old.key), size=old.size,
            default_action=old.default_action,
        )
        for entry in old.entries():
            replacement.add_entry(entry)
        replacement.add_entry(
            TableEntry(
                key=(9,), action="set_intf", action_data={"intf": 0}, tag=1
            )
        )
        switch.set_table("port_map", replacement)
        assert switch.dp.plan_invalidations.get("table_repoint") == 1

        assert switch.inject(*drop_probe) is not None
        # The recompiled plan resolved the new object, not the old one.
        assert replacement.hit_count > 0
        resolved = [
            arm.table
            for tsp in switch.dp.plan().ingress
            for stage in tsp.stages
            for arm in stage.arms
            if arm.table_name == "port_map"
        ]
        assert resolved and all(t is replacement for t in resolved)

    def test_pisa_load_invalidates(self):
        switch = make_switch("pisa", "base")
        assert switch.dp.plan_invalidations.get("load") == 1
        out = switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), 0)
        assert out is not None
        assert switch.dp.plan_compiles >= 1

    def test_pisa_set_table_repoint(self):
        switch = make_switch("pisa", "base")
        switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), 0)
        old = switch.table("port_map")
        replacement = Table(
            "port_map", list(old.key), size=old.size,
            default_action=old.default_action,
        )
        for entry in old.entries():
            replacement.add_entry(entry)
        switch.set_table("port_map", replacement)
        assert switch.dp.plan_invalidations.get("table_repoint") == 1
        assert switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), 0)
        assert replacement.hit_count > 0


class TestDropReasonFidelity:
    """The front door records the pipeline's actual drop reason --
    never UNKNOWN when the pipeline reported one."""

    def test_untraced_drop_counted_by_reason(self, controller):
        switch = controller.switch
        assert switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), 9) is None
        assert switch.drop_reasons == {"ingress_action": 1}
        assert "unknown" not in switch.drop_reasons

    def test_batch_drops_counted_by_reason(self, controller):
        switch = controller.switch
        batch = switch.inject_batch(
            [(ipv4_packet("10.1.0.1", "10.2.0.5"), 9)] * 3
        )
        assert batch.dropped == 3
        assert switch.drop_reasons == {"ingress_action": 3}

    def test_metadata_template_tracks_new_metadata(self, controller):
        """Satellite: per-device merged defaults dict, rebuilt on
        schema updates, copied once per packet."""
        switch = controller.switch
        assert "ingress_port" in switch.dp.metadata_template
        for name in switch.metadata_defaults:
            assert name in switch.dp.metadata_template
        switch.apply_update({"new_metadata": [["md_probe", 8]]})
        assert switch.dp.metadata_template["md_probe"] == 0
        out = switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), 0)
        assert out is not None

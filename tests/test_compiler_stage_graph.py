"""Unit tests for the stage graph and load-script parsing."""

import pytest

from repro.compiler.script import (
    AddLinkCmd,
    DelLinkCmd,
    LinkHeaderCmd,
    LoadCmd,
    ScriptError,
    UnloadCmd,
    parse_script,
)
from repro.compiler.stage_graph import StageGraph, StageGraphError
from repro.rp4 import parse_rp4
from repro.rp4.ast import StageDecl
from repro.programs import base_rp4_source, ecmp_load_script, srv6_load_script


@pytest.fixture
def graph():
    return StageGraph.from_program(parse_rp4(base_rp4_source()))


class TestConstruction:
    def test_chain_edges(self, graph):
        assert graph.successors("port_map") == ["bridge_vrf"]
        assert graph.successors("ipv6_host") == ["nexthop"]

    def test_tm_crossing_edge(self, graph):
        assert "l2_l3_rewrite" in graph.successors("nexthop")

    def test_entries(self, graph):
        assert graph.ingress_entry == "port_map"
        assert graph.egress_entry == "l2_l3_rewrite"

    def test_funcs_attached(self, graph):
        assert graph.nodes["port_map"].func == "l2l3_fwd"
        assert graph.nodes["dmac"].func == "rewrite"

    def test_linearize(self, graph):
        order = graph.linearize("ingress")
        assert order[0] == "port_map"
        assert order[-1] == "nexthop"
        assert graph.linearize("egress") == ["l2_l3_rewrite", "dmac"]


class TestEdits:
    def test_ecmp_script_semantics(self, graph):
        ecmp = StageDecl(name="ecmp")
        graph.add_stage(ecmp, side="ingress", func="ecmp")
        graph.add_link("ipv6_host", "ecmp")
        graph.del_link("ipv6_host", "nexthop")
        graph.add_link("ecmp", "l2_l3_rewrite")
        graph.del_link("nexthop", "l2_l3_rewrite")
        removed = graph.prune_orphans()
        assert removed == ["nexthop"]
        assert graph.linearize("ingress")[-1] == "ecmp"

    def test_duplicate_stage_rejected(self, graph):
        with pytest.raises(StageGraphError):
            graph.add_stage(StageDecl(name="port_map"))

    def test_add_link_unknown_stage(self, graph):
        with pytest.raises(StageGraphError):
            graph.add_link("port_map", "ghost")

    def test_del_missing_link(self, graph):
        with pytest.raises(StageGraphError):
            graph.del_link("port_map", "nexthop")

    def test_add_link_idempotent(self, graph):
        graph.add_link("port_map", "bridge_vrf")
        assert graph.successors("port_map").count("bridge_vrf") == 1

    def test_remove_func_relinks(self, graph):
        # Removing the rewrite func leaves an empty egress side.
        doomed = graph.remove_func("rewrite")
        assert set(doomed) == {"l2_l3_rewrite", "dmac"}
        assert "l2_l3_rewrite" not in graph.successors("nexthop")

    def test_remove_middle_func_bridges_links(self, graph):
        probe = StageDecl(name="probe")
        graph.add_stage(probe, side="ingress", func="probe_fn")
        graph.add_link("l2_l3", "probe")
        graph.del_link("l2_l3", "ipv4_lpm")
        graph.add_link("probe", "ipv4_lpm")
        graph.remove_func("probe_fn")
        assert "ipv4_lpm" in graph.successors("l2_l3")

    def test_remove_unknown_func(self, graph):
        with pytest.raises(StageGraphError):
            graph.remove_func("ghost")

    def test_cycle_detected(self, graph):
        graph.add_link("nexthop", "port_map")
        with pytest.raises(StageGraphError):
            graph.linearize("ingress")

    def test_clone_isolated(self, graph):
        twin = graph.clone()
        twin.del_link("port_map", "bridge_vrf")
        assert graph.successors("port_map") == ["bridge_vrf"]

    def test_tables_in_use(self, graph):
        used = graph.tables_in_use()
        assert "ipv4_lpm" in used and "dmac" in used


class TestScriptParsing:
    def test_paper_style_script(self):
        commands = parse_script(ecmp_load_script())
        assert commands[0] == LoadCmd("ecmp.rp4", "ecmp")
        assert AddLinkCmd("ipv6_host", "ecmp") in commands
        assert DelLinkCmd("nexthop", "l2_l3_rewrite") in commands

    def test_link_header_commands(self):
        commands = parse_script(srv6_load_script())
        links = [c for c in commands if isinstance(c, LinkHeaderCmd)]
        assert LinkHeaderCmd("ipv6", "srh", 43) in links
        assert LinkHeaderCmd("srh", "inner_ipv4", 4) in links

    def test_comments_and_blanks(self):
        commands = parse_script(
            "// full line comment\n\nunload --func_name f # trailing\n"
        )
        assert commands == [UnloadCmd("f")]

    def test_hex_tag(self):
        (cmd,) = parse_script("link_header --pre a --next b --tag 0x2B")
        assert cmd.tag == 43

    def test_errors(self):
        with pytest.raises(ScriptError):
            parse_script("load --func_name x")  # missing source
        with pytest.raises(ScriptError):
            parse_script("add_link just_one")
        with pytest.raises(ScriptError):
            parse_script("link_header --pre a --next b")  # no tag
        with pytest.raises(ScriptError):
            parse_script("frobnicate a b")
        with pytest.raises(ScriptError):
            parse_script("load x.rp4 --func_name")  # dangling option

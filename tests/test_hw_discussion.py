"""Unit tests for the Sec. 5 Discussion models."""

import pytest

from repro.hw.discussion import (
    LatencyModel,
    capacity_vs_pipelines,
    ipsa_effective_capacity,
    ipsa_effective_stages,
    ipsa_latency,
    latency_vs_stages,
    pisa_effective_capacity,
    pisa_effective_stages,
    pisa_latency,
    stages_vs_table_size,
)


class TestMultiPipelineCapacity:
    def test_single_pipeline_equal(self):
        assert pisa_effective_capacity(112, 1) == 112
        assert ipsa_effective_capacity(112, 1) == 112

    def test_pisa_divides_by_pipelines(self):
        assert pisa_effective_capacity(112, 4) == 28

    def test_ipsa_pays_only_port_overhead(self):
        assert ipsa_effective_capacity(112, 4) > pisa_effective_capacity(112, 4)
        assert ipsa_effective_capacity(112, 4) < 112  # multi-porting not free

    def test_series_shape(self):
        rows = capacity_vs_pipelines(112, 4)
        assert len(rows) == 4
        # Gap widens with pipeline count.
        gaps = [ipsa - pisa for _, pisa, ipsa in rows]
        assert gaps[0] == 0 and gaps[-1] > gaps[1]

    def test_validation(self):
        with pytest.raises(ValueError):
            pisa_effective_capacity(10, 0)
        with pytest.raises(ValueError):
            ipsa_effective_capacity(10, 0)


class TestStageExpansion:
    def test_small_table_no_cost(self):
        assert pisa_effective_stages(8, 6, 12) == 8
        assert ipsa_effective_stages(8, 6, 96) == 8

    def test_pisa_loses_stages(self):
        # A 48-block table over 12-block stages eats 4 stages (3 extra).
        assert pisa_effective_stages(8, 48, 12) == 5

    def test_ipsa_always_one_tsp(self):
        assert ipsa_effective_stages(8, 48, 96) == 8
        assert ipsa_effective_stages(8, 96, 96) == 8

    def test_ipsa_pool_limit(self):
        assert ipsa_effective_stages(8, 97, 96) == 0

    def test_series_shape(self):
        rows = stages_vs_table_size()
        pisa_series = [p for _, p, _ in rows]
        ipsa_series = [i for _, _, i in rows]
        assert pisa_series == sorted(pisa_series, reverse=True)
        assert all(i == 8 for i in ipsa_series)

    def test_validation(self):
        with pytest.raises(ValueError):
            pisa_effective_stages(8, 4, 0)


class TestLatency:
    def test_pisa_flat_in_effective_stages(self):
        rows = latency_vs_stages()
        assert len({p for _, p, _ in rows}) == 1

    def test_ipsa_grows_with_active(self):
        rows = latency_vs_stages()
        ipsa_series = [i for _, _, i in rows]
        assert ipsa_series == sorted(ipsa_series)

    def test_crossover(self):
        # Short designs: IPSA's path is shorter despite the crossbar tax.
        assert ipsa_latency(3) < pisa_latency(8)
        # Full occupancy: the crossbar + distributed parser tax shows.
        assert ipsa_latency(8) > pisa_latency(8)

    def test_custom_model(self):
        model = LatencyModel(crossbar_cycles=0, tsp_extra_cycles=0)
        assert ipsa_latency(8, model) < pisa_latency(8, model)

"""Property test: PISA and IPSA forward randomized packets identically.

The strongest whole-system invariant: for arbitrary generated packets
(random addresses, protocols, TTLs, payloads), the two architectures
running the same base design must agree on drop/forward, egress port,
and output bytes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.rp4bc import compile_base
from repro.ipsa.switch import IpsaSwitch
from repro.pisa.switch import PisaSwitch
from repro.programs import (
    base_p4_source,
    base_rp4_source,
    populate_base_tables,
)
from repro.workloads import ipv4_packet, ipv6_packet, l2_packet


def _build_pair():
    ipsa = IpsaSwitch()
    ipsa.load_config(compile_base(base_rp4_source()).config)
    populate_base_tables(ipsa.tables)
    pisa = PisaSwitch(n_stages=8)
    pisa.load(base_p4_source())
    populate_base_tables(pisa.tables)
    return pisa, ipsa


_PAIR = _build_pair()  # shared: the design is stateless for these flows


octet = st.integers(min_value=0, max_value=255)


@st.composite
def random_packets(draw):
    kind = draw(st.sampled_from(["v4", "v6", "l2"]))
    if kind == "v4":
        src = f"10.{draw(octet)}.{draw(octet)}.{draw(octet)}"
        dst = (
            f"{draw(st.sampled_from(['10.1', '10.2', '10.9', '192.0']))}."
            f"{draw(octet)}.{draw(octet)}"
        )
        return ipv4_packet(
            src,
            dst,
            sport=draw(st.integers(1, 65535)),
            dport=draw(st.integers(1, 65535)),
            proto=draw(st.sampled_from(["udp", "tcp"])),
            ttl=draw(st.integers(1, 255)),
            payload=draw(st.binary(max_size=32)),
        )
    if kind == "v6":
        suffix = draw(st.integers(1, 0xFFFF))
        net = draw(st.sampled_from(["2001:db8:1", "2001:db8:2", "2001:db8:9"]))
        return ipv6_packet(
            f"2001:db8:1::{draw(st.integers(1, 0xFFFF)):x}",
            f"{net}::{suffix:x}",
            hop_limit=draw(st.integers(1, 255)),
            payload=draw(st.binary(max_size=32)),
        )
    mac = draw(st.integers(0, (1 << 48) - 1))
    from repro.net.addresses import format_mac

    return l2_packet(format_mac(mac))


class TestRandomizedEquivalence:
    @given(
        data=random_packets(),
        port=st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=150, deadline=None)
    def test_same_verdict_and_bytes(self, data, port):
        pisa, ipsa = _PAIR
        pisa_out = pisa.inject(data, port)
        ipsa_out = ipsa.inject(data, port)
        assert (pisa_out is None) == (ipsa_out is None)
        if pisa_out is not None:
            assert pisa_out.port == ipsa_out.port
            assert pisa_out.data == ipsa_out.data
            assert pisa_out.to_cpu == ipsa_out.to_cpu

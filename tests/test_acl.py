"""Tests for the C6 runtime ACL use case (the TCAM path end to end)."""

import pytest

from repro.memory.blocks import MemoryKind
from repro.programs import base_rp4_source, populate_base_tables
from repro.programs.acl import (
    acl_load_script,
    acl_rp4_source,
    populate_acl_tables,
)
from repro.runtime import Controller
from repro.workloads import ipv4_packet, ipv6_packet


@pytest.fixture
def controller():
    ctl = Controller()
    ctl.load_base(base_rp4_source())
    populate_base_tables(ctl.switch.tables)
    ctl.run_script(acl_load_script(), {"acl.rp4": acl_rp4_source()})
    populate_acl_tables(ctl.switch.tables)
    return ctl


class TestAclCompilation:
    def test_tcam_blocks_allocated(self, controller):
        pool = controller.design.pool
        acl_mapping = pool.mapping("acl")
        assert acl_mapping.kind is MemoryKind.TCAM
        tcam_owned = [
            b for b in pool.blocks
            if b.owner == "acl" and b.kind is MemoryKind.TCAM
        ]
        assert len(tcam_owned) == acl_mapping.total_blocks > 0

    def test_layout_kind(self, controller):
        assert controller.design.table_layouts["acl"].kind is MemoryKind.TCAM

    def test_fits_pipeline(self, controller):
        assert controller.design.plan.tsp_count <= 8


class TestAclBehavior:
    def test_denied_host_dropped(self, controller):
        out = controller.switch.inject(
            ipv4_packet("10.1.0.66", "10.2.0.5"), 0
        )
        assert out is None
        assert controller.switch.packets_dropped == 1

    def test_punt_rule_marks_to_cpu(self, controller):
        out = controller.switch.inject(
            ipv4_packet("10.1.0.7", "10.2.0.99", proto="udp"), 0
        )
        assert out is not None and out.to_cpu
        # TCP to the same host does not match the UDP rule.
        out = controller.switch.inject(
            ipv4_packet("10.1.0.7", "10.2.0.99", proto="tcp"), 0
        )
        assert out is not None and not out.to_cpu

    def test_priority_order(self, controller):
        # 10.1.0.66 matches BOTH rules for udp to 10.2.0.99; the deny
        # rule's higher priority must win.
        out = controller.switch.inject(
            ipv4_packet("10.1.0.66", "10.2.0.99", proto="udp"), 0
        )
        assert out is None

    def test_unmatched_traffic_forwards(self, controller):
        out = controller.switch.inject(
            ipv4_packet("10.1.0.9", "10.2.0.5"), 0
        )
        assert out is not None and out.port == 3

    def test_non_ipv4_bypasses_acl(self, controller):
        out = controller.switch.inject(
            ipv6_packet("2001:db8:1::1", "2001:db8:2::9"), 0
        )
        assert out is not None and out.port == 3

    def test_offload_recycles_tcam(self, controller):
        pool_before = controller.design.pool.free_count(MemoryKind.TCAM)
        controller.run_script("unload --func_name acl")
        pool_after = controller.design.pool.free_count(MemoryKind.TCAM)
        assert pool_after > pool_before
        assert "acl" not in controller.switch.tables
        out = controller.switch.inject(
            ipv4_packet("10.1.0.66", "10.2.0.5"), 0
        )
        assert out is not None  # the deny rule is gone

"""Property-based tests for tables and memory-pool invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.blocks import MemoryKind
from repro.memory.packing import Demand, pack_branch_and_bound, pack_greedy
from repro.memory.virtualization import blocks_required
from repro.net.packet import Packet
from repro.tables.engines import LpmEngine, TernaryEngine
from repro.tables.table import KeyField, MatchKind, Table, TableEntry


class TestLpmProperties:
    @given(
        prefixes=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=(1 << 32) - 1),
                st.integers(min_value=0, max_value=32),
            ),
            min_size=1,
            max_size=20,
            unique=True,
        ),
        probe=st.integers(min_value=0, max_value=(1 << 32) - 1),
    )
    @settings(max_examples=100)
    def test_lpm_returns_longest_matching(self, prefixes, probe):
        """The engine's answer must equal a brute-force scan."""
        engine = LpmEngine(0, 32)
        for value, plen in prefixes:
            engine.insert((), value, plen, (value, plen))
        result = engine.lookup((probe,))

        def matches(value, plen):
            if plen == 0:
                return True
            shift = 32 - plen
            return (value >> shift) == (probe >> shift)

        candidates = [(v, p) for v, p in prefixes if matches(v, p)]
        if not candidates:
            assert result is None
        else:
            best_len = max(p for _, p in candidates)
            assert result is not None
            assert result[1] == best_len

    @given(
        value=st.integers(min_value=0, max_value=(1 << 32) - 1),
        plen=st.integers(min_value=0, max_value=32),
    )
    def test_prefix_matches_itself(self, value, plen):
        engine = LpmEngine(0, 32)
        engine.insert((), value, plen, "hit")
        assert engine.lookup((value,)) == "hit"


class TestTernaryProperties:
    @given(
        rows=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=255),
                st.integers(min_value=0, max_value=255),
                st.integers(min_value=0, max_value=100),
            ),
            min_size=1,
            max_size=15,
        ),
        probe=st.integers(min_value=0, max_value=255),
    )
    @settings(max_examples=100)
    def test_highest_priority_match_wins(self, rows, probe):
        engine = TernaryEngine(1)
        for i, (value, mask, prio) in enumerate(rows):
            engine.insert((value,), (mask,), prio, (i, prio))
        result = engine.lookup((probe,))
        matching = [
            (i, prio)
            for i, (value, mask, prio) in enumerate(rows)
            if (probe & mask) == (value & mask)
        ]
        if not matching:
            assert result is None
        else:
            assert result is not None
            assert result[1] == max(p for _, p in matching)


class TestTableProperties:
    @given(
        keys=st.lists(
            st.integers(min_value=0, max_value=(1 << 16) - 1),
            min_size=1,
            max_size=30,
            unique=True,
        )
    )
    def test_exact_insert_then_hit(self, keys):
        table = Table("t", [KeyField("meta.k", MatchKind.EXACT, 16)], size=64)
        for k in keys:
            table.add_entry(TableEntry(key=(k,), action="a", action_data={"v": k}))
        for k in keys:
            packet = Packet(b"")
            packet.metadata["k"] = k
            result = table.lookup(packet)
            assert result.hit and result.action_data["v"] == k

    @given(
        keys=st.lists(
            st.integers(min_value=0, max_value=255),
            min_size=1,
            max_size=20,
            unique=True,
        )
    )
    def test_remove_restores_miss(self, keys):
        table = Table("t", [KeyField("meta.k", MatchKind.EXACT, 16)], size=64)
        entries = []
        for k in keys:
            e = TableEntry(key=(k,), action="a")
            table.add_entry(e)
            entries.append(e)
        for e in entries:
            table.remove_entry(e)
        assert len(table) == 0


class TestVirtualizationProperties:
    @given(
        tw=st.integers(min_value=1, max_value=2048),
        td=st.integers(min_value=1, max_value=100_000),
        bw=st.integers(min_value=1, max_value=512),
        bd=st.integers(min_value=1, max_value=8192),
    )
    def test_blocks_cover_table(self, tw, td, bw, bd):
        n = blocks_required(tw, td, bw, bd)
        assert n * bw * bd >= tw * td
        # Minimality along each axis
        assert (n // -(-td // bd)) * bw >= tw  # width groups cover width


class TestPackingProperties:
    demands_strategy = st.lists(
        st.builds(
            Demand,
            table=st.uuids().map(str),
            kind=st.just(MemoryKind.SRAM),
            count=st.integers(min_value=1, max_value=6),
            allowed_clusters=st.sets(
                st.integers(min_value=0, max_value=3), min_size=1
            ).map(tuple),
        ),
        min_size=1,
        max_size=6,
    )
    free_strategy = st.fixed_dictionaries(
        {
            (c, MemoryKind.SRAM): st.integers(min_value=0, max_value=10)
            for c in range(4)
        }
    )

    @given(demands=demands_strategy, free=free_strategy)
    @settings(max_examples=60, deadline=None)
    def test_solutions_respect_capacity_and_demands(self, demands, free):
        for solver in (pack_greedy, pack_branch_and_bound):
            result = solver(demands, dict(free))
            if not result.feasible:
                continue
            used = {}
            for demand in demands:
                placed = result.assignment[demand.table]
                assert sum(placed.values()) == demand.count
                assert set(placed) <= set(demand.allowed_clusters)
                for cluster, take in placed.items():
                    used[cluster] = used.get(cluster, 0) + take
            for cluster, total in used.items():
                assert total <= free[(cluster, MemoryKind.SRAM)]

    @given(demands=demands_strategy, free=free_strategy)
    @settings(max_examples=60, deadline=None)
    def test_exact_never_worse_than_greedy(self, demands, free):
        greedy = pack_greedy(demands, dict(free))
        exact = pack_branch_and_bound(demands, dict(free))
        if greedy.feasible:
            assert exact.feasible
            assert exact.spread <= greedy.spread

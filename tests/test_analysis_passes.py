"""Behavioral tests for the four rp4lint pass families (beyond the
golden firing fixtures in test_analysis_diag.py): clean programs stay
clean, the documented exemptions hold, and snippet mode limits itself
to header-local rules."""

from types import SimpleNamespace

import pytest

from tests.analysis_fixtures import MINI_CHAIN, MINI_CLEAN
from repro.analysis.linter import is_snippet, lint_design, lint_source
from repro.analysis.memcheck import PRESSURE_THRESHOLD, lint_memory
from repro.analysis.parse_soundness import (
    check_links,
    constructed_headers,
    root_headers,
)
from repro.analysis.update_safety import check_selector, lint_update
from repro.compiler.dependency import stage_effects
from repro.compiler.rp4bc import TargetSpec, compile_base, compile_update
from repro.rp4.parser import parse_rp4


# -- family 1: parse soundness ----------------------------------------------


def test_clean_program_has_no_findings():
    assert lint_source(MINI_CLEAN, path="mini.rp4") == []
    assert lint_source(MINI_CHAIN, path="chain.rp4") == []


def test_root_headers_are_the_unlinked_ones():
    program = parse_rp4(MINI_CLEAN)
    assert root_headers(program) == ["ethernet"]


def test_constructed_header_exempt_from_unreachability():
    """A header only an action writes (paper's INT push) is valid
    without a parse path -- no RP4L101."""
    source = MINI_CLEAN.replace(
        "    header ipv4 {",
        "    header shim {\n        bit<8> kind;\n    }\n    header ipv4 {",
    ).replace(
        "action set_x(bit<16> v) {\n    meta.x = v;\n}",
        "action set_x(bit<16> v) {\n    meta.x = v;\n    shim.kind = 1;\n}",
    )
    program = parse_rp4(source)
    effects = {
        name: stage_effects(stage, program)
        for name, stage in program.all_stages().items()
    }
    assert "shim" in constructed_headers(program, effects)
    assert not [
        d for d in lint_source(source, path="s.rp4") if d.rule == "RP4L101"
    ]


def test_conflicting_tag_same_target_is_fine():
    source = MINI_CLEAN.replace(
        "0x0800: ipv4;", "0x0800: ipv4;\n            0x0800: ipv4;"
    )
    program = parse_rp4(source)
    assert [d.rule for d in check_links(program)] == []


def test_own_parser_list_satisfies_read():
    """The stage that parses ipv4 itself may read ipv4 fields."""
    source = MINI_CLEAN.replace(
        "        parser { ethernet };\n        matcher { t_read.apply(); };",
        "        parser { ethernet, ipv4 };\n        matcher { t_read.apply(); };",
    ).replace("key = { meta.x: exact; }", "key = { ipv4.dst_addr: exact; }")
    assert not [
        d for d in lint_source(source, path="s.rp4") if d.rule == "RP4L104"
    ]


def test_upstream_parse_satisfies_downstream_read():
    """A predecessor's parser list flows to successors (fixpoint)."""
    source = MINI_CLEAN.replace(
        "    stage writer {\n        parser { ethernet };",
        "    stage writer {\n        parser { ethernet, ipv4 };",
    ).replace("key = { meta.x: exact; }", "key = { ipv4.dst_addr: exact; }")
    assert not [
        d for d in lint_source(source, path="s.rp4") if d.rule == "RP4L104"
    ]


# -- snippet mode ------------------------------------------------------------


def test_snippet_mode_is_detected_and_header_local():
    snippet = """\
headers {
    header probe {
        bit<8> kind;
        implicit parser(kind) {
            1: probe;
        }
    }
}
"""
    program = parse_rp4(snippet)
    assert is_snippet(program)
    rules = {d.rule for d in lint_source(snippet, path="s.rp4")}
    # self-cycle caught even standalone; no reachability complaints
    assert "RP4L103" in rules
    assert "RP4L101" not in rules and "RP4L201" not in rules


def test_shipped_snippets_lint_clean_standalone():
    from repro.programs import acl_rp4_source, ecmp_rp4_source

    for source in (acl_rp4_source(), ecmp_rp4_source()):
        diags = lint_source(source, path="snippet.rp4")
        assert [d for d in diags if d.severity.label == "error"] == []


# -- family 3: memory feasibility -------------------------------------------


def test_design_that_fits_has_no_memory_findings():
    design = compile_base(MINI_CLEAN, lint="off")
    diags = lint_memory(
        design.table_layouts, design.target.make_pool(), design.program
    )
    assert diags == []


def test_demand_error_is_reported_per_table():
    design = compile_base(MINI_CLEAN, lint="off")
    layouts = dict(design.table_layouts)
    name = next(iter(layouts))
    good = layouts[name]
    layouts[name] = SimpleNamespace(
        clusters=good.clusters, kind=good.kind, entry_width=good.entry_width,
        depth=0,
    )
    diags = lint_memory(layouts, design.target.make_pool(), design.program)
    bad = [d for d in diags if d.rule == "RP4L301"]
    assert bad and name in bad[0].message


def test_pressure_threshold_is_ninety_percent():
    assert PRESSURE_THRESHOLD == pytest.approx(0.9)


# -- family 4: update safety -------------------------------------------------


def test_selector_in_bounds_is_clean():
    assert check_selector({"tm_input": 3, "tm_output": 7, "active": [0, 1]}, 8) == []
    assert check_selector({}, 8) == []


def test_surviving_writer_unstrands_the_field():
    """If another live stage still writes the field, draining one
    writer is fine (no RP4L402)."""
    source = MINI_CHAIN.replace(
        """\
    stage entry {
        parser { ethernet };
        matcher { t_in.apply(); };
        executor {
            default: NoAction;
        }
    }
""",
        """\
    stage entry {
        parser { ethernet };
        matcher { t_in.apply(); };
        executor {
            1: set_x;
            default: NoAction;
        }
    }
""",
    )
    design = compile_base(source, lint="off")
    plan = compile_update(
        design, "add_link entry reader\ndel_link entry writer\n", {}
    )
    assert "writer" in plan.removed_stages
    assert lint_update(design, plan) == []


def test_unknown_primitive_drain_is_conservatively_stranding(monkeypatch):
    """Golden fixture for the read-write-all fallback: a drained stage
    whose action calls an extern primitive with *no effects summary*
    (a plugin extern the dependency pass has never heard of) gets
    ``STAR`` effect sets, so it is conservatively a writer of every
    metadata field a survivor still reads -- pruning it fires RP4L402
    even though no textual ``meta.x`` write exists anywhere."""
    from repro.analysis.update_safety import check_stranded_fields
    from repro.compiler.dependency import STAR
    from repro.rp4 import semantic
    from repro.tables import primitives
    from tests.analysis_fixtures import UNSAFE_SCRIPT

    # Register the extern with the behavioral model only, the way a
    # plugin primitive would arrive: the semantic checker admits it
    # and the device can execute it, but PRIMITIVE_EFFECTS has no
    # summary for it.
    monkeypatch.setattr(
        semantic, "KNOWN_PRIMITIVES",
        semantic.KNOWN_PRIMITIVES | {"scrub_state"},
    )
    monkeypatch.setitem(primitives.PRIMITIVES, "scrub_state", lambda ctx: None)
    source = MINI_CHAIN.replace("meta.x = v;", "scrub_state();")
    design = compile_base(source, lint="off")
    effects = design.deps.effects["writer"]
    assert STAR in effects.writes  # the fallback actually engaged
    plan = compile_update(design, UNSAFE_SCRIPT, {})
    assert "writer" in plan.removed_stages
    strands = [
        d for d in check_stranded_fields(design, plan)
        if d.rule == "RP4L402"
    ]
    assert strands
    assert "writer" in strands[0].message
    assert "meta.x" in strands[0].message


def test_shipped_ecmp_script_is_safe():
    """The paper's Fig. 5 ECMP upgrade prunes the nexthop stage; the
    FIB stages keep writing meta.nexthop, so nothing strands."""
    from repro.programs import base_rp4_source, ecmp_load_script, ecmp_rp4_source

    design = compile_base(base_rp4_source(), lint="off")
    plan = compile_update(
        design, ecmp_load_script(), {"ecmp.rp4": ecmp_rp4_source()}
    )
    diags = lint_update(design, plan)
    diags.extend(lint_design(plan.design, path="<post-update>"))
    assert [d for d in diags if d.severity.label == "error"] == []


def test_post_update_relint_uses_families_one_to_three():
    design = compile_base(MINI_CLEAN, lint="off")
    diags = lint_design(design, path="mini.rp4")
    assert diags == []


def test_lint_design_honors_suppression_pragmas():
    source = MINI_CLEAN.replace(
        "table t_fwd {",
        "table t_dead { // rp4lint: disable=RP4L202\n"
        "    key = { ethernet.dst_addr: exact; }\n    size = 16;\n}\n"
        "table t_fwd {",
    )
    design = compile_base(source, lint="off")
    assert lint_design(design, source=source, path="s.rp4") == []
    # without the source text the warning is visible
    assert [d.rule for d in lint_design(design, path="s.rp4")] == ["RP4L202"]


def test_target_spec_small_pool_drives_pressure_info():
    diags = lint_source(
        MINI_CLEAN, path="mini.rp4", target=TargetSpec(sram_blocks=96)
    )
    assert diags == []

"""Unit tests for the runtime-modifiable header linkage table."""

import pytest

from repro.net.linkage import (
    ETHERTYPE_IPV4,
    ETHERTYPE_IPV6,
    IPPROTO_IPV6,
    IPPROTO_ROUTING,
    HeaderLink,
    HeaderLinkageTable,
    standard_linkage,
)


class TestStandardLinkage:
    def test_core_edges(self):
        t = standard_linkage()
        assert t.next_header("ethernet", ETHERTYPE_IPV4) == "ipv4"
        assert t.next_header("ethernet", ETHERTYPE_IPV6) == "ipv6"
        assert t.next_header("ipv4", 6) == "tcp"
        assert t.next_header("ipv6", 17) == "udp"

    def test_no_srh_by_default(self):
        # SRH is linked at runtime by the SRv6 use case, not at base load.
        t = standard_linkage()
        assert t.next_header("ipv6", IPPROTO_ROUTING) is None

    def test_extra_links_parameter(self):
        t = standard_linkage([HeaderLink("ipv6", IPPROTO_ROUTING, "srh")])
        assert t.next_header("ipv6", IPPROTO_ROUTING) == "srh"

    def test_selectors(self):
        t = standard_linkage()
        assert t.selector("ethernet") == "ethertype"
        assert t.selector("srh") == "next_hdr"
        assert t.selector("tcp") is None


class TestRuntimeMutation:
    """The paper's link_header command semantics (Fig. 5(c))."""

    def test_srv6_loading_script(self):
        t = standard_linkage()
        t.add_link("ipv6", "srh", IPPROTO_ROUTING)
        t.add_link("srh", "ipv6", IPPROTO_IPV6)
        t.add_link("srh", "ipv4", 4)
        assert t.next_header("ipv6", IPPROTO_ROUTING) == "srh"
        assert t.next_header("srh", IPPROTO_IPV6) == "ipv6"
        assert t.next_header("srh", 4) == "ipv4"
        # "the linkage between routable and ipvx is reserved"
        assert t.next_header("ipv6", 6) == "tcp"

    def test_add_link_requires_selector(self):
        t = HeaderLinkageTable()
        with pytest.raises(KeyError):
            t.add_link("mystery", "ipv4", 1)

    def test_del_link(self):
        t = standard_linkage()
        t.del_link("ipv4", 6)
        assert t.next_header("ipv4", 6) is None

    def test_del_missing_link_raises(self):
        t = standard_linkage()
        with pytest.raises(KeyError):
            t.del_link("ipv4", 99)

    def test_replace_link(self):
        t = standard_linkage()
        t.add_link("ipv4", "udp", 6)  # re-point tag 6
        assert t.next_header("ipv4", 6) == "udp"


class TestQueries:
    def test_links_sorted(self):
        t = standard_linkage()
        links = t.links()
        assert links == sorted(links, key=lambda l: (l.pre, l.tag))
        assert len(t) == len(links)

    def test_links_from(self):
        t = standard_linkage()
        eth = t.links_from("ethernet")
        assert {l.next for l in eth} == {"ipv4", "ipv6", "vlan"}

    def test_reachable(self):
        t = standard_linkage()
        reach = t.reachable("ethernet")
        assert set(reach) >= {"ethernet", "vlan", "ipv4", "ipv6", "tcp", "udp"}
        assert "srh" not in reach

    def test_clone_independent(self):
        t = standard_linkage()
        c = t.clone()
        c.add_link("ipv6", "srh", IPPROTO_ROUTING)
        assert t.next_header("ipv6", IPPROTO_ROUTING) is None
        assert c.next_header("ipv6", IPPROTO_ROUTING) == "srh"

    def test_merge(self):
        t = standard_linkage()
        extra = HeaderLinkageTable()
        extra.set_selector("srh", "next_hdr")
        extra.add_link("srh", "ipv6", IPPROTO_IPV6)
        t.merge(extra)
        assert t.next_header("srh", IPPROTO_IPV6) == "ipv6"

"""Tests for the C5 multi-hop INT use case and its primitives."""

import pytest

from repro.net.headers import (
    INT_ETHERTYPE,
    INT_HOP_BYTES,
    INT_SHIM,
    int_hop_records,
    int_pack_hop,
    int_unpack_hop,
    standard_header_types,
)
from repro.net.linkage import standard_linkage
from repro.net.packet import Packet
from repro.obs.clock import ManualClock
from repro.programs import base_rp4_source, populate_base_tables
from repro.programs.int_telemetry import (
    int_load_script,
    int_rp4_source,
    int_strip_load_script,
    int_strip_rp4_source,
    populate_int_sink_tables,
    populate_int_tables,
)
from repro.runtime import Controller
from repro.workloads import ipv4_packet


@pytest.fixture
def controller():
    ctl = Controller()
    ctl.load_base(base_rp4_source())
    populate_base_tables(ctl.switch.tables)
    ctl.run_script(int_load_script(), {"int.rp4": int_rp4_source()})
    populate_int_tables(ctl.switch.tables, switch_id=7)
    ctl.switch.enable_int(ManualClock(start=1.0, tick=1e-6))
    return ctl


def parse_out(data):
    """Parse an instrumented packet on the collector side."""
    types = dict(standard_header_types())
    types["int_shim"] = INT_SHIM
    linkage = standard_linkage()
    linkage.set_selector("int_shim", "orig_ethertype")
    linkage.add_link("ethernet", "int_shim", INT_ETHERTYPE)
    linkage.add_link("int_shim", "ipv4", 0x0800)
    packet = Packet(data)
    packet.parse_all(types, linkage)
    return packet


class TestHopRecordCodec:
    def test_roundtrip(self):
        record = {
            "switch_id": 42,
            "ingress_ts": 1_000_000,
            "egress_ts": 1_000_500,
            "queue_depth": 3,
            "dp_epoch": 9,
        }
        packed = int_pack_hop(record)
        assert len(packed) == INT_HOP_BYTES
        assert int_unpack_hop(packed) == record

    def test_timestamps_masked_to_48_bits(self):
        record = int_unpack_hop(int_pack_hop({"ingress_ts": 1 << 60}))
        assert record["ingress_ts"] == 0


class TestIntInsertion:
    def test_loads_without_extra_tsp(self, controller):
        assert controller.design.plan.tsp_count == 7
        assert "int_watch" in controller.switch.tables

    def test_watched_flow_gets_hop_record(self, controller):
        out = controller.switch.inject(
            ipv4_packet("10.1.0.1", "10.2.0.1", sport=1), 0
        )
        assert out is not None
        parsed = parse_out(out.data)
        assert parsed.header_names()[:3] == ["ethernet", "int_shim", "ipv4"]
        assert parsed.read("ethernet.ethertype") == INT_ETHERTYPE
        assert parsed.read("int_shim.orig_ethertype") == 0x0800
        assert parsed.read("int_shim.hop_count") == 1
        hops = int_hop_records(parsed.header("int_shim"))
        assert len(hops) == 1
        assert hops[0]["switch_id"] == 7
        assert hops[0]["ingress_ts"] <= hops[0]["egress_ts"]
        assert hops[0]["egress_ts"] > 0

    def test_reinjection_appends_second_hop(self, controller):
        # A transit switch re-parses the varbit stack a previous switch
        # started and appends its own record instead of a second shim.
        from repro.net.addresses import parse_mac
        from repro.programs.base_l2l3 import ROUTER_MAC

        first = controller.switch.inject(
            ipv4_packet("10.1.0.1", "10.2.0.1", sport=2), 0
        )
        # Re-address the instrumented output at the router (what the
        # next hop's wire would carry) and run it through again.
        router = parse_mac(ROUTER_MAC).to_bytes(6, "big")
        second = controller.switch.inject(router + first.data[6:], 0)
        assert second is not None
        parsed = parse_out(second.data)
        assert parsed.read("int_shim.hop_count") == 2
        hops = int_hop_records(parsed.header("int_shim"))
        assert [hop["switch_id"] for hop in hops] == [7, 7]
        # Shared clock: the second traversal's stamps come later.
        assert hops[0]["egress_ts"] <= hops[1]["ingress_ts"]

    def test_routing_still_correct(self, controller):
        out = controller.switch.inject(
            ipv4_packet("10.1.0.1", "10.2.0.1", sport=3), 0
        )
        assert out is not None and out.port == 3
        # Inner IPv4 untouched except TTL.
        parsed = parse_out(out.data)
        assert parsed.read("ipv4.ttl") == 63

    def test_unwatched_flows_untouched(self, controller):
        out = controller.switch.inject(ipv4_packet("10.1.0.1", "10.2.5.5"), 0)
        assert out is not None
        assert out.data[12:14] == b"\x08\x00"  # plain IPv4 ethertype

    def test_offload_restores(self, controller):
        controller.run_script("unload --func_name int_insert")
        assert "int_watch" not in controller.switch.tables
        out = controller.switch.inject(ipv4_packet("10.1.0.1", "10.2.0.1"), 0)
        assert out is not None and out.data[12:14] == b"\x08\x00"


class TestIntStrip:
    def test_strip_stage_restores_and_reports(self, controller):
        from repro.obs.intcol import IntCollector

        controller.run_script(
            int_strip_load_script(),
            {"int_strip.rp4": int_strip_rp4_source()},
        )
        populate_int_sink_tables(controller.switch.tables)
        collector = IntCollector()
        controller.switch.attach_int_collector(collector, node="sink")

        out = controller.switch.inject(
            ipv4_packet("10.1.0.1", "10.2.0.1", sport=4), 0
        )
        assert out is not None
        # Wire output is back to plain IPv4: insert then strip on the
        # same device cancels on the wire ...
        assert out.data[12:14] == b"\x08\x00"
        restored = Packet(out.data)
        restored.parse_all(standard_header_types(), standard_linkage())
        assert restored.header_names()[:2] == ["ethernet", "ipv4"]
        # ... but the hop record reached the collector device-side.
        assert len(collector.records) == 1
        record = collector.records[0]
        assert record["node"] == "sink"
        assert record["path"] == [7]
        assert record["flow"] == "10.1.0.1->10.2.0.1"


class TestPrimitives:
    def test_push_requires_device_types(self):
        from repro.tables.actions import ActionContext
        from repro.tables.primitives import prim_push_int

        packet = Packet(b"\x00" * 64)
        with pytest.raises(RuntimeError):
            prim_push_int(ActionContext(packet))

    def test_pop_restores_ethertype(self, controller):
        out = controller.switch.inject(
            ipv4_packet("10.1.0.1", "10.2.0.1", sport=5), 0
        )
        parsed = parse_out(out.data)
        from repro.tables.actions import ActionContext
        from repro.tables.primitives import prim_pop_int

        prim_pop_int(ActionContext(parsed))
        assert parsed.read("ethernet.ethertype") == 0x0800
        assert not parsed.is_valid("int_shim")
        # The restored wire bytes parse as a plain IPv4 packet.
        restored = Packet(parsed.emit())
        restored.parse_all(standard_header_types(), standard_linkage())
        assert restored.header_names()[:2] == ["ethernet", "ipv4"]

    def test_pop_without_shim_is_a_no_op(self):
        from repro.tables.actions import ActionContext
        from repro.tables.primitives import prim_pop_int

        packet = Packet(ipv4_packet("10.1.0.1", "10.2.0.1"))
        packet.parse_all(standard_header_types(), standard_linkage())
        before = packet.emit()
        prim_pop_int(ActionContext(packet))
        assert packet.emit() == before

"""Tests for the C5 INT insertion use case and its primitives."""

import pytest

from repro.net.headers import standard_header_types, FieldDef, HeaderType
from repro.net.linkage import standard_linkage
from repro.net.packet import Packet
from repro.programs import base_rp4_source, populate_base_tables
from repro.programs.int_telemetry import (
    int_load_script,
    int_rp4_source,
    populate_int_tables,
)
from repro.runtime import Controller
from repro.tables.primitives import INT_ETHERTYPE
from repro.workloads import ipv4_packet

INT_SHIM = HeaderType(
    "int_shim",
    [
        FieldDef("orig_ethertype", 16),
        FieldDef("switch_id", 16),
        FieldDef("hop_latency", 32),
    ],
)


@pytest.fixture
def controller():
    ctl = Controller()
    ctl.load_base(base_rp4_source())
    populate_base_tables(ctl.switch.tables)
    ctl.run_script(int_load_script(), {"int.rp4": int_rp4_source()})
    populate_int_tables(ctl.switch.tables, hop_latency=350)
    return ctl


def parse_out(data):
    """Parse an instrumented packet on the collector side."""
    types = dict(standard_header_types())
    types["int_shim"] = INT_SHIM
    linkage = standard_linkage()
    linkage.set_selector("int_shim", "orig_ethertype")
    linkage.add_link("ethernet", "int_shim", INT_ETHERTYPE)
    linkage.add_link("int_shim", "ipv4", 0x0800)
    packet = Packet(data)
    packet.parse_all(types, linkage)
    return packet


class TestIntInsertion:
    def test_loads_without_extra_tsp(self, controller):
        assert controller.design.plan.tsp_count == 7
        assert "int_watch" in controller.switch.tables

    def test_watched_flow_instrumented(self, controller):
        out = controller.switch.inject(
            ipv4_packet("10.1.0.1", "10.2.0.1", sport=1), 0
        )
        assert out is not None
        parsed = parse_out(out.data)
        assert parsed.header_names()[:3] == ["ethernet", "int_shim", "ipv4"]
        assert parsed.read("ethernet.ethertype") == INT_ETHERTYPE
        assert parsed.read("int_shim.switch_id") == 7
        assert parsed.read("int_shim.hop_latency") == 350
        assert parsed.read("int_shim.orig_ethertype") == 0x0800

    def test_routing_still_correct(self, controller):
        out = controller.switch.inject(
            ipv4_packet("10.1.0.1", "10.2.0.1", sport=2), 0
        )
        assert out is not None and out.port == 3
        # Inner IPv4 untouched except TTL.
        parsed = parse_out(out.data)
        assert parsed.read("ipv4.ttl") == 63

    def test_unwatched_flows_untouched(self, controller):
        out = controller.switch.inject(
            ipv4_packet("10.1.0.1", "10.2.5.5"), 0
        )
        assert out is not None
        assert out.data[12:14] == b"\x08\x00"  # plain IPv4 ethertype

    def test_offload_restores(self, controller):
        controller.run_script("unload --func_name int_insert")
        assert "int_watch" not in controller.switch.tables
        out = controller.switch.inject(
            ipv4_packet("10.1.0.1", "10.2.0.1"), 0
        )
        assert out is not None and out.data[12:14] == b"\x08\x00"


class TestPrimitives:
    def test_push_requires_device_types(self):
        from repro.tables.actions import ActionContext
        from repro.tables.primitives import prim_push_int

        packet = Packet(b"\x00" * 64)
        with pytest.raises(RuntimeError):
            prim_push_int(ActionContext(packet))

    def test_pop_restores_ethertype(self, controller):
        out = controller.switch.inject(
            ipv4_packet("10.1.0.1", "10.2.0.1", sport=3), 0
        )
        parsed = parse_out(out.data)
        from repro.tables.actions import ActionContext
        from repro.tables.primitives import prim_pop_int

        prim_pop_int(ActionContext(parsed))
        assert parsed.read("ethernet.ethertype") == 0x0800
        assert not parsed.is_valid("int_shim")
        # The restored wire bytes parse as a plain IPv4 packet.
        restored = Packet(parsed.emit())
        restored.parse_all(standard_header_types(), standard_linkage())
        assert restored.header_names()[:2] == ["ethernet", "ipv4"]

    def test_double_push_is_idempotent(self, controller):
        # Two instrumenting switches in a row: the second must not
        # stack another shim.
        out = controller.switch.inject(
            ipv4_packet("10.1.0.1", "10.2.0.1", sport=4), 0
        )
        again = controller.switch.inject(out.data, 0)
        # The flow key no longer matches (ethertype changed -> packet
        # parses as int_shim first on the reinjection), so at most one
        # shim is present.
        if again is not None:
            assert again.data.count((350).to_bytes(4, "big")) <= 1

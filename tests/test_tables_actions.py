"""Unit tests for the action VM."""

import pytest

from repro.net.headers import IPV4, HeaderInstance
from repro.net.packet import Packet
from repro.tables.actions import (
    ActionContext,
    ActionDef,
    BinOp,
    Const,
    CountAndMark,
    FieldRef,
    HashExpr,
    Param,
    PyPrimitive,
    RemoveHeaderOp,
    SetField,
    drop_action,
    evaluate,
    flow_hash,
    mark_to_cpu_action,
)
from repro.tables.table import TableEntry


def packet_with_ipv4(**fields):
    p = Packet(b"\x00" * 64)
    inst = HeaderInstance(IPV4)
    for k, v in fields.items():
        inst.set(k, v)
    p.insert_header(inst)
    return p


class TestExpressions:
    def test_const(self):
        assert evaluate(Const(7), Packet(b""), {}) == 7

    def test_param(self):
        assert evaluate(Param("bd"), Packet(b""), {"bd": 3}) == 3

    def test_unbound_param_raises(self):
        with pytest.raises(KeyError):
            evaluate(Param("bd"), Packet(b""), {})

    def test_field_ref(self):
        p = packet_with_ipv4(ttl=64)
        assert evaluate(FieldRef("ipv4.ttl"), p, {}) == 64

    def test_binop_arith(self):
        p = packet_with_ipv4(ttl=64)
        expr = BinOp("-", FieldRef("ipv4.ttl"), Const(1))
        assert evaluate(expr, p, {}) == 63

    def test_binop_bitwise(self):
        assert evaluate(BinOp("&", Const(0xFF), Const(0x0F)), Packet(b""), {}) == 0x0F
        assert evaluate(BinOp("<<", Const(1), Const(4)), Packet(b""), {}) == 16

    def test_bad_operator(self):
        with pytest.raises(ValueError):
            evaluate(BinOp("%", Const(1), Const(2)), Packet(b""), {})

    def test_hash_expr_deterministic(self):
        p = packet_with_ipv4(src_addr=1, dst_addr=2)
        expr = HashExpr(("ipv4.src_addr", "ipv4.dst_addr"), width=16)
        a = evaluate(expr, p, {})
        assert a == evaluate(expr, p, {})
        assert 0 <= a < 1 << 16

    def test_hash_expr_varies_with_input(self):
        values = {
            evaluate(HashExpr(("ipv4.dst_addr",)), packet_with_ipv4(dst_addr=i), {})
            for i in range(32)
        }
        assert len(values) > 16  # no degenerate collisions

    def test_flow_hash_zero_value(self):
        assert isinstance(flow_hash([0]), int)


class TestOps:
    def test_set_field_header(self):
        p = packet_with_ipv4(ttl=64)
        SetField("ipv4.ttl", Const(5)).execute(ActionContext(p))
        assert p.read("ipv4.ttl") == 5

    def test_set_field_meta(self):
        p = Packet(b"")
        SetField("meta.bd", Const(9)).execute(ActionContext(p))
        assert p.read("meta.bd") == 9

    def test_remove_header(self):
        p = packet_with_ipv4()
        RemoveHeaderOp("ipv4").execute(ActionContext(p))
        assert not p.is_valid("ipv4")

    def test_count_and_mark(self):
        p = Packet(b"")
        p.metadata["flow_marked"] = 0
        entry = TableEntry(key=(1,), action="probe")
        op = CountAndMark("threshold", "meta.flow_marked")
        ctx = ActionContext(p, params={"threshold": 2}, entry=entry)
        op.execute(ctx)
        op.execute(ctx)
        assert p.read("meta.flow_marked") == 0
        op.execute(ctx)
        assert p.read("meta.flow_marked") == 1
        assert entry.counter == 3

    def test_count_and_mark_needs_entry(self):
        op = CountAndMark("threshold", "meta.flow_marked")
        with pytest.raises(RuntimeError):
            op.execute(ActionContext(Packet(b""), params={"threshold": 1}))

    def test_py_primitive(self):
        seen = []
        op = PyPrimitive("probe", lambda ctx: seen.append(ctx.packet))
        p = Packet(b"")
        op.execute(ActionContext(p))
        assert seen == [p]


class TestActionDef:
    def test_set_bd_dmac_from_paper(self):
        # Fig. 5(a): action set_bd_dmac(bit<16> bd, bit<48> dmac)
        act = ActionDef(
            "set_bd_dmac",
            params=[("bd", 16), ("dmac", 48)],
            ops=[
                SetField("meta.bd", Param("bd")),
                SetField("ethernet.dst_addr", Param("dmac")),
            ],
        )
        p = Packet(b"")
        from repro.net.headers import ETHERNET

        p.insert_header(HeaderInstance(ETHERNET))
        act.execute(p, {"bd": 7, "dmac": 0xAABBCCDDEEFF})
        assert p.read("meta.bd") == 7
        assert p.read("ethernet.dst_addr") == 0xAABBCCDDEEFF

    def test_param_width_truncation(self):
        act = ActionDef("a", params=[("x", 8)], ops=[SetField("meta.x", Param("x"))])
        p = Packet(b"")
        act.execute(p, {"x": 0x1FF})
        assert p.read("meta.x") == 0xFF

    def test_missing_param_raises(self):
        act = ActionDef("a", params=[("x", 8)])
        with pytest.raises(KeyError):
            act.execute(Packet(b""), {})

    def test_drop_action(self):
        p = Packet(b"")
        drop_action().execute(p, {})
        assert p.metadata["drop"] == 1

    def test_mark_to_cpu(self):
        p = Packet(b"")
        mark_to_cpu_action().execute(p, {})
        assert p.metadata["to_cpu"] == 1

    def test_param_names(self):
        act = ActionDef("a", params=[("x", 8), ("y", 4)])
        assert act.param_names() == ["x", "y"]

"""Tests for the device-config validator."""

import pytest

from repro.compiler.rp4bc import compile_base
from repro.compiler.validate import ConfigError, check_config, validate_config
from repro.programs import base_rp4_source


@pytest.fixture(scope="module")
def good():
    return compile_base(base_rp4_source()).config


class TestValidConfig:
    def test_compiled_config_is_clean(self, good):
        assert validate_config(good) == []
        check_config(good)  # must not raise

    def test_non_dict(self):
        assert validate_config([]) == ["config must be a JSON object"]


class TestHeaderChecks:
    def test_fieldless_header(self, good):
        bad = dict(good, headers={"x": {"fields": []}})
        assert any("no fields" in e for e in validate_config(bad))

    def test_bad_selector(self, good):
        bad = dict(
            good,
            headers={"x": {"fields": [["a", 8]], "selector": "ghost", "links": []}},
        )
        assert any("selector" in e for e in validate_config(bad))

    def test_bad_field_width(self, good):
        bad = dict(good, headers={"x": {"fields": [["a", 0]]}})
        assert any("malformed field" in e for e in validate_config(bad))

    def test_malformed_link(self, good):
        bad = dict(
            good,
            headers={"x": {"fields": [["a", 8]], "links": [["tag", "y", 3]]}},
        )
        assert any("malformed link" in e for e in validate_config(bad))


class TestTableChecks:
    def test_keyless_table(self, good):
        bad = dict(good)
        bad["tables"] = dict(good["tables"], broken={"keys": [], "size": 8})
        assert any("no keys" in e for e in validate_config(bad))

    def test_unknown_match_kind(self, good):
        bad = dict(good)
        bad["tables"] = dict(
            good["tables"],
            broken={"keys": [["meta.x", "fuzzy", 8]], "size": 8},
        )
        assert any("fuzzy" in e for e in validate_config(bad))

    def test_bad_size(self, good):
        bad = dict(good)
        bad["tables"] = dict(
            good["tables"],
            broken={"keys": [["meta.x", "exact", 8]], "size": 0},
        )
        assert any("bad size" in e for e in validate_config(bad))


class TestTemplateChecks:
    def test_out_of_range_tsp(self, good):
        bad = dict(good)
        bad["templates"] = good["templates"] + [
            {"tsp": 99, "side": "ingress", "stages": []}
        ]
        assert any("invalid TSP" in e for e in validate_config(bad))

    def test_duplicate_slot(self, good):
        bad = dict(good)
        bad["templates"] = good["templates"] + [good["templates"][0]]
        assert any("two templates" in e for e in validate_config(bad))

    def test_undeclared_table_reference(self, good):
        bad = dict(good)
        template = {
            "tsp": 6,
            "side": "ingress",
            "stages": [
                {
                    "name": "s",
                    "parser": [],
                    "matcher": [{"cond": None, "table": "ghost"}],
                    "executor": {"default": "NoAction"},
                }
            ],
        }
        bad["templates"] = good["templates"] + [template]
        assert any("ghost" in e for e in validate_config(bad))

    def test_undeclared_action_reference(self, good):
        bad = dict(good)
        template = {
            "tsp": 6,
            "side": "ingress",
            "stages": [
                {
                    "name": "s",
                    "parser": [],
                    "matcher": [],
                    "executor": {"1": "ghost_action"},
                }
            ],
        }
        bad["templates"] = good["templates"] + [template]
        assert any("ghost_action" in e for e in validate_config(bad))


class TestSelectorChecks:
    def test_inverted_boundary(self, good):
        bad = dict(good, selector={"tm_input": 7, "tm_output": 2, "active": []})
        assert any("precede" in e for e in validate_config(bad))

    def test_overlap(self, good):
        bad = dict(
            good, selector={"tm_input": 1, "tm_output": 2,
                            "active": [1], "bypassed": [1]}
        )
        assert any("both active and bypassed" in e for e in validate_config(bad))

    def test_errors_collected(self, good):
        bad = dict(
            good,
            headers={"x": {"fields": []}},
            selector={"tm_input": 7, "tm_output": 2, "active": []},
        )
        with pytest.raises(ConfigError) as exc:
            check_config(bad)
        assert len(exc.value.errors) >= 2

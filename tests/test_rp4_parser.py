"""Unit tests for the rP4 parser (Fig. 2 EBNF) and printer."""

import pytest

from repro.lang.errors import LangError
from repro.lang.expr import EValid, SAssign, SCall
from repro.rp4 import parse_rp4, print_rp4
from repro.programs import base_rp4_source, ecmp_rp4_source


FIG5A = """
table ecmp_ipv4 {
    key = {
        meta.nexthop: hash;
        ipv4.dst_addr: hash; // similar with P4's selector
    }
    size = 4096;
}
stage ecmp { /* parser-matcher-executor */
    parser { ipv4, ipv6 };
    matcher {
        if (ipv4.isValid()) ecmp_ipv4.apply();
        else;
    };
    executor {
        1: set_bd_dmac;
        default: NoAction;
    }
}
action set_bd_dmac(bit<16> bd, bit<48> dmac) {
    meta.bd = bd;
    ethernet.dst_addr = dmac;
}
"""


class TestPaperSnippet:
    """The Fig. 5(a) code must parse as published."""

    def test_table(self):
        prog = parse_rp4(FIG5A)
        table = prog.tables["ecmp_ipv4"]
        assert table.keys == [("meta.nexthop", "hash"), ("ipv4.dst_addr", "hash")]
        assert table.size == 4096

    def test_stage_triad(self):
        stage = parse_rp4(FIG5A).ingress_stages["ecmp"]
        assert stage.parser == ["ipv4", "ipv6"]
        assert stage.matcher[0].cond == EValid("ipv4")
        assert stage.matcher[0].table == "ecmp_ipv4"
        assert stage.matcher[1].cond is None and stage.matcher[1].table is None
        assert stage.executor == {1: "set_bd_dmac", "default": "NoAction"}

    def test_action(self):
        action = parse_rp4(FIG5A).actions["set_bd_dmac"]
        assert action.params == [("bd", 16), ("dmac", 48)]
        assert isinstance(action.body[0], SAssign)
        assert action.body[0].dest == "meta.bd"


class TestHeadersAndStructs:
    def test_implicit_parser(self):
        prog = parse_rp4(base_rp4_source())
        eth = prog.headers["ethernet"]
        assert eth.selector == "ethertype"
        assert (0x0800, "ipv4") in eth.links
        assert (0x86DD, "ipv6") in eth.links

    def test_struct_alias(self):
        prog = parse_rp4(base_rp4_source())
        meta = prog.structs["metadata"]
        assert meta.alias == "meta"
        assert ("bd", 16) in meta.members

    def test_selector_must_be_a_field(self):
        with pytest.raises(LangError):
            parse_rp4(
                "header h { bit<8> x; implicit parser(nope) { 1: y; } }"
            )

    def test_duplicate_header_rejected(self):
        with pytest.raises(LangError):
            parse_rp4("header h { bit<8> x; } header h { bit<8> y; }")

    def test_ref_width(self):
        prog = parse_rp4(base_rp4_source())
        assert prog.ref_width("ipv6.dst_addr") == 128
        assert prog.ref_width("meta.bd") == 16
        assert prog.ref_width("meta.ingress_port") == 16  # intrinsic default


class TestPipesAndFuncs:
    def test_base_design_shape(self):
        prog = parse_rp4(base_rp4_source())
        assert len(prog.ingress_stages) == 8
        assert len(prog.egress_stages) == 2
        assert prog.ingress_entry == "port_map"
        assert prog.egress_entry == "l2_l3_rewrite"
        assert set(prog.user_funcs) == {"l2l3_fwd", "rewrite"}

    def test_duplicate_stage_rejected(self):
        src = """
        control rP4_Ingress {
            stage s { parser { }; matcher { }; executor { } }
            stage s { parser { }; matcher { }; executor { } }
        }
        """
        with pytest.raises(LangError):
            parse_rp4(src)

    def test_bare_stage_defaults_to_ingress(self):
        prog = parse_rp4(ecmp_rp4_source())
        assert "ecmp" in prog.ingress_stages

    def test_executor_duplicate_tag_rejected(self):
        src = """
        stage s { parser { }; matcher { }; executor { 1: a; 1: b; } }
        """
        with pytest.raises(LangError):
            parse_rp4(src)

    def test_action_call_statement(self):
        prog = parse_rp4("action a() { drop(); }")
        assert prog.actions["a"].body == [SCall("drop", ())]

    def test_table_without_key_rejected(self):
        with pytest.raises(LangError):
            parse_rp4("table t { size = 8; }")

    def test_unknown_match_kind_rejected(self):
        with pytest.raises(LangError):
            parse_rp4("table t { key = { meta.x: fuzzy; } }")


class TestRoundTrip:
    """print -> parse must preserve the program structure."""

    @pytest.mark.parametrize(
        "source_fn", [base_rp4_source, ecmp_rp4_source]
    )
    def test_roundtrip(self, source_fn):
        prog = parse_rp4(source_fn())
        text = print_rp4(prog)
        again = parse_rp4(text)
        assert set(again.tables) == set(prog.tables)
        assert set(again.actions) == set(prog.actions)
        assert set(again.all_stages()) == set(prog.all_stages())
        assert again.ingress_entry == prog.ingress_entry
        for name, stage in prog.all_stages().items():
            twin = again.all_stages()[name]
            assert twin.parser == stage.parser
            assert twin.executor == stage.executor
            assert len(twin.matcher) == len(stage.matcher)

    def test_headers_roundtrip(self):
        prog = parse_rp4(base_rp4_source())
        again = parse_rp4(print_rp4(prog))
        for name, header in prog.headers.items():
            assert again.headers[name].fields == header.fields
            assert again.headers[name].links == header.links

"""Property-based tests: compiler invariants over randomized designs.

For arbitrary generated pipelines, rp4bc must (a) place every stage in
exactly one TSP, (b) never violate a data dependency with its merging
and reordering, (c) produce templates that cover exactly the layout,
and (d) allocate exactly the blocks the virtualization rule demands.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.merge import group_key
from repro.compiler.rp4bc import TargetSpec, compile_base
from repro.lang.expr import ERef, EValid
from repro.memory.virtualization import blocks_required
from repro.rp4.ast import (
    HeaderDecl,
    MatcherArm,
    Rp4Action,
    Rp4Program,
    Rp4Table,
    StageDecl,
    StructDecl,
    UserFunc,
)
from repro.lang.expr import SAssign


@st.composite
def pipelines(draw):
    """A random but valid rP4 program: chained ingress stages with
    random guards and random read-dependencies on earlier stages."""
    n_stages = draw(st.integers(min_value=1, max_value=8))
    program = Rp4Program()
    program.headers["ethernet"] = HeaderDecl(
        "ethernet",
        fields=[("dst_addr", 48), ("src_addr", 48), ("ethertype", 16)],
        selector="ethertype",
        links=[(0x0800, "ipv4"), (0x86DD, "ipv6")],
    )
    program.headers["ipv4"] = HeaderDecl(
        "ipv4", fields=[("protocol", 8), ("src_addr", 32), ("dst_addr", 32)]
    )
    program.headers["ipv6"] = HeaderDecl(
        "ipv6", fields=[("next_hdr", 8), ("dst_addr", 128)]
    )
    members = [(f"f{i}", 16) for i in range(n_stages + 1)]
    program.structs["metadata"] = StructDecl("metadata", members, alias="meta")

    for i in range(n_stages):
        # Key on a random earlier field (creates a RAW dependency) or
        # on a header field (independent).
        depends_on = draw(
            st.one_of(st.none(), st.integers(min_value=0, max_value=i))
        )
        if depends_on is None:
            key_ref = draw(
                st.sampled_from(["ipv4.dst_addr", "ipv6.dst_addr",
                                 "ethernet.dst_addr"])
            )
        else:
            key_ref = f"meta.f{depends_on}"
        guard = draw(st.sampled_from([None, "ipv4", "ipv6"]))

        program.tables[f"t{i}"] = Rp4Table(
            name=f"t{i}",
            keys=[(key_ref, "exact")],
            size=draw(st.sampled_from([128, 1024, 4096])),
        )
        program.actions[f"a{i}"] = Rp4Action(
            name=f"a{i}",
            params=[("v", 16)],
            body=[SAssign(f"meta.f{i + 1}", ERef("v"))],
        )
        cond = None
        if guard is not None:
            cond = EValid(guard)
        arms = [MatcherArm(cond, f"t{i}")]
        if cond is not None:
            arms.append(MatcherArm(None, None))
        program.ingress_stages[f"s{i}"] = StageDecl(
            name=f"s{i}",
            parser=[guard] if guard else ["ethernet"],
            matcher=arms,
            executor={1: f"a{i}", "default": "NoAction"},
        )

    program.egress_stages["out"] = StageDecl(
        name="out",
        parser=["ethernet"],
        matcher=[MatcherArm(None, None)],
        executor={"default": "NoAction"},
    )
    program.user_funcs["main"] = UserFunc(
        "main", [f"s{i}" for i in range(n_stages)]
    )
    program.user_funcs["output"] = UserFunc("output", ["out"])
    program.ingress_entry = "s0"
    program.egress_entry = "out"
    return program


def _target(program):
    n = len(program.all_stages())
    return TargetSpec(n_tsps=n + 2, sram_blocks=16 * n + 16, tcam_blocks=4)


class TestCompileInvariants:
    @given(program=pipelines())
    @settings(max_examples=40, deadline=None)
    def test_every_stage_placed_once(self, program):
        design = compile_base(program, _target(program))
        placed = [
            name for _, group in design.plan.all_groups() for name in group
        ]
        assert sorted(placed) == sorted(program.all_stages())
        assert len(placed) == len(set(placed))

    @given(program=pipelines())
    @settings(max_examples=40, deadline=None)
    def test_dependencies_respected(self, program):
        design = compile_base(program, _target(program))
        order = [
            name for _, group in design.plan.all_groups() for name in group
        ]
        position = {name: i for i, name in enumerate(order)}
        names = list(program.all_stages())
        original = {name: i for i, name in enumerate(names)}
        for a in names:
            for b in names:
                if original[a] < original[b] and design.deps.depends(a, b):
                    if not design.deps.mutually_exclusive(a, b):
                        assert position[a] < position[b], (a, b)

    @given(program=pipelines())
    @settings(max_examples=40, deadline=None)
    def test_templates_match_layout(self, program):
        design = compile_base(program, _target(program))
        template_slots = {t["tsp"] for t in design.templates}
        assert template_slots == set(design.layout.slots)
        for side, group in design.plan.all_groups():
            slot = design.layout.slot_of(group_key(group))
            template = next(t for t in design.templates if t["tsp"] == slot)
            assert [s["name"] for s in template["stages"]] == group
            assert template["side"] == side

    @given(program=pipelines())
    @settings(max_examples=40, deadline=None)
    def test_allocation_matches_virtualization_rule(self, program):
        design = compile_base(program, _target(program))
        pool = design.pool
        for name, layout in design.table_layouts.items():
            mapping = pool.mapping(name)
            assert len(mapping.block_ids) == blocks_required(
                layout.entry_width,
                layout.depth,
                pool.block_width,
                pool.block_depth,
            )
        owners = [b.owner for b in pool.blocks if b.owner is not None]
        assert sorted(set(owners)) == sorted(design.table_layouts)

    @given(program=pipelines())
    @settings(max_examples=40, deadline=None)
    def test_selector_well_formed(self, program):
        design = compile_base(program, _target(program))
        selector = design.config["selector"]
        assert selector["tm_input"] < selector["tm_output"]
        assert set(selector["active"]).isdisjoint(selector["bypassed"])

"""Unit tests for the IPSA behavioral switch (ipbm)."""

import pytest

from repro.compiler.rp4bc import compile_base
from repro.ipsa.pipeline import ElasticPipeline, PipelineError, SelectorConfig
from repro.ipsa.switch import IpsaSwitch
from repro.ipsa.tm import TrafficManager
from repro.ipsa.tsp import Tsp, TspState
from repro.net.packet import Packet
from repro.programs import base_rp4_source
from repro.programs.base_l2l3 import populate_base_tables
from repro.workloads import ipv4_packet, ipv6_packet, l2_packet


@pytest.fixture
def switch():
    design = compile_base(base_rp4_source())
    device = IpsaSwitch(n_tsps=8)
    device.load_config(design.config)
    populate_base_tables(device.tables)
    return device


class TestLoadConfig:
    def test_templates_distributed(self, switch):
        active = switch.pipeline.active_tsps()
        assert len(active) == 7
        assert switch.pipeline.tsps[6].state is TspState.BYPASSED

    def test_tables_created(self, switch):
        assert "ipv4_lpm" in switch.tables
        assert switch.table("dmac").size == 8192

    def test_unknown_table_raises(self, switch):
        with pytest.raises(KeyError):
            switch.table("ghost")

    def test_linkage_loaded(self, switch):
        assert switch.linkage.next_header("ethernet", 0x0800) == "ipv4"
        assert switch.linkage.next_header("ipv6", 43) is None  # no SRH yet

    def test_selector_boundary(self, switch):
        assert switch.pipeline.selector.tm_input == 5
        assert switch.pipeline.selector.tm_output == 7


class TestForwarding:
    def test_ipv4_routed(self, switch):
        out = switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), port=0)
        assert out is not None and out.port == 3
        assert out.data[14 + 8] == 63  # TTL decremented

    def test_ipv6_routed(self, switch):
        out = switch.inject(ipv6_packet("2001:db8:1::1", "2001:db8:2::9"), port=0)
        assert out is not None and out.port == 3
        assert out.data[14 + 7] == 63  # hop limit decremented

    def test_host_route_preferred(self, switch):
        # 10.1.0.1 has a host route to nexthop 1 -> port 2
        out = switch.inject(ipv4_packet("10.2.0.9", "10.1.0.1"), port=2)
        assert out is not None and out.port == 2

    def test_default_route(self, switch):
        out = switch.inject(ipv4_packet("10.1.0.1", "192.0.2.1"), port=0)
        assert out is not None and out.port == 1  # nexthop 3 -> bd1 -> port 1

    def test_l2_bridged(self, switch):
        from repro.programs.base_l2l3 import HOST_MACS

        out = switch.inject(l2_packet(HOST_MACS[2]), port=0)
        assert out is not None and out.port == 1
        # L2 path must not rewrite MACs or decrement TTL
        assert out.data[14 + 8] == 64

    def test_unknown_port_dropped(self, switch):
        out = switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), port=42)
        assert out is None
        assert switch.packets_dropped == 1

    def test_ttl_expiry_drops(self, switch):
        out = switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5", ttl=1), port=0)
        assert out is None

    def test_counters(self, switch):
        switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), port=0)
        assert switch.packets_in == 1
        assert switch.packets_out == 1
        assert switch.table("ipv4_lpm").hit_count == 1


class TestDistributedParsing:
    def test_early_tsps_parse_lazily(self, switch):
        switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), port=0)
        # TSP 0 (port_map) parses ethernet only.
        assert switch.pipeline.tsps[0].stats.headers_parsed == 1
        # The FIB TSP pulls in ipv4 on demand.
        assert switch.pipeline.tsps[3].stats.headers_parsed >= 1

    def test_no_reparsing_downstream(self, switch):
        switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), port=0)
        total = sum(t.stats.headers_parsed for t in switch.pipeline.tsps)
        assert total == 2  # ethernet + ipv4, each parsed exactly once


class TestTsp:
    def test_template_write_counts_words(self):
        tsp = Tsp(0)
        words = tsp.write_template(
            {
                "tsp": 0,
                "side": "ingress",
                "stages": [
                    {
                        "name": "s",
                        "parser": ["ethernet"],
                        "matcher": [{"cond": None, "table": None}],
                        "executor": {"default": "NoAction"},
                    }
                ],
            }
        )
        assert words == tsp.stats.template_words_written > 0
        assert tsp.active

    def test_clear_powers_down(self):
        tsp = Tsp(0)
        tsp.write_template({"tsp": 0, "side": "ingress", "stages": []})
        tsp.clear()
        assert tsp.state is TspState.BYPASSED
        assert not tsp.active


class TestPipelineSelector:
    def test_validate_rejects_bad_boundary(self):
        pipeline = ElasticPipeline(4)
        with pytest.raises(PipelineError):
            pipeline.configure_selector(
                SelectorConfig(tm_input=3, tm_output=1, active={0, 1, 2, 3})
            )

    def test_validate_rejects_out_of_range(self):
        pipeline = ElasticPipeline(4)
        with pytest.raises(PipelineError):
            pipeline.configure_selector(SelectorConfig(active={9}))

    def test_template_to_unknown_tsp(self):
        pipeline = ElasticPipeline(2)
        with pytest.raises(PipelineError):
            pipeline.write_templates(
                [{"tsp": 5, "side": "ingress", "stages": []}]
            )


class TestTrafficManager:
    def test_fifo_per_port(self):
        tm = TrafficManager()
        a, b = Packet(b"a"), Packet(b"b")
        a.metadata["egress_spec"] = 1
        b.metadata["egress_spec"] = 1
        tm.enqueue(a)
        tm.enqueue(b)
        assert tm.dequeue() is a
        assert tm.dequeue() is b
        assert tm.dequeue() is None

    def test_tail_drop(self):
        tm = TrafficManager(buffer_packets=1)
        assert tm.enqueue(Packet(b"a"))
        assert not tm.enqueue(Packet(b"b"))
        assert tm.stats.dropped == 1

    def test_drain(self):
        tm = TrafficManager()
        for i in range(3):
            tm.enqueue(Packet(bytes([i])))
        assert len(tm.drain()) == 3
        assert tm.occupancy() == 0

    def test_bad_buffer(self):
        with pytest.raises(ValueError):
            TrafficManager(buffer_packets=0)

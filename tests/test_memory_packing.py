"""Unit tests for the set-packing allocation solvers."""

import pytest

from repro.memory.blocks import MemoryKind
from repro.memory.crossbar import (
    ClusteredCrossbar,
    FullCrossbar,
    clusters_reachable_by_all,
)
from repro.memory.packing import Demand, pack_branch_and_bound, pack_greedy

SRAM = MemoryKind.SRAM
TCAM = MemoryKind.TCAM


def free(**clusters):
    """free(c0=4, c1=2) -> {(0, SRAM): 4, (1, SRAM): 2}"""
    return {(int(k[1:]), SRAM): v for k, v in clusters.items()}


class TestDemand:
    def test_validation(self):
        with pytest.raises(ValueError):
            Demand("t", SRAM, 0, (0,))
        with pytest.raises(ValueError):
            Demand("t", SRAM, 1, ())


class TestGreedy:
    def test_single_table(self):
        result = pack_greedy([Demand("a", SRAM, 2, (0,))], free(c0=4))
        assert result.feasible
        assert result.assignment["a"] == {0: 2}
        assert result.spread == 1

    def test_infeasible(self):
        result = pack_greedy([Demand("a", SRAM, 5, (0,))], free(c0=4))
        assert not result.feasible

    def test_prefers_single_cluster(self):
        result = pack_greedy([Demand("a", SRAM, 3, (0, 1))], free(c0=2, c1=3))
        assert result.assignment["a"] == {1: 3}

    def test_spills_when_needed(self):
        result = pack_greedy([Demand("a", SRAM, 4, (0, 1))], free(c0=2, c1=3))
        assert result.feasible
        assert sum(result.assignment["a"].values()) == 4
        assert result.spread == 2

    def test_constrained_tables_first(self):
        # "b" can only use cluster 0; greedy must not let "a" squat there.
        demands = [
            Demand("a", SRAM, 2, (0, 1)),
            Demand("b", SRAM, 2, (0,)),
        ]
        result = pack_greedy(demands, free(c0=2, c1=2))
        assert result.feasible
        assert result.assignment["b"] == {0: 2}
        assert result.assignment["a"] == {1: 2}

    def test_kind_separation(self):
        demands = [Demand("acl", TCAM, 1, (0,))]
        result = pack_greedy(demands, {(0, SRAM): 8})
        assert not result.feasible


class TestBranchAndBound:
    def test_matches_greedy_on_easy_case(self):
        demands = [Demand("a", SRAM, 2, (0,))]
        g = pack_greedy(demands, free(c0=4))
        b = pack_branch_and_bound(demands, free(c0=4))
        assert b.feasible and b.spread == g.spread == 1

    def test_finds_true_optimum(self):
        # 3+3+2 into 4+4: the two 3-block tables cannot share a
        # cluster, so the 2-block table must split -- optimum spread 4.
        demands = [
            Demand("a", SRAM, 3, (0, 1)),
            Demand("b", SRAM, 3, (0, 1)),
            Demand("c", SRAM, 2, (0, 1)),
        ]
        pool = free(c0=4, c1=4)
        exact = pack_branch_and_bound(demands, pool)
        assert exact.feasible
        assert exact.spread == 4
        greedy = pack_greedy(demands, pool)
        assert not greedy.feasible or exact.spread <= greedy.spread

    def test_infeasible_reported(self):
        result = pack_branch_and_bound([Demand("a", SRAM, 9, (0,))], free(c0=4))
        assert not result.feasible

    def test_node_limit_falls_back_to_greedy(self):
        demands = [Demand(f"t{i}", SRAM, 1, (0, 1)) for i in range(8)]
        result = pack_branch_and_bound(demands, free(c0=8, c1=8), node_limit=3)
        assert result.feasible  # greedy bound survives
        assert result.spread >= 8

    def test_spread_never_worse_than_greedy(self):
        demands = [
            Demand("a", SRAM, 4, (0, 1, 2)),
            Demand("b", SRAM, 3, (0, 1)),
            Demand("c", SRAM, 5, (1, 2)),
        ]
        pool = free(c0=5, c1=5, c2=5)
        g = pack_greedy(demands, pool)
        b = pack_branch_and_bound(demands, pool)
        assert b.feasible and g.feasible
        assert b.spread <= g.spread

    def test_counts_preserved(self):
        demands = [Demand("a", SRAM, 4, (0, 1))]
        result = pack_branch_and_bound(demands, free(c0=2, c1=2))
        assert result.feasible
        assert sum(result.assignment["a"].values()) == 4


class TestCrossbars:
    def test_full_crossbar_reaches_everything(self):
        xb = FullCrossbar(memory_clusters=4)
        assert xb.reachable_clusters(0) == {0, 1, 2, 3}
        assert xb.reachable_clusters(7) == {0, 1, 2, 3}
        assert xb.tsp_cluster(5) == 0

    def test_full_crossbar_port_count(self):
        xb = FullCrossbar(memory_clusters=1)
        assert xb.port_count(8, 64) == 512

    def test_clustered_identity_mapping(self):
        xb = ClusteredCrossbar(tsp_cluster_size=2, memory_clusters=4)
        assert xb.tsp_cluster(0) == 0
        assert xb.tsp_cluster(3) == 1
        assert xb.reachable_clusters(0) == {0}
        assert xb.reachable_clusters(2) == {1}

    def test_clustered_custom_mapping(self):
        xb = ClusteredCrossbar(
            tsp_cluster_size=4, memory_clusters=2, mapping={0: {0, 1}}
        )
        assert xb.reachable_clusters(0) == {0, 1}

    def test_clustered_fewer_ports_than_full(self):
        full = FullCrossbar(memory_clusters=4)
        clustered = ClusteredCrossbar(tsp_cluster_size=2, memory_clusters=4)
        assert clustered.port_count(8, 64) < full.port_count(8, 64)

    def test_reachable_by_all(self):
        xb = ClusteredCrossbar(
            tsp_cluster_size=2, memory_clusters=2, mapping={0: {0, 1}, 1: {1}}
        )
        assert clusters_reachable_by_all(xb, [0, 2]) == {1}
        assert clusters_reachable_by_all(xb, [0]) == {0, 1}
        assert clusters_reachable_by_all(xb, []) == set()

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            FullCrossbar(0)
        with pytest.raises(ValueError):
            ClusteredCrossbar(0, 1)

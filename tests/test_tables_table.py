"""Unit tests for the logical table facade."""

import pytest

from repro.net.packet import Packet
from repro.tables.table import KeyField, MatchKind, Table, TableEntry


def meta_packet(**meta):
    p = Packet(b"\x00" * 64)
    for k, v in meta.items():
        p.metadata[k] = v
    return p


def exact_table(name="t", size=16):
    return Table(name, [KeyField("meta.a", MatchKind.EXACT, 16)], size=size)


class TestEngineSelection:
    def test_exact(self):
        t = exact_table()
        assert t.match_kind is MatchKind.EXACT

    def test_lpm_must_be_last(self):
        with pytest.raises(ValueError):
            Table(
                "t",
                [
                    KeyField("meta.a", MatchKind.LPM, 32),
                    KeyField("meta.b", MatchKind.EXACT, 8),
                ],
            )

    def test_single_lpm_only(self):
        with pytest.raises(ValueError):
            Table(
                "t",
                [
                    KeyField("meta.a", MatchKind.LPM, 32),
                    KeyField("meta.b", MatchKind.LPM, 32),
                ],
            )

    def test_hash_cannot_mix(self):
        with pytest.raises(ValueError):
            Table(
                "t",
                [
                    KeyField("meta.a", MatchKind.HASH, 32),
                    KeyField("meta.b", MatchKind.EXACT, 8),
                ],
            )

    def test_ternary_dominates(self):
        t = Table(
            "t",
            [
                KeyField("meta.a", MatchKind.EXACT, 8),
                KeyField("meta.b", MatchKind.TERNARY, 8),
            ],
        )
        assert t.match_kind is MatchKind.TERNARY

    def test_no_key_rejected(self):
        with pytest.raises(ValueError):
            Table("t", [])

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            exact_table(size=0)

    def test_key_width(self):
        t = Table(
            "t",
            [
                KeyField("meta.a", MatchKind.EXACT, 16),
                KeyField("meta.b", MatchKind.EXACT, 32),
            ],
        )
        assert t.key_width() == 48


class TestExactLookup:
    def test_hit(self):
        t = exact_table()
        t.add_entry(TableEntry(key=(5,), action="act", action_data={"x": 1}, tag=2))
        res = t.lookup(meta_packet(a=5))
        assert res.hit and res.tag == 2 and res.action == "act"
        assert res.action_data == {"x": 1}

    def test_miss_default(self):
        t = Table(
            "t",
            [KeyField("meta.a", MatchKind.EXACT, 16)],
            default_action="drop",
        )
        res = t.lookup(meta_packet(a=5))
        assert not res.hit and res.tag == 0 and res.action == "drop"

    def test_counters(self):
        t = exact_table()
        e = TableEntry(key=(5,), action="act")
        t.add_entry(e)
        t.lookup(meta_packet(a=5))
        t.lookup(meta_packet(a=6))
        assert t.hit_count == 1 and t.miss_count == 1 and e.hits == 1

    def test_capacity_enforced(self):
        t = exact_table(size=1)
        t.add_entry(TableEntry(key=(1,), action="a"))
        with pytest.raises(OverflowError):
            t.add_entry(TableEntry(key=(2,), action="a"))

    def test_remove_entry(self):
        t = exact_table()
        e = TableEntry(key=(5,), action="a")
        t.add_entry(e)
        t.remove_entry(e)
        assert not t.lookup(meta_packet(a=5)).hit

    def test_clear(self):
        t = exact_table()
        t.add_entry(TableEntry(key=(5,), action="a"))
        t.clear()
        assert len(t) == 0

    def test_key_arity_enforced(self):
        t = exact_table()
        with pytest.raises(ValueError):
            t.add_entry(TableEntry(key=(1, 2), action="a"))


class TestLpmLookup:
    def test_fib_style(self):
        t = Table(
            "fib",
            [
                KeyField("meta.vrf", MatchKind.EXACT, 16),
                KeyField("meta.dst", MatchKind.LPM, 32),
            ],
        )
        t.add_entry(TableEntry(key=(1, (0x0A000000, 8)), action="nh1", tag=1))
        t.add_entry(TableEntry(key=(1, (0x0A010000, 16)), action="nh2", tag=1))
        res = t.lookup(meta_packet(vrf=1, dst=0x0A010101))
        assert res.action == "nh2"
        res = t.lookup(meta_packet(vrf=1, dst=0x0A990101))
        assert res.action == "nh1"

    def test_lpm_key_shape_enforced(self):
        t = Table("fib", [KeyField("meta.dst", MatchKind.LPM, 32)])
        with pytest.raises(TypeError):
            t.add_entry(TableEntry(key=(0x0A000000,), action="x"))


class TestTernaryLookup:
    def test_acl_style(self):
        t = Table(
            "acl",
            [
                KeyField("meta.sip", MatchKind.TERNARY, 32),
                KeyField("meta.dip", MatchKind.TERNARY, 32),
            ],
        )
        t.add_entry(
            TableEntry(
                key=((0x0A000000, 0xFF000000), (0, 0)),
                action="permit",
                priority=1,
            )
        )
        t.add_entry(
            TableEntry(
                key=((0x0A000005, 0xFFFFFFFF), (0, 0)),
                action="deny",
                priority=10,
            )
        )
        assert t.lookup(meta_packet(sip=0x0A000005, dip=1)).action == "deny"
        assert t.lookup(meta_packet(sip=0x0A000006, dip=1)).action == "permit"

    def test_int_key_part_means_full_mask(self):
        t = Table("acl", [KeyField("meta.sip", MatchKind.TERNARY, 32)])
        t.add_entry(TableEntry(key=(7,), action="hit"))
        assert t.lookup(meta_packet(sip=7)).hit
        assert not t.lookup(meta_packet(sip=8)).hit


class TestHashLookup:
    def test_ecmp_spread_and_stability(self):
        t = Table(
            "ecmp_ipv4",
            [
                KeyField("meta.nexthop", MatchKind.HASH, 16),
                KeyField("meta.dst", MatchKind.HASH, 32),
            ],
            size=8,
        )
        for i in range(4):
            t.add_entry(
                TableEntry(key=(), action="set_bd_dmac", action_data={"bd": i}, tag=1)
            )
        picks = set()
        for flow in range(100):
            res = t.lookup(meta_packet(nexthop=9, dst=flow))
            assert res.hit and res.action == "set_bd_dmac"
            picks.add(res.action_data["bd"])
        assert picks == {0, 1, 2, 3}
        # Stability: same flow always picks the same member.
        a = t.lookup(meta_packet(nexthop=9, dst=42)).action_data["bd"]
        b = t.lookup(meta_packet(nexthop=9, dst=42)).action_data["bd"]
        assert a == b

    def test_remove_hash_member(self):
        t = Table("e", [KeyField("meta.x", MatchKind.HASH, 8)], size=4)
        e1 = TableEntry(key=(), action="a")
        t.add_entry(e1)
        t.remove_entry(e1)
        assert not t.lookup(meta_packet(x=1)).hit


class TestDirectCounters:
    def test_byte_counter_accumulates(self):
        t = exact_table()
        e = TableEntry(key=(5,), action="a")
        t.add_entry(e)
        p = meta_packet(a=5)
        p.metadata["packet_length"] = 100
        t.lookup(p)
        t.lookup(p)
        assert e.hits == 2
        assert e.bytes == 200

    def test_miss_counts_no_bytes(self):
        t = exact_table()
        e = TableEntry(key=(5,), action="a")
        t.add_entry(e)
        p = meta_packet(a=6)
        p.metadata["packet_length"] = 100
        t.lookup(p)
        assert e.bytes == 0

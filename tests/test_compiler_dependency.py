"""Unit tests for stage dependency and exclusivity analysis."""

import pytest

from repro.compiler.dependency import (
    analyze_dependencies,
    expr_reads,
    guard_headers,
    stage_effects,
)
from repro.lang.expr import EBin, EConst, ERef, EValid
from repro.rp4 import parse_rp4
from repro.programs import base_rp4_source


@pytest.fixture(scope="module")
def base():
    return parse_rp4(base_rp4_source())


@pytest.fixture(scope="module")
def deps(base):
    return analyze_dependencies(base)


class TestExprHelpers:
    def test_expr_reads_dotted_only(self):
        expr = EBin("&&", ERef("meta.l3_fwd"), ERef("bareparam"))
        assert expr_reads(expr) == {"meta.l3_fwd"}

    def test_expr_reads_none(self):
        assert expr_reads(None) == set()
        assert expr_reads(EConst(1)) == set()

    def test_guard_headers_conjunction(self):
        expr = EBin("&&", EValid("ipv4"), EBin("==", ERef("meta.l3_fwd"), EConst(1)))
        assert guard_headers(expr) == {"ipv4"}

    def test_guard_headers_disjunction_not_guarding(self):
        expr = EBin("||", EValid("ipv4"), EValid("ipv6"))
        assert guard_headers(expr) == set()


class TestStageEffects:
    def test_fib_stage(self, base):
        eff = stage_effects(base.ingress_stages["ipv4_lpm"], base)
        assert "meta.vrf" in eff.reads
        assert "ipv4.dst_addr" in eff.reads
        assert "meta.l3_fwd" in eff.reads  # predicate read
        assert eff.writes == {"meta.nexthop"}
        assert eff.arm_guards == [frozenset({"ipv4"})]

    def test_nexthop_stage(self, base):
        eff = stage_effects(base.ingress_stages["nexthop"], base)
        assert "meta.nexthop" in eff.reads
        assert {"meta.bd", "ethernet.dst_addr"} <= eff.writes
        # drop default action writes the drop flag
        assert "meta.drop" in eff.writes

    def test_rewrite_stage_includes_primitive_effects(self, base):
        eff = stage_effects(base.egress_stages["l2_l3_rewrite"], base)
        assert "ipv4.ttl" in eff.writes  # decrement_ttl primitive
        assert "ipv6.hop_limit" in eff.writes


class TestExclusivity:
    def test_ipv4_ipv6_exclusive(self, deps):
        assert deps.headers_exclusive("ipv4", "ipv6")

    def test_chain_not_exclusive(self, deps):
        assert not deps.headers_exclusive("ethernet", "ipv4")
        assert not deps.headers_exclusive("ipv4", "udp")

    def test_fib_stages_mutually_exclusive(self, deps):
        assert deps.mutually_exclusive("ipv4_lpm", "ipv6_lpm")
        assert deps.mutually_exclusive("ipv4_host", "ipv6_host")

    def test_same_family_not_exclusive(self, deps):
        assert not deps.mutually_exclusive("ipv4_lpm", "ipv4_host")

    def test_unguarded_stage_never_exclusive(self, deps):
        assert not deps.mutually_exclusive("port_map", "ipv4_lpm")


class TestDependsAndMergeable:
    def test_raw_dependency(self, deps):
        # bridge_vrf reads meta.intf written by port_map
        assert deps.depends("port_map", "bridge_vrf")

    def test_predicate_raw(self, deps):
        # l2_l3 writes meta.l3_fwd; FIB predicates read it
        assert deps.depends("l2_l3", "ipv4_lpm")

    def test_waw_dependency(self, deps):
        # both FIB v4 stages write meta.nexthop
        assert deps.depends("ipv4_lpm", "ipv4_host")

    def test_idempotent_flags_exempt(self, deps):
        # l2_l3_rewrite and dmac both (potentially) write meta.drop,
        # but that WAW is exempt, so they are independent.
        assert deps.mergeable("l2_l3_rewrite", "dmac")

    def test_exclusive_overrides_waw(self, deps):
        # v4/v6 lpm both write meta.nexthop but are exclusive
        assert deps.mergeable("ipv4_lpm", "ipv6_lpm")

    def test_dependent_not_mergeable(self, deps):
        assert not deps.mergeable("port_map", "bridge_vrf")
        assert not deps.mergeable("ipv4_host", "nexthop")

    def test_srh_runtime_link_breaks_nothing(self, base):
        # Inner instances are distinct names, so outer ipv4/ipv6 stay
        # exclusive even after the SRv6 links are merged in.
        from repro.programs import srv6_rp4_source

        merged = parse_rp4(base_rp4_source())
        merged.merge(parse_rp4(srv6_rp4_source()))
        merged.headers["ipv6"].links.append((43, "srh"))
        merged.headers["srh"].links.append((41, "inner_ipv6"))
        merged.headers["srh"].links.append((4, "inner_ipv4"))
        deps2 = analyze_dependencies(merged)
        assert deps2.headers_exclusive("ipv4", "ipv6")


class TestPrimitiveEffects:
    """The effect table must cover the primitive set exactly, and an
    unknown primitive (future AST construction) must be treated as
    read-all/write-all, never as side-effect-free."""

    def test_effect_table_matches_known_primitives(self):
        from repro.compiler.dependency import PRIMITIVE_EFFECTS
        from repro.rp4.semantic import KNOWN_PRIMITIVES

        assert set(PRIMITIVE_EFFECTS) == KNOWN_PRIMITIVES

    def test_unknown_primitive_is_read_write_all(self):
        from repro.compiler.dependency import STAR
        from repro.lang.expr import SCall
        from repro.rp4.ast import Rp4Action

        program = parse_rp4(base_rp4_source())
        stage = program.all_stages()["port_map"]
        program.actions["mystery"] = Rp4Action(
            name="mystery", params=[], body=[SCall("frobnicate")]
        )
        stage.executor[9] = "mystery"
        effects = stage_effects(stage, program)
        assert STAR in effects.reads and STAR in effects.writes

    def test_int_insert_effects_golden(self):
        """The INT snippet's effect summary, pinned exactly: push_int
        must register as a read-modify-write of the shim stack (plus
        the table keys and predicate), never as the STAR wildcard."""
        from repro.compiler.dependency import STAR
        from repro.programs import int_rp4_source

        program = parse_rp4(int_rp4_source())
        effects = stage_effects(program.all_stages()["int_insert"], program)
        assert effects.reads == {
            "ethernet.ethertype",
            "int_shim.hop_count",
            "int_shim.hop_stack",
            "ipv4.src_addr",
            "ipv4.dst_addr",
        }
        assert effects.writes == {
            "ethernet.ethertype",
            "int_shim.orig_ethertype",
            "int_shim.hop_count",
            "int_shim.hop_stack",
            "meta.drop",
        }
        assert STAR not in effects.reads and STAR not in effects.writes
        assert effects.arm_guards == [frozenset({"ipv4"})]

    def test_int_strip_effects_golden(self):
        from repro.compiler.dependency import STAR
        from repro.programs import int_strip_rp4_source

        program = parse_rp4(int_strip_rp4_source())
        effects = stage_effects(program.all_stages()["int_strip"], program)
        assert effects.reads == {
            "ethernet.ethertype",
            "int_shim.orig_ethertype",
            "int_shim.hop_count",
            "int_shim.hop_stack",
        }
        assert effects.writes == {"ethernet.ethertype"}
        assert STAR not in effects.reads

    def test_wildcard_effects_conflict_with_everything(self):
        from repro.compiler.dependency import STAR, DependencyInfo, StageEffects

        info = DependencyInfo(
            effects={
                "wild": StageEffects("wild", reads={STAR}, writes={STAR}),
                "plain": StageEffects(
                    "plain", reads={"meta.x"}, writes={"meta.y"}
                ),
                "empty": StageEffects("empty"),
            }
        )
        assert info.depends("wild", "plain")
        assert info.depends("plain", "wild")
        assert not info.depends("wild", "empty")

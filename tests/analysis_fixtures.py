"""Golden fixtures for the rp4lint rule catalogue.

One entry per rule ID: ``FIXTURES[rule_id]()`` returns the diagnostics
produced by a small program (or config/plan) crafted to fire exactly
that rule.  The per-family test modules assert rule, severity, and
span against these; ``test_analysis_diag.py`` holds the meta-test that
every rule in the catalogue has a firing fixture here.
"""

from types import SimpleNamespace
from typing import Callable, Dict, List

from repro.analysis.diag import Diagnostic
from repro.analysis.linter import lint_config, lint_source
from repro.analysis.memcheck import lint_memory
from repro.analysis.update_safety import check_selector, lint_update
from repro.compiler.rp4bc import TargetSpec, compile_base
from repro.memory.blocks import MemoryKind
from repro.programs import base_rp4_source

#: A minimal two-pipe program that lints completely clean; the broken
#: fixtures below are small mutations of it.
MINI_CLEAN = """\
headers {
    header ethernet {
        bit<48> dst_addr;
        bit<16> ethertype;
        implicit parser(ethertype) {
            0x0800: ipv4;
        }
    }
    header ipv4 {
        bit<8> ttl;
        bit<32> dst_addr;
    }
}
structs {
    struct metadata {
        bit<16> x;
    } meta;
}
action set_x(bit<16> v) {
    meta.x = v;
}
table t_fwd {
    key = { ethernet.dst_addr: exact; }
    size = 16;
}
table t_read {
    key = { meta.x: exact; }
    size = 16;
}
table t_out {
    key = { ethernet.dst_addr: exact; }
    size = 16;
}
control rP4_Ingress {
    stage writer {
        parser { ethernet };
        matcher { t_fwd.apply(); };
        executor {
            1: set_x;
            default: NoAction;
        }
    }
    stage reader {
        parser { ethernet };
        matcher { t_read.apply(); };
        executor {
            default: NoAction;
        }
    }
}
control rP4_Egress {
    stage out {
        parser { ethernet };
        matcher { t_out.apply(); };
        executor {
            default: NoAction;
        }
    }
}
user_funcs {
    func fwd { writer reader }
    func emit { out }
    ingress_entry: writer;
    egress_entry: out;
}
"""


def _mini(**replacements: str) -> str:
    source = MINI_CLEAN
    for old, new in replacements.items():
        marker = _MARKERS[old]
        assert marker in source, marker
        source = source.replace(marker, new)
    return source


_MARKERS = {
    "links": "0x0800: ipv4;",
    "headers_end": "    header ipv4 {\n        bit<8> ttl;\n        bit<32> dst_addr;\n    }",
    "actions": "action set_x(bit<16> v) {\n    meta.x = v;\n}",
    "t_fwd": "table t_fwd {\n    key = { ethernet.dst_addr: exact; }\n    size = 16;\n}",
    "t_read_key": "key = { meta.x: exact; }",
    "writer_matcher": "matcher { t_fwd.apply(); };",
    "writer_exec": "1: set_x;",
    "ingress_entry": "ingress_entry: writer;",
}


def _fire_001() -> List[Diagnostic]:
    design = compile_base(base_rp4_source(), lint="off")
    config = design.config
    table = next(iter(config["tables"]))
    config["tables"][table]["keys"][0][1] = "fuzzy"
    return lint_config(config, n_tsps=8, path="bad.json")


def _fire_002() -> List[Diagnostic]:
    return lint_source("headers {\n    header broken {\n", path="broken.rp4")


def _fire_003() -> List[Diagnostic]:
    source = _mini(writer_exec="1: missing_action;")
    return lint_source(source, path="mini.rp4")


def _fire_004() -> List[Diagnostic]:
    design = compile_base(base_rp4_source(), lint="off")
    config = design.config
    config["selector"]["tm_input"] = config["selector"]["tm_output"] + 1
    return lint_config(config, n_tsps=8, path="bad.json")


def _fire_101() -> List[Diagnostic]:
    # A standalone header is a wire-format *root* (reachable); only a
    # header island detached from every root -- here a two-header
    # cycle -- is truly unreachable.  RP4L103 fires alongside.
    source = _mini(
        headers_end=(
            "    header ipv4 {\n        bit<8> ttl;\n"
            "        bit<32> dst_addr;\n    }\n"
            "    header orphan_a {\n        bit<8> tag;\n"
            "        implicit parser(tag) {\n            1: orphan_b;\n"
            "        }\n    }\n"
            "    header orphan_b {\n        bit<8> tag;\n"
            "        implicit parser(tag) {\n            1: orphan_a;\n"
            "        }\n    }"
        )
    )
    return lint_source(source, path="mini.rp4")


def _fire_102() -> List[Diagnostic]:
    source = _mini(
        links="0x0800: ipv4;\n            0x0800: orphan;",
        headers_end=(
            "    header ipv4 {\n        bit<8> ttl;\n"
            "        bit<32> dst_addr;\n    }\n"
            "    header orphan {\n        bit<8> pad;\n    }"
        ),
    )
    return lint_source(source, path="mini.rp4")


def _fire_103() -> List[Diagnostic]:
    source = _mini(
        headers_end=(
            "    header ipv4 {\n        bit<8> ttl;\n"
            "        bit<32> dst_addr;\n"
            "        implicit parser(ttl) {\n"
            "            1: ethernet;\n        }\n    }"
        )
    )
    return lint_source(source, path="mini.rp4")


def _fire_104() -> List[Diagnostic]:
    source = _mini(t_read_key="key = { ipv4.dst_addr: lpm; }")
    return lint_source(source, path="mini.rp4")


def _fire_105() -> List[Diagnostic]:
    source = _mini(links="0x0800: ipv4;\n            0x86DD: vlan;")
    return lint_source(source, path="mini.rp4")


def _fire_201() -> List[Diagnostic]:
    source = _mini(ingress_entry="ingress_entry: reader;")
    return lint_source(source, path="mini.rp4")


def _fire_202() -> List[Diagnostic]:
    source = _mini(
        t_fwd=(
            "table t_fwd {\n    key = { ethernet.dst_addr: exact; }\n"
            "    size = 16;\n}\n"
            "table t_dead {\n    key = { ethernet.dst_addr: exact; }\n"
            "    size = 16;\n}"
        )
    )
    return lint_source(source, path="mini.rp4")


def _fire_203() -> List[Diagnostic]:
    source = _mini(
        actions=(
            "action set_x(bit<16> v) {\n    meta.x = v;\n}\n"
            "action never_used() {\n    meta.x = 0;\n}"
        )
    )
    return lint_source(source, path="mini.rp4")


def _fire_204() -> List[Diagnostic]:
    source = _mini(
        actions=(
            "action set_x(bit<16> v) {\n    meta.x = v;\n}\n"
            "action stranded() {\n    meta.x = 0;\n}"
        ),
        t_fwd=(
            "table t_fwd {\n    key = { ethernet.dst_addr: exact; }\n"
            "    size = 16;\n"
            "    actions = { set_x; stranded; }\n"
            "    default_action = NoAction;\n}"
        ),
    )
    return lint_source(source, path="mini.rp4")


def _fire_205() -> List[Diagnostic]:
    source = _mini(
        writer_matcher=(
            "matcher {\n            t_fwd.apply();\n"
            "            if (meta.x == 1) t_read.apply();\n        };"
        )
    )
    return lint_source(source, path="mini.rp4")


def _fire_301() -> List[Diagnostic]:
    target = TargetSpec(sram_blocks=4, tcam_blocks=0)
    return lint_source(base_rp4_source(), path="base.rp4", target=target)


def _fire_302() -> List[Diagnostic]:
    layout = SimpleNamespace(
        clusters=[], kind=MemoryKind.SRAM, entry_width=64, depth=1024
    )
    pool = TargetSpec().make_pool()
    return lint_memory({"island": layout}, pool, None, path="base.rp4")


def _fire_303() -> List[Diagnostic]:
    target = TargetSpec(sram_blocks=44, tcam_blocks=16)
    return lint_source(base_rp4_source(), path="base.rp4", target=target)


def _fire_304() -> List[Diagnostic]:
    target = TargetSpec(n_tsps=1, max_stages_per_tsp=1)
    return lint_source(base_rp4_source(), path="base.rp4", target=target)


def _fire_401() -> List[Diagnostic]:
    selector = {"tm_input": 5, "tm_output": 2, "active": [9], "bypassed": [9]}
    return check_selector(selector, n_tsps=8, path="plan")


def _fire_402() -> List[Diagnostic]:
    before = compile_base(MINI_CLEAN, lint="off")
    after_source = MINI_CLEAN.replace(
        """\
    stage writer {
        parser { ethernet };
        matcher { t_fwd.apply(); };
        executor {
            1: set_x;
            default: NoAction;
        }
    }
""",
        "",
    ).replace("func fwd { writer reader }", "func fwd { reader }").replace(
        "ingress_entry: writer;", "ingress_entry: reader;"
    )
    after = compile_base(after_source, lint="off")
    plan = SimpleNamespace(
        removed_stages=["writer"], selector={}, design=after
    )
    return lint_update(before, plan, path="plan")


#: Three-stage chain (entry -> writer -> reader) whose reader consumes
#: ``meta.x``, which only ``writer`` produces.  UNSAFE_SCRIPT routes
#: around ``writer`` so it gets pruned -- stranding ``meta.x`` for the
#: surviving reader (RP4L402 at the controller's pre-apply gate).
MINI_CHAIN = """\
headers {
    header ethernet {
        bit<48> dst_addr;
        bit<16> ethertype;
    }
}
structs {
    struct metadata {
        bit<16> x;
    } meta;
}
action set_x(bit<16> v) {
    meta.x = v;
}
table t_in {
    key = { ethernet.dst_addr: exact; }
    size = 16;
}
table t_w {
    key = { ethernet.dst_addr: exact; }
    size = 16;
}
table t_read {
    key = { meta.x: exact; }
    size = 16;
}
table t_out {
    key = { ethernet.dst_addr: exact; }
    size = 16;
}
control rP4_Ingress {
    stage entry {
        parser { ethernet };
        matcher { t_in.apply(); };
        executor {
            default: NoAction;
        }
    }
    stage writer {
        parser { ethernet };
        matcher { t_w.apply(); };
        executor {
            1: set_x;
            default: NoAction;
        }
    }
    stage reader {
        parser { ethernet };
        matcher { t_read.apply(); };
        executor {
            default: NoAction;
        }
    }
}
control rP4_Egress {
    stage out {
        parser { ethernet };
        matcher { t_out.apply(); };
        executor {
            default: NoAction;
        }
    }
}
user_funcs {
    func fwd { entry writer reader }
    func emit { out }
    ingress_entry: entry;
    egress_entry: out;
}
"""

UNSAFE_SCRIPT = "add_link entry reader\ndel_link entry writer\n"


# -- rp4verify fixtures (RP4L5xx) --------------------------------------------

#: Channel tamper used by the RP4L501/RP4L503 fixtures: corrupt the
#: rehosted-but-unchanged ``port_map`` stage inside the ACL update's
#: rewritten template, so every packet drops at the staged stage while
#: the plan claims only ``stage:acl`` -- unclaimed drift with a
#: replayable divergence.
def tamper_port_map(controller) -> None:
    original = controller.channel.send

    def tampered(message, kind="control"):
        if kind == "update.prepare":
            for template in message.get("templates", []):
                for stage in template["stages"]:
                    if stage["name"] == "port_map":
                        stage["executor"] = {"default": "drop"}
        return original(message, kind=kind)

    controller.channel.send = tampered


def staged_base_controller(verify_updates: str = "off"):
    """A base-loaded, table-populated controller (gates off so the
    fixtures drive rp4verify directly)."""
    from repro.programs import populate_base_tables
    from repro.runtime.controller import Controller

    controller = Controller(lint_updates=False, verify_updates=verify_updates)
    controller.load_base(base_rp4_source())
    populate_base_tables(controller.switch.tables)
    return controller


_VERIFY_DIAGS: Dict[str, List[Diagnostic]] = {}


def _verify_diags(rule_id: str) -> List[Diagnostic]:
    """Lazily run the two rp4verify scenarios the RP4L50x fixtures
    share (one clean ECMP staging, one tampered ACL staging) and cache
    the diagnostics per rule."""
    if _VERIFY_DIAGS:
        return _VERIFY_DIAGS[rule_id]
    from repro.analysis.diag import Severity
    from repro.analysis.verify import VerifyConfig, verify_txn
    from repro.programs import (
        acl_load_script,
        acl_rp4_source,
        ecmp_load_script,
        ecmp_rp4_source,
    )

    # Clean ECMP staging: claimed drift only -> intended divergences
    # (RP4L502); a one-class budget on the same txn -> RP4L506.
    controller = staged_base_controller()
    staged = controller.stage_update(
        ecmp_load_script(), {"ecmp.rp4": ecmp_rp4_source()}
    )
    quiet = dict(witnesses=False, confirm=False)
    _VERIFY_DIAGS["RP4L502"] = verify_txn(
        controller.switch, staged.txn, plan=staged.plan,
        config=VerifyConfig(exhaustive=True, **quiet),
    ).diagnostics
    _VERIFY_DIAGS["RP4L506"] = verify_txn(
        controller.switch, staged.txn, plan=staged.plan,
        config=VerifyConfig(exhaustive=True, max_classes=1, **quiet),
    ).diagnostics
    staged.abort()

    # Tampered ACL staging: unclaimed drift (RP4L503) with confirmed
    # unintended divergences (RP4L501).  Unconfirmed classes are
    # downgraded to warnings by design; the golden fixture pins the
    # catalogue (error) severity, so keep only the confirmed ones --
    # the downgrade path has its own test in test_analysis_verify.
    controller = staged_base_controller()
    tamper_port_map(controller)
    staged = controller.stage_update(
        acl_load_script(), {"acl.rp4": acl_rp4_source()}
    )
    report = verify_txn(controller.switch, staged.txn, plan=staged.plan)
    staged.abort()
    _VERIFY_DIAGS["RP4L501"] = [
        d for d in report.diagnostics
        if d.rule != "RP4L501" or d.severity is Severity.ERROR
    ]
    _VERIFY_DIAGS["RP4L503"] = report.diagnostics
    return _VERIFY_DIAGS[rule_id]


def _fire_501() -> List[Diagnostic]:
    return _verify_diags("RP4L501")


def _fire_502() -> List[Diagnostic]:
    return _verify_diags("RP4L502")


def _fire_503() -> List[Diagnostic]:
    return _verify_diags("RP4L503")


def _sketch_stage(name: str, table: str = "t"):
    return SimpleNamespace(
        name=name,
        parser_headers=["ethernet"],
        arms=[(None, None, table)],
        executor={1: name + "_act", "default": "NoAction"},
    )


def _sketch_view(label: str, stages, actions):
    from repro.analysis.verify import DeviceView

    return DeviceView(
        label, [("ingress", s) for s in stages], {}, actions, {}, {},
        None, "ethernet",
    )


def _fire_504() -> List[Diagnostic]:
    # The same sketch survives the epoch flip but its access pattern
    # (hashed fields) changes -- in-flight old-epoch packets race the
    # new epoch's writes.
    from repro.analysis.verify import verify_views
    from repro.tables.actions import ActionDef, SketchUpdate

    live = _sketch_view(
        "live", [_sketch_stage("s1")],
        {"s1_act": ActionDef("s1_act", [], [
            SketchUpdate("flows", ["ethernet.dst_addr"], "meta.x")
        ])},
    )
    shadow = _sketch_view(
        "shadow", [_sketch_stage("s1")],
        {"s1_act": ActionDef("s1_act", [], [
            SketchUpdate("flows", ["ethernet.ethertype"], "meta.x")
        ])},
    )
    return verify_views(live, shadow, path="plan").diagnostics


def _fire_505() -> List[Diagnostic]:
    # After the update two stages (one of them newly added) hit the
    # same sketch: a cross-stage stateful read-write race.
    from repro.analysis.verify import verify_views
    from repro.tables.actions import ActionDef, SketchUpdate

    update = ActionDef("s1_act", [], [
        SketchUpdate("flows", ["ethernet.dst_addr"], "meta.x")
    ])
    second = ActionDef("s2_act", [], [
        SketchUpdate("flows", ["ethernet.dst_addr"], "meta.y")
    ])
    live = _sketch_view("live", [_sketch_stage("s1")], {"s1_act": update})
    shadow = _sketch_view(
        "shadow", [_sketch_stage("s1"), _sketch_stage("s2")],
        {"s1_act": update, "s2_act": second},
    )
    return verify_views(
        live, shadow, claimed={"stage:s2"}, path="plan"
    ).diagnostics


def _fire_506() -> List[Diagnostic]:
    return _verify_diags("RP4L506")


#: rule ID -> zero-argument callable producing diagnostics that include
#: at least one finding for that rule.
FIXTURES: Dict[str, Callable[[], List[Diagnostic]]] = {
    "RP4L001": _fire_001,
    "RP4L002": _fire_002,
    "RP4L003": _fire_003,
    "RP4L004": _fire_004,
    "RP4L101": _fire_101,
    "RP4L102": _fire_102,
    "RP4L103": _fire_103,
    "RP4L104": _fire_104,
    "RP4L105": _fire_105,
    "RP4L201": _fire_201,
    "RP4L202": _fire_202,
    "RP4L203": _fire_203,
    "RP4L204": _fire_204,
    "RP4L205": _fire_205,
    "RP4L301": _fire_301,
    "RP4L302": _fire_302,
    "RP4L303": _fire_303,
    "RP4L304": _fire_304,
    "RP4L401": _fire_401,
    "RP4L402": _fire_402,
    "RP4L501": _fire_501,
    "RP4L502": _fire_502,
    "RP4L503": _fire_503,
    "RP4L504": _fire_504,
    "RP4L505": _fire_505,
    "RP4L506": _fire_506,
}

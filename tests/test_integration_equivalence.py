"""Integration: PISA and IPSA forward whole traces identically.

A design compiled through the P4 flow (PISA) and through the rP4 flow
(IPSA) is the *same* design; the architectures must agree packet by
packet on every use-case workload.  This is the strongest cross-check
the reproduction has: it exercises both parsers, both pipelines, the
compilers, and the populate helpers against each other.
"""


from repro.pisa.switch import PisaSwitch
from repro.programs import (
    base_p4_source,
    base_rp4_source,
    ecmp_load_script,
    ecmp_rp4_source,
    flowprobe_load_script,
    flowprobe_rp4_source,
    populate_base_tables,
    populate_ecmp_tables,
    populate_flowprobe_tables,
    populate_srv6_tables,
    srv6_load_script,
    srv6_rp4_source,
)
from repro.programs.p4_variants import (
    ecmp_p4_source,
    flowprobe_p4_source,
    srv6_p4_source,
)
from repro.workloads import mixed_l3_trace, use_case_trace

CASES = {
    "base": (None, None, None, None, base_p4_source),
    "C1": (ecmp_load_script, ecmp_rp4_source, "ecmp.rp4",
           populate_ecmp_tables, ecmp_p4_source),
    "C2": (srv6_load_script, srv6_rp4_source, "srv6.rp4",
           populate_srv6_tables, srv6_p4_source),
    "C3": (flowprobe_load_script, flowprobe_rp4_source, "flowprobe.rp4",
           populate_flowprobe_tables, flowprobe_p4_source),
}


def build_pair(case):
    script, snippet, name, populate, p4_variant = CASES[case]
    # IPSA follows the production flow: base first, then the in-situ
    # update (entries survive; removed tables disappear).
    from repro.runtime import Controller

    controller = Controller()
    controller.load_base(base_rp4_source())
    populate_base_tables(controller.switch.tables)
    if script is not None:
        controller.run_script(script(), {name: snippet()})
    ipsa = controller.switch

    pisa = PisaSwitch(n_stages=8)
    pisa.load(p4_variant())
    populate_base_tables(pisa.tables)

    if populate is not None:
        populate(ipsa.tables)
        populate(pisa.tables)
    return pisa, ipsa


def run_pair(pisa, ipsa, trace):
    mismatches = []
    for i, (data, port) in enumerate(trace):
        pisa_out = pisa.inject(data, port)
        ipsa_out = ipsa.inject(data, port)
        if (pisa_out is None) != (ipsa_out is None):
            mismatches.append((i, "drop-disagreement"))
        elif pisa_out is not None and (
            pisa_out.port != ipsa_out.port or pisa_out.data != ipsa_out.data
        ):
            mismatches.append((i, "output-differs"))
    return mismatches


class TestTraceEquivalence:
    def test_base_design(self):
        pisa, ipsa = build_pair("base")
        assert run_pair(pisa, ipsa, mixed_l3_trace(300, seed=101)) == []

    def test_ecmp(self):
        pisa, ipsa = build_pair("C1")
        assert run_pair(pisa, ipsa, use_case_trace("C1", 300, seed=102)) == []

    def test_srv6(self):
        pisa, ipsa = build_pair("C2")
        assert run_pair(pisa, ipsa, use_case_trace("C2", 300, seed=103)) == []

    def test_flowprobe(self):
        pisa, ipsa = build_pair("C3")
        assert run_pair(pisa, ipsa, use_case_trace("C3", 300, seed=104)) == []
        # Both probes counted the same packets.
        pisa_counts = sorted(e.counter for e in pisa.table("flow_probe").entries())
        ipsa_counts = sorted(e.counter for e in ipsa.table("flow_probe").entries())
        assert pisa_counts == ipsa_counts

    def test_ecmp_distributions_match(self):
        """Same flow hash -> same member choice on both architectures."""
        pisa, ipsa = build_pair("C1")
        for data, port in use_case_trace("C1", 200, seed=105):
            pisa_out = pisa.inject(data, port)
            ipsa_out = ipsa.inject(data, port)
            assert pisa_out is not None and ipsa_out is not None
            assert pisa_out.port == ipsa_out.port

"""Timeline tests: phase ordering, duration tiling, round-trips."""

import pytest

from repro.obs.timeline import Phase, Timeline, TimelineRecorder, format_timeline
from repro.programs import (
    base_rp4_source,
    ecmp_load_script,
    ecmp_rp4_source,
    populate_base_tables,
)
from repro.runtime import Controller


@pytest.fixture
def controller():
    ctl = Controller()
    ctl.load_base(base_rp4_source())
    populate_base_tables(ctl.switch.tables)
    return ctl


def apply_ecmp(controller):
    """The C1 ECMP use case as an in-situ update."""
    return controller.run_script(
        ecmp_load_script(), {"ecmp.rp4": ecmp_rp4_source()}
    )


class TestTimelinePrimitive:
    def test_phases_are_contiguous(self):
        timeline = Timeline("op")
        a = timeline.phase("a")
        b = timeline.phase("b")
        timeline.finish()
        assert a.start == timeline.start
        assert b.start == a.end
        assert timeline.end == b.end

    def test_durations_sum_to_total_exactly(self):
        timeline = Timeline("op")
        for name in ("a", "b", "c"):
            timeline.phase(name)
        timeline.finish()
        assert sum(timeline.durations().values()) == timeline.total_seconds

    def test_empty_timeline_finishes(self):
        timeline = Timeline("noop").finish()
        assert timeline.phases == []
        assert timeline.total_seconds >= 0

    def test_round_trip(self):
        timeline = Timeline("op", kind="test")
        timeline.phase("a", items=3)
        timeline.phase("b")
        timeline.finish()
        clone = Timeline.from_dict(timeline.to_dict())
        assert clone.to_dict() == timeline.to_dict()
        assert clone.label == "op"
        assert clone.attrs == {"kind": "test"}
        assert [p.name for p in clone.phases] == ["a", "b"]
        assert clone.phases[0].attrs == {"items": 3}
        assert clone.total_seconds == pytest.approx(timeline.total_seconds)

    def test_phase_round_trip(self):
        phase = Phase("drain", start=1.0, end=1.5, attrs={"held": 2})
        clone = Phase.from_dict(phase.to_dict())
        assert clone.name == "drain"
        assert clone.duration == pytest.approx(0.5)
        assert clone.attrs == {"held": 2}

    def test_recorder_bounded_and_latest(self):
        recorder = TimelineRecorder(capacity=2)
        recorder.begin("a").finish()
        recorder.begin("b").finish()
        recorder.begin("a").finish()
        assert len(recorder.timelines) == 2
        assert recorder.latest().label == "a"
        assert recorder.latest("b").label == "b"
        assert recorder.latest("ghost") is None

    def test_format_timeline(self):
        timeline = Timeline("apply_update")
        timeline.phase("drain", held=1)
        timeline.finish()
        text = format_timeline(timeline)
        assert text.startswith("apply_update: total ")
        assert "drain" in text and "held=1" in text


class TestApplyUpdateTimeline:
    """Acceptance: the C1 ECMP update records the transaction's
    prepare/validate/commit phases, and only the pointer-swap window
    (flip + resume) counts as stall."""

    def test_phase_order(self, controller):
        apply_ecmp(controller)
        timeline = controller.switch.timelines.latest("apply_update")
        assert timeline is not None
        assert [p.name for p in timeline.phases] == [
            "prepare", "validate", "serve", "flip", "resume", "complete",
        ]

    def test_stall_covers_only_the_flip_window(self, controller):
        _, stats, _ = apply_ecmp(controller)
        timeline = controller.switch.timelines.latest("apply_update")
        durations = timeline.durations()
        assert stats.stall_seconds == pytest.approx(
            durations["flip"] + durations["resume"]
        )
        assert stats.stall_seconds < timeline.total_seconds
        assert sum(durations.values()) == pytest.approx(
            timeline.total_seconds
        )

    def test_phase_attrs_carry_update_stats(self, controller):
        _, stats, _ = apply_ecmp(controller)
        timeline = controller.switch.timelines.latest("apply_update")
        attrs = {p.name: p.attrs for p in timeline.phases}
        assert attrs["prepare"]["templates"] == stats.templates_written
        assert attrs["flip"]["templates_written"] == stats.templates_written
        assert attrs["flip"]["tables_created"] == stats.tables_created
        assert attrs["flip"]["epoch"] == stats.epoch
        assert attrs["complete"]["drained_packets"] == stats.drained_packets
        assert attrs["complete"]["completed_packets"] == (
            stats.completed_packets
        )
        assert attrs["resume"]["active_tsps"] == len(
            controller.switch.pipeline.active_tsps()
        )

    def test_inplace_path_still_records_its_own_timeline(self, controller):
        """The pre-refactor stop-the-world path (the bench baseline)
        keeps its full phase breakdown under its own label."""
        from repro.compiler.rp4bc import compile_update

        plan = compile_update(
            controller.design, ecmp_load_script(),
            {"ecmp.rp4": ecmp_rp4_source()},
        )
        stats = controller.switch.apply_update_inplace(
            plan.update_message(controller.design.config)
        )
        timeline = controller.switch.timelines.latest("apply_update_inplace")
        assert timeline is not None
        assert [p.name for p in timeline.phases] == [
            "drain", "schema", "linkage", "tables", "templates", "selector",
            "recompile",
        ]
        assert stats.stall_seconds == pytest.approx(timeline.total_seconds)


class TestControllerTimelines:
    def test_load_base_phases(self, controller):
        timeline = controller.timelines.latest("load_base")
        assert [p.name for p in timeline.phases] == [
            "compile", "validate", "load",
        ]
        assert sum(timeline.durations().values()) == pytest.approx(
            timeline.total_seconds
        )

    def test_load_base_timing_matches_timeline(self, controller):
        ctl = Controller()
        timing = ctl.load_base(base_rp4_source())
        timeline = ctl.timelines.latest("load_base")
        durations = timeline.durations()
        assert timing.compile_seconds == pytest.approx(durations["compile"])
        assert timing.load_seconds == pytest.approx(durations["load"])

    def test_run_script_phases_and_timing(self, controller):
        _, _, timing = apply_ecmp(controller)
        timeline = controller.timelines.latest("run_script")
        durations = timeline.durations()
        assert list(durations) == [
            "compile", "lint", "transfer", "verify", "apply"
        ]
        assert timing.compile_seconds == pytest.approx(durations["compile"])
        assert timing.load_seconds == pytest.approx(
            durations["transfer"] + durations["apply"]
        )

    def test_rollback_phases(self, controller):
        apply_ecmp(controller)
        controller.rollback()
        timeline = controller.timelines.latest("rollback")
        assert [p.name for p in timeline.phases] == [
            "plan", "transfer", "apply",
        ]

    def test_controller_counters(self, controller):
        apply_ecmp(controller)
        controller.rollback()
        assert controller.metrics.value("controller.base_loads") == 1
        assert controller.metrics.value("controller.updates_applied") == 1
        assert controller.metrics.value("controller.rollbacks") == 1
        assert controller.metrics.value("controller.compile_seconds_count") == 2


class TestPisaReloadTimeline:
    def test_reload_records_transaction_phases(self):
        from repro.pisa.switch import PisaSwitch
        from repro.programs import base_p4_source
        from repro.programs.p4_variants import ecmp_p4_source

        device = PisaSwitch(n_stages=8)
        device.load(base_p4_source())
        populate_base_tables(device.tables)
        stats = device.reload(ecmp_p4_source(), entries={})
        timeline = device.timelines.latest("reload")
        assert timeline is not None
        assert [p.name for p in timeline.phases] == [
            "prepare", "validate", "serve", "flip",
        ]
        assert sum(timeline.durations().values()) == pytest.approx(
            timeline.total_seconds
        )
        # The traffic-visible window is only the flip, not the rebuild.
        assert stats.stall_seconds == pytest.approx(
            timeline.durations()["flip"]
        )
        assert stats.stall_seconds < stats.seconds

"""Timeline tests: phase ordering, duration tiling, round-trips."""

import pytest

from repro.obs.timeline import Phase, Timeline, TimelineRecorder, format_timeline
from repro.programs import (
    base_rp4_source,
    ecmp_load_script,
    ecmp_rp4_source,
    populate_base_tables,
)
from repro.runtime import Controller


@pytest.fixture
def controller():
    ctl = Controller()
    ctl.load_base(base_rp4_source())
    populate_base_tables(ctl.switch.tables)
    return ctl


def apply_ecmp(controller):
    """The C1 ECMP use case as an in-situ update."""
    return controller.run_script(
        ecmp_load_script(), {"ecmp.rp4": ecmp_rp4_source()}
    )


class TestTimelinePrimitive:
    def test_phases_are_contiguous(self):
        timeline = Timeline("op")
        a = timeline.phase("a")
        b = timeline.phase("b")
        timeline.finish()
        assert a.start == timeline.start
        assert b.start == a.end
        assert timeline.end == b.end

    def test_durations_sum_to_total_exactly(self):
        timeline = Timeline("op")
        for name in ("a", "b", "c"):
            timeline.phase(name)
        timeline.finish()
        assert sum(timeline.durations().values()) == timeline.total_seconds

    def test_empty_timeline_finishes(self):
        timeline = Timeline("noop").finish()
        assert timeline.phases == []
        assert timeline.total_seconds >= 0

    def test_round_trip(self):
        timeline = Timeline("op", kind="test")
        timeline.phase("a", items=3)
        timeline.phase("b")
        timeline.finish()
        clone = Timeline.from_dict(timeline.to_dict())
        assert clone.to_dict() == timeline.to_dict()
        assert clone.label == "op"
        assert clone.attrs == {"kind": "test"}
        assert [p.name for p in clone.phases] == ["a", "b"]
        assert clone.phases[0].attrs == {"items": 3}
        assert clone.total_seconds == pytest.approx(timeline.total_seconds)

    def test_phase_round_trip(self):
        phase = Phase("drain", start=1.0, end=1.5, attrs={"held": 2})
        clone = Phase.from_dict(phase.to_dict())
        assert clone.name == "drain"
        assert clone.duration == pytest.approx(0.5)
        assert clone.attrs == {"held": 2}

    def test_recorder_bounded_and_latest(self):
        recorder = TimelineRecorder(capacity=2)
        recorder.begin("a").finish()
        recorder.begin("b").finish()
        recorder.begin("a").finish()
        assert len(recorder.timelines) == 2
        assert recorder.latest().label == "a"
        assert recorder.latest("b").label == "b"
        assert recorder.latest("ghost") is None

    def test_format_timeline(self):
        timeline = Timeline("apply_update")
        timeline.phase("drain", held=1)
        timeline.finish()
        text = format_timeline(timeline)
        assert text.startswith("apply_update: total ")
        assert "drain" in text and "held=1" in text


class TestApplyUpdateTimeline:
    """Acceptance: C1 ECMP update phases tile the reported stall."""

    def test_phase_order(self, controller):
        apply_ecmp(controller)
        timeline = controller.switch.timelines.latest("apply_update")
        assert timeline is not None
        assert [p.name for p in timeline.phases] == [
            "drain", "schema", "linkage", "tables", "templates", "selector",
            "recompile",
        ]

    def test_durations_sum_to_reported_stall(self, controller):
        _, stats, _ = apply_ecmp(controller)
        timeline = controller.switch.timelines.latest("apply_update")
        assert stats.stall_seconds == pytest.approx(timeline.total_seconds)
        assert sum(timeline.durations().values()) == pytest.approx(
            timeline.total_seconds
        )

    def test_phase_attrs_carry_update_stats(self, controller):
        _, stats, _ = apply_ecmp(controller)
        timeline = controller.switch.timelines.latest("apply_update")
        attrs = {p.name: p.attrs for p in timeline.phases}
        assert attrs["templates"]["templates_written"] == stats.templates_written
        assert attrs["tables"]["tables_created"] == stats.tables_created
        assert attrs["drain"]["drained_packets"] == stats.drained_packets
        assert attrs["selector"]["active_tsps"] == len(
            controller.switch.pipeline.active_tsps()
        )


class TestControllerTimelines:
    def test_load_base_phases(self, controller):
        timeline = controller.timelines.latest("load_base")
        assert [p.name for p in timeline.phases] == [
            "compile", "validate", "load",
        ]
        assert sum(timeline.durations().values()) == pytest.approx(
            timeline.total_seconds
        )

    def test_load_base_timing_matches_timeline(self, controller):
        ctl = Controller()
        timing = ctl.load_base(base_rp4_source())
        timeline = ctl.timelines.latest("load_base")
        durations = timeline.durations()
        assert timing.compile_seconds == pytest.approx(durations["compile"])
        assert timing.load_seconds == pytest.approx(durations["load"])

    def test_run_script_phases_and_timing(self, controller):
        _, _, timing = apply_ecmp(controller)
        timeline = controller.timelines.latest("run_script")
        durations = timeline.durations()
        assert list(durations) == ["compile", "lint", "transfer", "apply"]
        assert timing.compile_seconds == pytest.approx(durations["compile"])
        assert timing.load_seconds == pytest.approx(
            durations["transfer"] + durations["apply"]
        )

    def test_rollback_phases(self, controller):
        apply_ecmp(controller)
        controller.rollback()
        timeline = controller.timelines.latest("rollback")
        assert [p.name for p in timeline.phases] == [
            "plan", "transfer", "apply",
        ]

    def test_controller_counters(self, controller):
        apply_ecmp(controller)
        controller.rollback()
        assert controller.metrics.value("controller.base_loads") == 1
        assert controller.metrics.value("controller.updates_applied") == 1
        assert controller.metrics.value("controller.rollbacks") == 1
        assert controller.metrics.value("controller.compile_seconds_count") == 2


class TestPisaReloadTimeline:
    def test_reload_records_load_and_populate(self):
        from repro.pisa.switch import PisaSwitch
        from repro.programs import base_p4_source
        from repro.programs.p4_variants import ecmp_p4_source

        device = PisaSwitch(n_stages=8)
        device.load(base_p4_source())
        populate_base_tables(device.tables)
        device.reload(ecmp_p4_source(), entries={})
        timeline = device.timelines.latest("reload")
        assert timeline is not None
        assert [p.name for p in timeline.phases] == ["load", "populate"]
        assert sum(timeline.durations().values()) == pytest.approx(
            timeline.total_seconds
        )

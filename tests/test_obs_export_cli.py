"""Exporter round-trips and the ipbm-ctl observability surface."""

import io
import json

import pytest

from repro.obs.export import (
    export_timelines,
    export_traces,
    load_timelines,
    load_traces,
    read_jsonl,
    write_jsonl,
)
from repro.obs.timeline import TimelineRecorder
from repro.programs import (
    base_rp4_source,
    ecmp_load_script,
    ecmp_rp4_source,
    populate_base_tables,
)
from repro.runtime import Controller
from repro.runtime.cli import main as ipbm_ctl_main
from repro.workloads import ipv4_packet


@pytest.fixture
def controller():
    ctl = Controller()
    ctl.load_base(base_rp4_source())
    populate_base_tables(ctl.switch.tables)
    return ctl


class TestJsonl:
    def test_write_read_round_trip(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        records = [{"a": 1}, {"b": [1, 2]}, {}]
        assert write_jsonl(path, records) == 3
        assert read_jsonl(path) == records

    def test_file_object_sink(self):
        sink = io.StringIO()
        write_jsonl(sink, [{"x": 1}])
        assert read_jsonl(io.StringIO(sink.getvalue())) == [{"x": 1}]

    def test_blank_lines_skipped(self):
        assert read_jsonl(io.StringIO('{"a": 1}\n\n{"b": 2}\n')) == [
            {"a": 1},
            {"b": 2},
        ]


class TestTraceExport:
    def test_round_trip(self, controller, tmp_path):
        switch = controller.switch
        switch.enable_tracing()
        switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), port=0)
        switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), port=9)  # drop
        path = str(tmp_path / "traces.jsonl")
        assert export_traces(switch.tracer, path) == 2
        loaded = load_traces(path)
        assert [t.outcome for t in loaded] == ["emit", "drop"]
        assert loaded[0].egress_ports == [3]
        assert loaded[1].drop_reason == "ingress_action"
        # Exports are rebased to a trace-relative origin, so loaded
        # traces compare equal to the rebased view of the live ones.
        assert [t.to_dict() for t in loaded] == [
            t.to_dict(rebase=True) for t in switch.tracer.traces
        ]
        for trace in loaded:
            assert trace.root.start == 0.0
            stack = [trace.root]
            while stack:
                span = stack.pop()
                assert span.to_dict()["duration"] >= 0.0
                stack.extend(span.children)

    def test_export_without_rebase_keeps_raw_clock(
        self, controller, tmp_path
    ):
        switch = controller.switch
        switch.enable_tracing()
        switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), port=0)
        path = str(tmp_path / "raw.jsonl")
        export_traces(switch.tracer, path, rebase=False)
        raw = load_traces(path)[0]
        live = switch.tracer.traces[0]
        assert raw.root.start == pytest.approx(live.root.start)

    def test_timeline_round_trip(self, controller, tmp_path):
        controller.run_script(ecmp_load_script(), {"ecmp.rp4": ecmp_rp4_source()})
        path = str(tmp_path / "timelines.jsonl")
        count = export_timelines(
            [controller.timelines, controller.switch.timelines], path
        )
        assert count == len(controller.timelines.timelines) + len(
            controller.switch.timelines.timelines
        )
        labels = {t.label for t in load_timelines(path)}
        assert {"load_base", "run_script", "apply_update"} <= labels

    def test_single_recorder_accepted(self, tmp_path):
        recorder = TimelineRecorder()
        recorder.begin("op").finish()
        path = str(tmp_path / "one.jsonl")
        assert export_timelines(recorder, path) == 1
        assert load_timelines(path)[0].label == "op"


@pytest.fixture
def files(tmp_path):
    from repro.net.pcap import save_trace
    from repro.workloads import mixed_l3_trace

    (tmp_path / "base.rp4").write_text(base_rp4_source())
    (tmp_path / "ecmp.rp4").write_text(ecmp_rp4_source())
    (tmp_path / "update.txt").write_text(ecmp_load_script())
    save_trace(str(tmp_path / "in.pcap"), mixed_l3_trace(10, seed=8))
    return tmp_path


class TestCliExports:
    def test_trace_capture_and_render(self, files, capsys):
        trace_file = files / "traces.jsonl"
        code = ipbm_ctl_main(
            [
                str(files / "base.rp4"),
                "--populate",
                "--pcap-in", str(files / "in.pcap"),
                "--trace", "3",
                "--trace-out", str(trace_file),
            ]
        )
        assert code == 0
        assert "wrote 3 packet traces" in capsys.readouterr().out

        # Offline subcommand renders what the run exported.
        assert ipbm_ctl_main(["trace", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "packet #0" in out and "- tsp0" in out

        # --json re-emits exactly what the exporter wrote (round-trip).
        assert ipbm_ctl_main(["trace", str(trace_file), "--json"]) == 0
        reemitted = capsys.readouterr().out
        assert reemitted == trace_file.read_text()

    def test_trace_seq_filter(self, files, capsys):
        trace_file = files / "traces.jsonl"
        ipbm_ctl_main(
            [
                str(files / "base.rp4"),
                "--populate",
                "--pcap-in", str(files / "in.pcap"),
                "--trace", "3",
                "--trace-out", str(trace_file),
            ]
        )
        capsys.readouterr()
        assert ipbm_ctl_main(["trace", str(trace_file), "--seq", "1"]) == 0
        out = capsys.readouterr().out
        assert "packet #1" in out and "packet #0" not in out

    def test_timeline_export_and_render(self, files, capsys):
        timeline_file = files / "timelines.jsonl"
        code = ipbm_ctl_main(
            [
                str(files / "base.rp4"),
                "--script", str(files / "update.txt"),
                "--snippet", f"ecmp.rp4={files / 'ecmp.rp4'}",
                "--timeline-out", str(timeline_file),
            ]
        )
        assert code == 0
        capsys.readouterr()

        assert ipbm_ctl_main(["timeline", str(timeline_file)]) == 0
        out = capsys.readouterr().out
        assert "load_base: total" in out
        assert "apply_update: total" in out
        assert "drain" in out

        # Round-trip: re-emitted JSON matches the exported file.
        assert ipbm_ctl_main(["timeline", str(timeline_file), "--json"]) == 0
        assert capsys.readouterr().out == timeline_file.read_text()

    def test_timeline_label_filter(self, files, capsys):
        timeline_file = files / "timelines.jsonl"
        ipbm_ctl_main(
            [str(files / "base.rp4"), "--timeline-out", str(timeline_file)]
        )
        capsys.readouterr()
        code = ipbm_ctl_main(
            ["timeline", str(timeline_file), "--label", "load_base"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "load_base: total" in out and "apply_update" not in out

    def test_stats_out_and_render(self, files, capsys):
        stats_file = files / "stats.json"
        code = ipbm_ctl_main(
            [
                str(files / "base.rp4"),
                "--populate",
                "--pcap-in", str(files / "in.pcap"),
                "--stats-out", str(stats_file),
            ]
        )
        assert code == 0
        snapshot = json.loads(stats_file.read_text())
        assert snapshot["device"]["packets_in"] == 10
        capsys.readouterr()

        assert ipbm_ctl_main(["stats", str(stats_file)]) == 0
        out = capsys.readouterr().out
        assert "device: in=10" in out

    def test_metrics_out_prometheus(self, files, capsys):
        metrics_file = files / "metrics.prom"
        code = ipbm_ctl_main(
            [
                str(files / "base.rp4"),
                "--populate",
                "--pcap-in", str(files / "in.pcap"),
                "--metrics-out", str(metrics_file),
            ]
        )
        assert code == 0
        text = metrics_file.read_text()
        assert "device_packets_in 10" in text
        assert "# TYPE device_packets_in counter" in text
        assert "controller_base_loads 1" in text

    def test_trace_out_without_tracing_is_empty_file(self, files, capsys):
        trace_file = files / "traces.jsonl"
        code = ipbm_ctl_main(
            [str(files / "base.rp4"), "--trace-out", str(trace_file)]
        )
        assert code == 0
        assert "wrote 0 packet traces" in capsys.readouterr().out
        assert trace_file.read_text() == ""

"""Unit tests for the packet object and the JIT incremental parser."""

import pytest

from repro.net.headers import (
    IPV6,
    SRH,
    HeaderInstance,
    standard_header_types,
)
from repro.net.linkage import IPPROTO_IPV6, IPPROTO_ROUTING, standard_linkage
from repro.net.packet import Packet, ParseError


def eth_ipv4_udp(payload=b"\xde\xad"):
    eth = bytes.fromhex("ffffffffffff001122334455") + (0x0800).to_bytes(2, "big")
    ipv4 = bytes.fromhex("450000730000400040110000c0a80001c0a800c7")
    udp = bytes.fromhex("003500350010aaaa")
    return eth + ipv4 + udp + payload


def eth_ipv6_tcp():
    eth = bytes.fromhex("ffffffffffff001122334455") + (0x86DD).to_bytes(2, "big")
    ipv6 = bytes([0x60, 0, 0, 0]) + (20).to_bytes(2, "big") + bytes([6, 64])
    ipv6 += (1).to_bytes(16, "big") + (2).to_bytes(16, "big")
    tcp = b"\x00" * 20
    return eth + ipv6 + tcp


def eth_ipv6_srh(nsegs=2, inner_proto=IPPROTO_IPV6):
    eth = bytes.fromhex("ffffffffffff001122334455") + (0x86DD).to_bytes(2, "big")
    srh = bytes([inner_proto, 2 * nsegs, 4, nsegs - 1, nsegs - 1, 0, 0, 0])
    srh += b"".join(i.to_bytes(16, "big") for i in range(1, nsegs + 1))
    inner = bytes([0x60, 0, 0, 0, 0, 0, 59, 64]) + (9).to_bytes(16, "big") + (10).to_bytes(16, "big")
    body = srh + inner
    ipv6 = bytes([0x60, 0, 0, 0]) + len(body).to_bytes(2, "big")
    ipv6 += bytes([IPPROTO_ROUTING, 64])
    ipv6 += (1).to_bytes(16, "big") + (2).to_bytes(16, "big")
    return eth + ipv6 + body


@pytest.fixture
def env():
    return standard_header_types(), standard_linkage()


class TestParseAll:
    def test_v4_stack(self, env):
        types, linkage = env
        p = Packet(eth_ipv4_udp())
        assert p.parse_all(types, linkage) == 3
        assert p.header_names() == ["ethernet", "ipv4", "udp"]

    def test_v6_stack(self, env):
        types, linkage = env
        p = Packet(eth_ipv6_tcp())
        p.parse_all(types, linkage)
        assert p.header_names() == ["ethernet", "ipv6", "tcp"]

    def test_unknown_protocol_stops(self, env):
        types, linkage = env
        p = Packet(eth_ipv6_srh())
        p.parse_all(types, linkage)
        # Base design has no SRH link: parsing stops after IPv6.
        assert p.header_names() == ["ethernet", "ipv6"]
        assert p.next_header_name is None

    def test_srv6_after_runtime_link(self, env):
        types, linkage = env
        linkage.add_link("ipv6", "srh", IPPROTO_ROUTING)
        linkage.add_link("srh", "ipv6", IPPROTO_IPV6)
        p = Packet(eth_ipv6_srh())
        p.parse_all(types, linkage)
        assert p.header_names() == ["ethernet", "ipv6", "srh", "ipv6.2"]

    def test_truncated_packet_raises(self, env):
        types, linkage = env
        data = eth_ipv4_udp()[:20]  # cuts the IPv4 header short
        p = Packet(data)
        with pytest.raises(ParseError):
            p.parse_all(types, linkage)


class TestEnsureParsed:
    def test_parses_only_to_requested_header(self, env):
        types, linkage = env
        p = Packet(eth_ipv4_udp())
        assert p.ensure_parsed(["ipv4"], types, linkage) == 2
        assert p.header_names() == ["ethernet", "ipv4"]

    def test_idempotent(self, env):
        types, linkage = env
        p = Packet(eth_ipv4_udp())
        p.ensure_parsed(["ipv4"], types, linkage)
        assert p.ensure_parsed(["ipv4"], types, linkage) == 0

    def test_missing_header_does_not_raise(self, env):
        types, linkage = env
        p = Packet(eth_ipv4_udp())
        # ipv6 never appears; parse frontier drains without error.
        p.ensure_parsed(["ipv6"], types, linkage)
        assert not p.is_valid("ipv6")


class TestHeaderMutation:
    def test_insert_and_remove(self, env):
        types, linkage = env
        p = Packet(eth_ipv6_tcp())
        p.parse_all(types, linkage)
        srh = HeaderInstance(SRH, {"next_hdr": 6, "segment_list": b""})
        p.insert_header(srh, after="ipv6")
        assert p.header_names() == ["ethernet", "ipv6", "srh", "tcp"]
        p.remove_header("srh")
        assert p.header_names() == ["ethernet", "ipv6", "tcp"]

    def test_insert_before(self, env):
        types, linkage = env
        p = Packet(eth_ipv6_tcp())
        p.parse_all(types, linkage)
        inner = HeaderInstance(IPV6, {"version": 6})
        p.insert_header(inner, before="tcp")
        assert p.header_names()[2] == "ipv6.2"

    def test_insert_with_both_anchors_rejected(self, env):
        types, linkage = env
        p = Packet(eth_ipv6_tcp())
        p.parse_all(types, linkage)
        with pytest.raises(ValueError):
            p.insert_header(HeaderInstance(IPV6), after="ipv6", before="tcp")

    def test_remove_unparsed_raises(self, env):
        p = Packet(eth_ipv6_tcp())
        with pytest.raises(KeyError):
            p.remove_header("ipv6")


class TestEmit:
    def test_emit_unmodified_equals_wire(self, env):
        types, linkage = env
        p = Packet(eth_ipv4_udp())
        p.parse_all(types, linkage)
        assert p.emit() == p.data

    def test_emit_reflects_field_writes(self, env):
        types, linkage = env
        p = Packet(eth_ipv4_udp())
        p.parse_all(types, linkage)
        p.write("ipv4.ttl", 1)
        out = p.emit()
        assert out[14 + 8] == 1
        assert out != p.data

    def test_partial_parse_keeps_tail(self, env):
        types, linkage = env
        p = Packet(eth_ipv4_udp(payload=b"PAYLOAD"))
        p.ensure_parsed(["ipv4"], types, linkage)
        assert p.emit() == p.data  # unparsed UDP+payload carried as bytes


class TestMetadataAndRefs:
    def test_intrinsic_metadata(self):
        p = Packet(b"\x00" * 64, ingress_port=3)
        assert p.metadata["ingress_port"] == 3
        assert p.metadata["packet_length"] == 64

    def test_read_write_meta(self):
        p = Packet(b"\x00" * 64)
        p.write("meta.bd", 7)
        assert p.read("meta.bd") == 7

    def test_read_unknown_meta_raises(self):
        with pytest.raises(KeyError):
            Packet(b"").read("meta.nope")

    def test_malformed_ref_raises(self):
        with pytest.raises(ValueError):
            Packet(b"").read("justaname")

    def test_read_header_field(self, env):
        types, linkage = env
        p = Packet(eth_ipv4_udp())
        p.parse_all(types, linkage)
        assert p.read("ipv4.ttl") == 0x40
        p.write("ipv4.ttl", 0x3F)
        assert p.read("ipv4.ttl") == 0x3F

    def test_clone_deep(self, env):
        types, linkage = env
        p = Packet(eth_ipv4_udp())
        p.parse_all(types, linkage)
        c = p.clone()
        c.write("ipv4.ttl", 1)
        c.metadata["egress_spec"] = 9
        assert p.read("ipv4.ttl") == 0x40
        assert p.metadata["egress_spec"] == 0

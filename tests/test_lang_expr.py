"""Unit tests for the shared expression parser."""

import pytest

from repro.lang.errors import LangError
from repro.lang.expr import (
    EBin,
    ECall,
    EConst,
    ERef,
    EUnary,
    EValid,
    parse_expr,
)
from repro.lang.lexer import Lexer


def parse(text):
    return parse_expr(Lexer(text))


class TestPrimary:
    def test_const(self):
        assert parse("42") == EConst(42)

    def test_hex_const(self):
        assert parse("0x800") == EConst(0x800)

    def test_width_literal(self):
        assert parse("8w255") == EConst(255, width=8)

    def test_hex_width_literal(self):
        assert parse("16w0x1F") == EConst(0x1F, width=16)

    def test_bare_ref(self):
        assert parse("bd") == ERef("bd")

    def test_dotted_ref(self):
        assert parse("ipv4.dst_addr") == ERef("ipv4.dst_addr")

    def test_is_valid(self):
        assert parse("ipv4.isValid()") == EValid("ipv4")

    def test_call(self):
        expr = parse("hash(meta.nexthop, ipv4.dst_addr)")
        assert expr == ECall(
            "hash", (ERef("meta.nexthop"), ERef("ipv4.dst_addr"))
        )

    def test_not(self):
        assert parse("!x") == EUnary("!", ERef("x"))

    def test_parens(self):
        assert parse("(1)") == EConst(1)

    def test_error_on_garbage(self):
        with pytest.raises(LangError):
            parse(";")


class TestPrecedence:
    def test_arith_precedence(self):
        assert parse("1 + 2 * 3") == EBin(
            "+", EConst(1), EBin("*", EConst(2), EConst(3))
        )

    def test_comparison_binds_tighter_than_logic(self):
        expr = parse("a == 1 && b == 2")
        assert isinstance(expr, EBin) and expr.op == "&&"
        assert expr.left == EBin("==", ERef("a"), EConst(1))

    def test_left_associativity(self):
        assert parse("1 - 2 - 3") == EBin(
            "-", EBin("-", EConst(1), EConst(2)), EConst(3)
        )

    def test_valid_in_conjunction(self):
        expr = parse("ipv4.isValid() && meta.l3_fwd == 1")
        assert expr == EBin(
            "&&",
            EValid("ipv4"),
            EBin("==", ERef("meta.l3_fwd"), EConst(1)),
        )

    def test_parens_override(self):
        assert parse("(1 + 2) * 3") == EBin(
            "*", EBin("+", EConst(1), EConst(2)), EConst(3)
        )

    def test_shift_binds_tighter_than_mask(self):
        expr = parse("x >> 4 & 0xF")
        assert expr == EBin(
            "&", EBin(">>", ERef("x"), EConst(4)), EConst(0xF)
        )

"""rp4verify: symbolic differential verification of staged updates.

The acceptance bar for the verifier: every shipped base+snippet
staging verifies clean under the error-mode gate, a tampered update
is caught at the prepare gate *before* any epoch flip with the device
left byte-identical, and every reported divergence carries a witness
packet that observably reproduces the divergence when replayed
through the live and shadow views -- the parity test is never
vacuous.
"""

import pytest

from repro.analysis.diag import Severity
from repro.analysis.verify import (
    DeviceView,
    Domain,
    VerifyConfig,
    _replay_outcomes_differ,
    claimed_entities,
    replay,
    verify_txn,
)
from repro.programs import (
    acl_load_script,
    acl_rp4_source,
    base_rp4_source,
    ecmp_load_script,
    ecmp_rp4_source,
    populate_base_tables,
)
from repro.runtime.controller import Controller, UnsafeUpdateError
from repro.runtime.fabric import Fabric, RolloutError
from tests.analysis_fixtures import staged_base_controller, tamper_port_map
from tests.test_txn_updates import ipsa_state


def ecmp_sources():
    return ecmp_load_script(), {"ecmp.rp4": ecmp_rp4_source()}


def acl_sources():
    return acl_load_script(), {"acl.rp4": acl_rp4_source()}


# -- interval domains --------------------------------------------------------


class TestDomain:
    def test_full_width(self):
        dom = Domain(8)
        assert dom.contains(0) and dom.contains(255)
        assert not dom.contains(256)
        assert dom.pick() == 0

    def test_eq_pins_and_ne_splits(self):
        dom = Domain(8).constrain("==", 7)
        assert dom.pick() == 7
        assert not dom.contains(6)
        dom = Domain(8).constrain("!=", 0)
        assert not dom.contains(0)
        assert dom.pick() == 1

    def test_ordering_refinement(self):
        dom = Domain(8).constrain(">=", 10).constrain("<", 12)
        assert dom.contains(10) and dom.contains(11)
        assert not dom.contains(12)

    def test_contradiction_is_empty(self):
        dom = Domain(8).constrain("==", 3).constrain("==", 4)
        assert dom.empty


# -- the known-safe suite ----------------------------------------------------


class TestCleanUpdates:
    def test_ecmp_staging_verifies_clean_exhaustively(self):
        controller = staged_base_controller()
        script, sources = ecmp_sources()
        staged = controller.stage_update(script, sources)
        try:
            report = verify_txn(
                controller.switch, staged.txn, plan=staged.plan,
                config=VerifyConfig(exhaustive=True),
            )
        finally:
            staged.abort()
        assert report.enumerated and not report.truncated
        assert report.classes  # enumeration actually ran
        assert report.drift == []  # template regeneration is deterministic
        assert report.unintended == []
        assert report.errors() == []
        # The rehosted stages really changed flow behavior -- the
        # clean verdict is "intended", not "saw nothing".
        assert report.intended

    def test_error_gate_commits_known_safe_update(self):
        controller = staged_base_controller(verify_updates="error")
        script, sources = ecmp_sources()
        staged = controller.stage_update(script, sources)
        staged.commit()
        assert "ecmp_ipv4" in controller.switch.tables
        report = controller.last_verify
        assert report is not None and report.errors() == []

    def test_gate_fast_path_skips_enumeration_without_drift(self):
        controller = staged_base_controller(verify_updates="warn")
        script, sources = ecmp_sources()
        staged = controller.stage_update(script, sources)
        staged.abort()
        report = controller.last_verify
        assert report is not None
        assert not report.enumerated  # structural tier only
        assert report.drift == []

    def test_claimed_entities_cover_the_plan(self):
        controller = staged_base_controller()
        script, sources = ecmp_sources()
        staged = controller.stage_update(script, sources)
        claimed = claimed_entities(staged.plan)
        staged.abort()
        assert "stage:ecmp" in claimed
        assert "stage:nexthop" in claimed  # removed stages are claimed too
        assert "table:nexthop" in claimed


# -- the tampered update -----------------------------------------------------


@pytest.fixture(scope="module")
def tampered():
    """One tampered ACL staging shared by the divergence tests: the
    update channel corrupts the rehosted ``port_map`` stage, which the
    plan does not claim, so every flow through it is unclaimed drift."""
    controller = staged_base_controller()
    tamper_port_map(controller)
    script, sources = acl_sources()
    staged = controller.stage_update(script, sources)
    report = verify_txn(controller.switch, staged.txn, plan=staged.plan)
    live = DeviceView.from_switch(controller.switch)
    shadow = DeviceView.from_txn(staged.txn)
    yield report, live, shadow
    staged.abort()


class TestTamperedUpdate:
    def test_unclaimed_drift_detected(self, tampered):
        report, _live, _shadow = tampered
        assert "stage:port_map" in report.drift
        assert any(d.rule == "RP4L503" for d in report.diagnostics)

    def test_unintended_divergences_found_and_confirmed(self, tampered):
        report, _live, _shadow = tampered
        assert report.unintended
        confirmed = [c for c in report.unintended if c.confirmed]
        assert confirmed  # at least one witness reproduced the divergence
        assert any(
            d.rule == "RP4L501" and d.severity is Severity.ERROR
            for d in report.diagnostics
        )

    def test_witness_parity_live_vs_shadow(self, tampered):
        """Every confirmed divergence's witness, replayed through both
        views, produces observably different outcomes -- and the test
        replays at least one witness (never vacuous)."""
        report, live, shadow = tampered
        replayed = 0
        for cls in report.unintended:
            if cls.witness is None or not cls.confirmed:
                continue
            live_out = replay(live, cls.witness.data, cls.witness.port)
            shadow_out = replay(shadow, cls.witness.data, cls.witness.port)
            assert _replay_outcomes_differ(live_out, shadow_out), (
                f"flow class #{cls.index}: witness "
                f"{cls.witness.data.hex()} replayed identically"
            )
            replayed += 1
        assert replayed > 0

    def test_tampered_witnesses_drop_only_in_shadow(self, tampered):
        """The tamper rewires ``port_map`` to drop: shadow replay must
        drop packets the live view still forwards."""
        report, live, shadow = tampered
        for cls in report.unintended:
            if cls.witness is None or not cls.confirmed:
                continue
            live_out = replay(live, cls.witness.data, cls.witness.port)
            shadow_out = replay(shadow, cls.witness.data, cls.witness.port)
            assert shadow_out.get("drop") is True
            assert live_out.get("drop") is not True

    def test_unconfirmed_findings_downgrade_to_warning(self):
        """With replay confirmation off, every RP4L501 is a warning --
        only a confirmed witness earns error severity."""
        controller = staged_base_controller()
        tamper_port_map(controller)
        script, sources = acl_sources()
        staged = controller.stage_update(script, sources)
        try:
            report = verify_txn(
                controller.switch, staged.txn, plan=staged.plan,
                config=VerifyConfig(witnesses=False, confirm=False),
            )
        finally:
            staged.abort()
        findings = [d for d in report.diagnostics if d.rule == "RP4L501"]
        assert findings
        assert all(d.severity is Severity.WARNING for d in findings)
        assert report.errors() == []


# -- the controller gate -----------------------------------------------------


class TestControllerGate:
    def test_error_gate_rejects_before_epoch_flip(self):
        controller = staged_base_controller(verify_updates="error")
        tamper_port_map(controller)
        before = ipsa_state(controller.switch)
        script, sources = acl_sources()
        with pytest.raises(UnsafeUpdateError) as excinfo:
            controller.stage_update(script, sources)
        assert excinfo.value.gate == "rp4verify"
        assert excinfo.value.diagnostics
        assert "rp4verify" in str(excinfo.value)
        # Caught while still shadow: the live device is untouched.
        assert ipsa_state(controller.switch) == before
        assert controller.switch.inject_batch([]) is not None  # still alive

    def test_warn_gate_reports_but_does_not_reject(self):
        controller = staged_base_controller(verify_updates="warn")
        tamper_port_map(controller)
        script, sources = acl_sources()
        staged = controller.stage_update(script, sources)
        staged.abort()
        report = controller.last_verify
        assert report is not None and report.errors()

    def test_off_gate_never_runs(self):
        controller = staged_base_controller(verify_updates="off")
        script, sources = ecmp_sources()
        staged = controller.stage_update(script, sources)
        staged.abort()
        assert controller.last_verify is None

    def test_bad_gate_mode_rejected(self):
        with pytest.raises(ValueError):
            Controller(verify_updates="paranoid")


# -- verify-before-canary ----------------------------------------------------


def base_node():
    controller = Controller()
    controller.load_base(base_rp4_source())
    populate_base_tables(controller.switch.tables)
    return controller


class TestFabricVerifyGate:
    def test_tampered_canary_aborts_whole_rollout(self):
        fabric = Fabric()
        fabric.add_node("A", base_node())
        fabric.add_node("B", base_node())
        tamper_port_map(fabric.node("A"))
        before_b = ipsa_state(fabric.node("B").switch)
        epoch_a = fabric.node("A").switch.dp.epoch
        script, sources = acl_sources()
        with pytest.raises(RolloutError) as excinfo:
            fabric.staged_rollout(script, sources)
        err = excinfo.value
        assert err.failed == "A"
        assert isinstance(err.cause, UnsafeUpdateError)
        assert err.cause.gate == "rp4verify"
        assert err.updated == []  # rejected before any commit
        assert err.pending == ["B"]
        # No node in the fabric flipped an epoch.
        assert fabric.node("A").switch.dp.epoch == epoch_a
        assert ipsa_state(fabric.node("B").switch) == before_b
        # The canary override is scoped to the rollout.
        assert fabric.node("A").verify_updates == "warn"

    def test_clean_rollout_passes_error_gate(self):
        fabric = Fabric()
        fabric.add_node("A", base_node())
        fabric.add_node("B", base_node())
        script, sources = ecmp_sources()
        report = fabric.staged_rollout(script, sources)
        assert report.canary == "A"
        for name in ("A", "B"):
            assert "ecmp_ipv4" in fabric.node(name).switch.tables
        assert fabric.node("A").verify_updates == "warn"  # restored

"""Integration tests: in-service updates under live traffic.

These exercise the paper's headline claim end to end: traffic flows,
a function is loaded/offloaded at runtime, existing table state
survives, and traffic (including the new protocol) flows again.
"""

import pytest

from repro.runtime import Controller
from repro.programs import (
    base_rp4_source,
    ecmp_load_script,
    ecmp_rp4_source,
    flowprobe_load_script,
    flowprobe_rp4_source,
    populate_base_tables,
    populate_ecmp_tables,
    populate_flowprobe_tables,
    populate_srv6_tables,
    srv6_load_script,
    srv6_rp4_source,
)
from repro.workloads import ipv4_packet, ipv6_packet, srv6_packet


@pytest.fixture
def controller():
    ctl = Controller()
    ctl.load_base(base_rp4_source())
    populate_base_tables(ctl.switch.tables)
    return ctl


def v4_probe(ctl, dst="10.2.0.5", sport=1234):
    return ctl.switch.inject(ipv4_packet("10.1.0.1", dst, sport=sport), 0)


class TestEcmpLifecycle:
    def test_full_lifecycle(self, controller):
        # 1. Traffic flows before the update.
        assert v4_probe(controller).port == 3

        # 2. Load ECMP in service.
        plan, stats, _ = controller.run_script(
            ecmp_load_script(), {"ecmp.rp4": ecmp_rp4_source()}
        )
        populate_ecmp_tables(controller.switch.tables)

        # 3. Flows (distinct destinations -- the Fig. 5(a) key hashes
        #    nexthop + dst_addr) spread across the member links,
        #    deterministically per flow.
        ports = {
            v4_probe(controller, dst=f"10.2.0.{i + 1}").port for i in range(40)
        }
        assert ports == {2, 3}
        first = v4_probe(controller, dst="10.2.0.7").port
        assert all(
            v4_probe(controller, dst="10.2.0.7").port == first for _ in range(5)
        )

        # 4. The replaced stage's table is gone, base tables intact.
        assert "nexthop" not in controller.switch.tables
        assert len(controller.switch.table("ipv4_lpm")) == 3

    def test_ipv6_ecmp_too(self, controller):
        controller.run_script(ecmp_load_script(), {"ecmp.rp4": ecmp_rp4_source()})
        populate_ecmp_tables(controller.switch.tables)
        ports = set()
        for i in range(40):
            out = controller.switch.inject(
                ipv6_packet("2001:db8:1::1", f"2001:db8:2::{i + 1:x}"), 0
            )
            assert out is not None
            ports.add(out.port)
        assert ports == {2, 3}


class TestSrv6Lifecycle:
    def test_new_protocol_at_runtime(self, controller):
        endpoint_packet = srv6_packet(
            src="2001:db8:9::1",
            active_sid="2001:db8:100::1",
            segments=["2001:db8:2::1", "2001:db8:100::1"],
            segments_left=1,
        )
        # Before the update the switch cannot interpret the SRH: the
        # packet is treated as an unroutable IPv6 destination.
        before = controller.switch.inject(endpoint_packet, 0)
        assert before is None or before.port == 1  # default-route fallback

        controller.run_script(srv6_load_script(), {"srv6.rp4": srv6_rp4_source()})
        populate_srv6_tables(controller.switch.tables)

        out = controller.switch.inject(endpoint_packet, 0)
        assert out is not None and out.port == 3
        # End behavior: segments_left decremented, DA = next segment.
        srh_off = 14 + 40
        assert out.data[srh_off + 3] == 0
        assert out.data[14 + 24 : 14 + 40] == bytes.fromhex(
            "20010db8000200000000000000000001"
        )

    def test_plain_l3_still_works(self, controller):
        """'the linkage between routable and ipvx is reserved'"""
        controller.run_script(srv6_load_script(), {"srv6.rp4": srv6_rp4_source()})
        populate_srv6_tables(controller.switch.tables)
        assert v4_probe(controller).port == 3
        out = controller.switch.inject(
            ipv6_packet("2001:db8:1::1", "2001:db8:2::9"), 0
        )
        assert out is not None and out.port == 3

    def test_offload_srv6(self, controller):
        controller.run_script(srv6_load_script(), {"srv6.rp4": srv6_rp4_source()})
        populate_srv6_tables(controller.switch.tables)
        controller.run_script("unload --func_name srv6")
        assert "local_sid" not in controller.switch.tables
        assert v4_probe(controller).port == 3


class TestFlowProbeLifecycle:
    def test_threshold_marks_to_cpu_path(self, controller):
        controller.run_script(
            flowprobe_load_script(), {"flowprobe.rp4": flowprobe_rp4_source()}
        )
        populate_flowprobe_tables(controller.switch.tables)
        # Threshold for (10.1.0.1, 10.2.0.1) is 5.
        marks = []
        for _ in range(8):
            out = controller.switch.inject(
                ipv4_packet("10.1.0.1", "10.2.0.1", sport=5000), 0
            )
            assert out is not None
        entry = controller.switch.table("flow_probe").entries()[0]
        assert entry.counter == 8

    def test_unprobed_flows_unaffected(self, controller):
        controller.run_script(
            flowprobe_load_script(), {"flowprobe.rp4": flowprobe_rp4_source()}
        )
        populate_flowprobe_tables(controller.switch.tables)
        out = v4_probe(controller, dst="10.2.9.9")
        assert out is not None
        for entry in controller.switch.table("flow_probe").entries():
            assert entry.counter == 0


class TestChainedLifecycles:
    def test_probe_then_ecmp_then_offload(self, controller):
        controller.run_script(
            flowprobe_load_script(), {"flowprobe.rp4": flowprobe_rp4_source()}
        )
        populate_flowprobe_tables(controller.switch.tables)
        controller.run_script(ecmp_load_script(), {"ecmp.rp4": ecmp_rp4_source()})
        populate_ecmp_tables(controller.switch.tables)

        out = v4_probe(controller, dst="10.2.0.1", sport=5000)
        assert out is not None and out.port in (2, 3)
        assert controller.switch.table("flow_probe").entries()[0].counter == 1

        controller.run_script("unload --func_name flow_probe")
        assert "flow_probe" not in controller.switch.tables
        assert v4_probe(controller).port in (2, 3)

    def test_update_preserves_counters(self, controller):
        v4_probe(controller)
        hits_before = controller.switch.table("ipv4_lpm").hit_count
        controller.run_script(
            flowprobe_load_script(), {"flowprobe.rp4": flowprobe_rp4_source()}
        )
        # Table objects survive in place: stats are not reset.
        assert controller.switch.table("ipv4_lpm").hit_count == hits_before


class TestFunctionUpdateInPlace:
    """The paper mentions function *update* (replace in place); a
    single script with unload + load does it atomically."""

    def test_replace_probe_with_wider_probe(self, controller):
        controller.run_script(
            flowprobe_load_script(), {"flowprobe.rp4": flowprobe_rp4_source()}
        )
        populate_flowprobe_tables(controller.switch.tables)

        # v2 of the probe: bigger table, keyed on dst only.
        probe_v2 = """
        table flow_probe_v2 {
            key = { ipv4.dst_addr: exact; }
            size = 4096;
        }
        action probe_count2(bit<32> threshold) {
            count_and_mark(threshold, meta.flow_marked);
        }
        stage flow_probe_v2 {
            parser { ipv4 };
            matcher {
                if (ipv4.isValid()) flow_probe_v2.apply();
                else;
            };
            executor {
                1: probe_count2;
                default: NoAction;
            }
        }
        user_funcs { func flow_probe_v2 { flow_probe_v2 } }
        """
        replace_script = """
        unload --func_name flow_probe
        load probe2.rp4 --func_name flow_probe_v2
        add_link l2_l3 flow_probe_v2
        del_link l2_l3 ipv4_lpm
        add_link flow_probe_v2 ipv4_lpm
        """
        plan, stats, _ = controller.run_script(
            replace_script, {"probe2.rp4": probe_v2}
        )
        assert "flow_probe" in plan.removed_stages
        assert "flow_probe_v2" in plan.added_stages
        assert plan.freed_tables == ["flow_probe"]
        assert plan.new_tables == ["flow_probe_v2"]
        assert "flow_probe" not in controller.switch.tables

        from repro.net.addresses import parse_ipv4
        from repro.tables.table import TableEntry

        controller.switch.table("flow_probe_v2").add_entry(
            TableEntry(
                key=(parse_ipv4("10.2.0.1"),),
                action="probe_count2",
                action_data={"threshold": 1},
                tag=1,
            )
        )
        out = v4_probe(controller, dst="10.2.0.1")
        assert out is not None
        assert controller.switch.table("flow_probe_v2").entries()[0].counter == 1

"""The per-stage profiler: attribution, aggregation, live switches."""

import pytest

from repro.bench.scenarios import case_trace, make_ipsa, make_pisa
from repro.obs.clock import ManualClock
from repro.obs.prof import PHASES, Profiler, format_profile
from repro.programs import base_rp4_source, populate_base_tables
from repro.runtime import Controller
from repro.workloads import ipv4_packet


class TestProfilerCore:
    def test_add_accumulates_time_and_work(self):
        clock = ManualClock(tick=0.5)
        profiler = Profiler(clock=clock)
        started = profiler.now()
        profiler.add(("tsp0", "match", "t"), started, lookups=1)
        started = profiler.now()
        profiler.add(("tsp0", "match", "t"), started, lookups=1)
        record = profiler.records[("tsp0", "match", "t")]
        assert record.calls == 2
        assert record.seconds == 1.0  # two regions, one 0.5s tick each
        assert record.work == {"lookups": 2}

    def test_count_is_untimed(self):
        profiler = Profiler(clock=ManualClock(tick=1.0))
        profiler.count(("tm", "enqueue"), enqueues=3)
        record = profiler.records[("tm", "enqueue")]
        assert record.seconds == 0.0
        assert record.work == {"enqueues": 3}

    def test_phase_is_second_path_element(self):
        profiler = Profiler(clock=ManualClock(tick=1.0))
        profiler.add(("tsp3", "match", "ipv4_lpm"), profiler.now())
        profiler.add(("parser", "parse"), profiler.now())
        phases = profiler.phase_seconds()
        assert set(phases) == {"match", "parse"}
        for phase in phases:
            assert phase in PHASES

    def test_phase_shares_sum_to_one(self):
        clock = ManualClock()
        profiler = Profiler(clock=clock)
        started = profiler.now()
        clock.advance(3.0)
        profiler.add(("tsp0", "parse"), started)
        started = profiler.now()
        clock.advance(1.0)
        profiler.add(("tsp0", "match", "t"), started)
        shares = profiler.phase_shares()
        assert shares == {"parse": 0.75, "match": 0.25}
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_engine_attribution(self):
        profiler = Profiler()
        profiler.note_engine("lpm")
        profiler.note_engine("lpm")
        profiler.note_engine("exact")
        assert profiler.engine_lookups == {"lpm": 2, "exact": 1}

    def test_reset(self):
        profiler = Profiler(clock=ManualClock(tick=1.0))
        profiler.add(("tsp0", "parse"), profiler.now())
        profiler.packets = 5
        profiler.reset()
        assert not profiler.records
        assert profiler.packets == 0

    def test_folded_microsecond_weights(self):
        clock = ManualClock()
        profiler = Profiler(clock=clock)
        started = profiler.now()
        clock.advance(0.000127)
        profiler.add(("tsp3", "match", "ipv4_lpm"), started)
        profiler.count(("tm", "enqueue"), enqueues=2)
        lines = profiler.folded(root="ipsa")
        assert "ipsa;tsp3;match;ipv4_lpm 127" in lines
        # Counter-only paths fall back to call-count weight.
        assert "ipsa;tm;enqueue 1" in lines

    def test_to_dict_shape(self):
        profiler = Profiler(clock=ManualClock(tick=1.0))
        profiler.add(("tsp0", "parse"), profiler.now(), headers=2)
        profiler.packets = 1
        data = profiler.to_dict()
        assert data["packets"] == 1
        assert data["work"] == {"headers": 2}
        assert data["records"][0]["path"] == ["tsp0", "parse"]

    def test_format_profile_renders_table(self):
        profiler = Profiler(clock=ManualClock(tick=0.001))
        profiler.add(("tsp0", "match", "t"), profiler.now(), lookups=1)
        profiler.note_engine("exact")
        profiler.packets = 1
        text = format_profile(profiler)
        assert "tsp0;match;t" in text
        assert "lookups=1" in text
        assert "phases: match=100.0%" in text
        assert "engines: exact=1" in text


class TestIpsaProfiling:
    @pytest.fixture
    def switch(self):
        return make_ipsa("base")

    def test_off_by_default(self, switch):
        switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), port=0)
        assert switch.profiler is None

    def test_attributes_every_phase(self, switch):
        profiler = switch.enable_profiling()
        out = switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), port=0)
        assert out is not None and out.port == 3
        phases = set(profiler.phase_seconds())
        assert {"parse", "match", "execute", "enqueue", "dequeue"} <= phases
        assert profiler.packets == 1
        assert profiler.work_totals()["lookups"] >= 1

    def test_profiled_run_forwards_identically(self, switch):
        data = ipv4_packet("10.1.0.1", "10.2.0.5")
        plain = switch.inject(data, port=0)
        switch.enable_profiling()
        profiled = switch.inject(data, port=0)
        assert profiled.port == plain.port
        assert profiled.data == plain.data

    def test_tracer_takes_priority_over_profiler(self, switch):
        switch.enable_tracing()
        profiler = switch.enable_profiling()
        switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), port=0)
        # The traced twin ran; per-TSP profile records stay empty.
        assert len(switch.tracer.traces) == 1
        assert not any(p[0].startswith("tsp") for p in profiler.records)

    def test_disable_returns_and_detaches(self, switch):
        profiler = switch.enable_profiling()
        assert switch.disable_profiling() is profiler
        assert switch.profiler is None

    def test_engine_kinds_observed(self):
        switch = make_ipsa("C1")
        profiler = switch.enable_profiling()
        for data, port in case_trace("C1", 20):
            switch.inject(data, port)
        assert "lpm" in profiler.engine_lookups
        assert "hash" in profiler.engine_lookups  # the ECMP selector


class TestPisaProfiling:
    @pytest.fixture
    def switch(self):
        return make_pisa("base")

    def test_attributes_parse_match_execute_deparse(self, switch):
        profiler = switch.enable_profiling()
        out = switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), port=0)
        assert out is not None
        phases = set(profiler.phase_seconds())
        assert {"parse", "match", "execute", "deparse"} <= phases
        assert ("parser", "parse") in profiler.records
        assert ("deparser", "deparse") in profiler.records

    def test_profiled_run_forwards_identically(self, switch):
        data = ipv4_packet("10.1.0.1", "10.2.0.5")
        plain = switch.inject(data, port=0)
        switch.enable_profiling()
        profiled = switch.inject(data, port=0)
        assert profiled.port == plain.port
        assert profiled.data == plain.data


class TestProfilerSurvivesUpdates:
    def test_profile_spans_an_in_situ_update(self):
        from repro.programs import ecmp_load_script, ecmp_rp4_source
        from repro.programs import populate_ecmp_tables

        controller = Controller()
        controller.load_base(base_rp4_source())
        populate_base_tables(controller.switch.tables)
        profiler = controller.switch.enable_profiling()
        trace = case_trace("base", 10)
        for data, port in trace:
            controller.switch.inject(data, port)
        controller.run_script(
            ecmp_load_script(), {"ecmp.rp4": ecmp_rp4_source()}
        )
        populate_ecmp_tables(controller.switch.tables)
        for data, port in case_trace("C1", 10):
            controller.switch.inject(data, port)
        # Same profiler object, both before- and after-update packets.
        assert controller.switch.profiler is profiler
        assert profiler.packets == 20
        assert any("ecmp" in ";".join(p) for p in profiler.records)

"""Property-based tests (hypothesis) for the packet substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.addresses import (
    format_ipv4,
    format_ipv6,
    format_mac,
    parse_ipv4,
    parse_ipv6,
    parse_mac,
)
from repro.net.checksum import internet_checksum
from repro.net.fields import deposit_bits, extract_bits, mask_to_width
from repro.net.headers import ETHERNET, IPV4, IPV6, SRH, UDP, HeaderType


widths = st.integers(min_value=1, max_value=128)


class TestFieldProperties:
    @given(value=st.integers(min_value=0), width=widths)
    def test_mask_idempotent(self, value, width):
        once = mask_to_width(value, width)
        assert mask_to_width(once, width) == once
        assert 0 <= once < (1 << width)

    @given(
        offset=st.integers(min_value=0, max_value=64),
        width=widths,
        value=st.integers(min_value=0),
    )
    def test_deposit_extract_roundtrip(self, offset, width, value):
        buf = bytearray((offset + width + 7) // 8 + 2)
        deposit_bits(buf, offset, width, value)
        assert extract_bits(bytes(buf), offset, width) == mask_to_width(
            value, width
        )

    @given(
        offset=st.integers(min_value=8, max_value=32),
        width=st.integers(min_value=1, max_value=16),
        value=st.integers(min_value=0),
    )
    def test_deposit_preserves_neighbours(self, offset, width, value):
        buf = bytearray(b"\xa5" * 8)
        before = bytes(buf)
        deposit_bits(buf, offset, width, value)
        # Bits before the window are untouched.
        assert extract_bits(bytes(buf), 0, offset) == extract_bits(
            before, 0, offset
        )
        tail_offset = offset + width
        tail_width = len(buf) * 8 - tail_offset
        assert extract_bits(bytes(buf), tail_offset, tail_width) == extract_bits(
            before, tail_offset, tail_width
        )


class TestAddressProperties:
    @given(st.integers(min_value=0, max_value=(1 << 48) - 1))
    def test_mac_roundtrip(self, value):
        assert parse_mac(format_mac(value)) == value

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_ipv4_roundtrip(self, value):
        assert parse_ipv4(format_ipv4(value)) == value

    @given(st.integers(min_value=0, max_value=(1 << 128) - 1))
    def test_ipv6_roundtrip(self, value):
        assert parse_ipv6(format_ipv6(value)) == value


class TestChecksumProperties:
    @given(st.binary(min_size=0, max_size=128))
    def test_checksum_verifies(self, data):
        csum = internet_checksum(data)
        padded = data + b"\x00" if len(data) % 2 else data
        assert internet_checksum(padded + csum.to_bytes(2, "big")) == 0

    @given(st.binary(max_size=64))
    def test_checksum_range(self, data):
        assert 0 <= internet_checksum(data) <= 0xFFFF


def header_values(htype: HeaderType):
    """Strategy for random field values of a header type."""
    fixed = {
        f.name: st.integers(min_value=0, max_value=(1 << f.width) - 1)
        for f in htype.fields
    }
    return st.fixed_dictionaries(fixed)


class TestHeaderRoundTrip:
    @given(values=header_values(ETHERNET))
    def test_ethernet(self, values):
        wire = ETHERNET.pack(values)
        decoded, bits = ETHERNET.unpack(wire)
        assert decoded == values and bits == len(wire) * 8

    @given(values=header_values(IPV4))
    def test_ipv4(self, values):
        decoded, _ = IPV4.unpack(IPV4.pack(values))
        assert decoded == values

    @given(values=header_values(IPV6))
    def test_ipv6(self, values):
        decoded, _ = IPV6.unpack(IPV6.pack(values))
        assert decoded == values

    @given(values=header_values(UDP))
    def test_udp(self, values):
        decoded, _ = UDP.unpack(UDP.pack(values))
        assert decoded == values

    @given(
        values=header_values(SRH),
        nsegs=st.integers(min_value=0, max_value=4),
        seg_data=st.binary(min_size=64, max_size=64),
    )
    @settings(max_examples=50)
    def test_srh_with_varlen(self, values, nsegs, seg_data):
        values = dict(values)
        values["hdr_ext_len"] = 2 * nsegs
        values["segment_list"] = (seg_data * 2)[: nsegs * 16]
        wire = SRH.pack(values)
        decoded, bits = SRH.unpack(wire)
        assert decoded == values
        assert bits == 64 + nsegs * 128

"""Unit tests for rP4 semantic analysis."""

import pytest

from repro.rp4 import analyze, parse_rp4
from repro.rp4.semantic import SemanticError, analyze_incremental
from repro.programs import base_rp4_source, ecmp_rp4_source


@pytest.fixture
def base():
    return parse_rp4(base_rp4_source())


class TestBaseDesign:
    def test_analyzes_clean(self, base):
        info = analyze(base)
        assert not info.warnings
        assert len(info.stage_order) == 10

    def test_table_info(self, base):
        info = analyze(base)
        fib = info.tables["ipv4_lpm"]
        assert fib.key_width == 16 + 32
        assert fib.match_kind == "lpm"
        assert fib.size == 4096
        assert info.tables["ipv6_host"].key_width == 16 + 128
        assert info.tables["dmac"].match_kind == "exact"


class TestErrors:
    def test_unknown_table_in_matcher(self):
        src = """
        stage s { parser { }; matcher { ghost.apply(); }; executor { } }
        """
        with pytest.raises(SemanticError, match="ghost"):
            analyze(parse_rp4(src), require_entries=False)

    def test_unknown_action_in_executor(self):
        src = """
        table t { key = { meta.drop: exact; } }
        stage s { parser { }; matcher { t.apply(); }; executor { 1: ghost; } }
        """
        with pytest.raises(SemanticError, match="ghost"):
            analyze(parse_rp4(src), require_entries=False)

    def test_unresolved_key_field(self):
        src = "table t { key = { nowhere.x: exact; } }"
        with pytest.raises(SemanticError, match="nowhere.x"):
            analyze(parse_rp4(src), require_entries=False)

    def test_unknown_primitive(self):
        src = "action a() { teleport(); }"
        with pytest.raises(SemanticError, match="teleport"):
            analyze(parse_rp4(src), require_entries=False)

    def test_undeclared_parser_header(self):
        src = "stage s { parser { mystery }; matcher { }; executor { } }"
        with pytest.raises(SemanticError, match="mystery"):
            analyze(parse_rp4(src), require_entries=False)

    def test_missing_entries_flagged(self):
        src = """
        control rP4_Ingress {
            stage s { parser { }; matcher { }; executor { } }
        }
        """
        with pytest.raises(SemanticError, match="ingress_entry"):
            analyze(parse_rp4(src))

    def test_entries_not_required_for_snippets(self):
        prog = parse_rp4("stage s { parser { }; matcher { }; executor { } }")
        analyze(prog, require_entries=False)  # must not raise

    def test_builtin_actions_allowed(self):
        src = """
        table t { key = { meta.drop: exact; } }
        stage s { parser { }; matcher { t.apply(); };
                  executor { 1: drop; default: NoAction; } }
        """
        analyze(parse_rp4(src), require_entries=False)

    def test_errors_are_collected(self):
        src = """
        table t { key = { nowhere.x: exact; nowhere.y: exact; } }
        """
        with pytest.raises(SemanticError) as exc:
            analyze(parse_rp4(src), require_entries=False)
        assert len(exc.value.errors) == 2


class TestIncremental:
    def test_merged_snippet(self, base):
        old_info = analyze(base)
        snippet = parse_rp4(ecmp_rp4_source())
        base.merge(snippet)
        info = analyze_incremental(
            base, old_info, ["ecmp"], ["ecmp_ipv4", "ecmp_ipv6"]
        )
        assert "ecmp_ipv4" in info.tables
        assert info.tables["ecmp_ipv4"].match_kind == "hash"
        # Surviving tables keep their old resolution objects.
        assert info.tables["ipv4_lpm"] is old_info.tables["ipv4_lpm"]

    def test_incremental_catches_bad_snippet(self, base):
        old_info = analyze(base)
        snippet = parse_rp4(
            "table bad { key = { ghost.x: exact; } }"
            "stage s2 { parser { }; matcher { bad.apply(); }; executor { } }"
        )
        base.merge(snippet)
        with pytest.raises(SemanticError, match="ghost"):
            analyze_incremental(base, old_info, ["s2"], ["bad"])

"""Unit tests for pcap trace I/O."""

import io

import pytest

from repro.net.pcap import (
    PcapError,
    PcapReader,
    PcapWriter,
    load_trace,
    save_trace,
)
from repro.workloads import ipv4_packet, mixed_l3_trace


class TestRoundTrip:
    def test_single_packet(self):
        buf = io.BytesIO()
        writer = PcapWriter(buf)
        data = ipv4_packet("10.0.0.1", "10.0.0.2")
        writer.write(data, ts_usec=1_500_000)
        buf.seek(0)
        records = PcapReader(buf).read_all()
        assert len(records) == 1
        assert records[0].data == data
        assert records[0].ts_sec == 1 and records[0].ts_usec == 500_000

    def test_auto_timestamps_monotone(self):
        buf = io.BytesIO()
        writer = PcapWriter(buf)
        for i in range(5):
            writer.write(bytes([i]))
        buf.seek(0)
        stamps = [(r.ts_sec, r.ts_usec) for r in PcapReader(buf)]
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == 5

    def test_trace_roundtrip(self, tmp_path):
        path = str(tmp_path / "trace.pcap")
        trace = mixed_l3_trace(50, seed=9)
        assert save_trace(path, trace) == 50
        loaded = load_trace(path, port=2)
        assert [d for d, _ in loaded] == [d for d, _ in trace]
        assert all(port == 2 for _, port in loaded)

    def test_empty_file(self):
        buf = io.BytesIO()
        PcapWriter(buf)
        buf.seek(0)
        assert PcapReader(buf).read_all() == []


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(PcapError):
            PcapReader(io.BytesIO(b"\x00" * 24))

    def test_truncated_header(self):
        with pytest.raises(PcapError):
            PcapReader(io.BytesIO(b"\x12"))

    def test_truncated_record(self):
        buf = io.BytesIO()
        writer = PcapWriter(buf)
        writer.write(b"\xaa" * 60)
        truncated = io.BytesIO(buf.getvalue()[:-10])
        reader = PcapReader(truncated)
        with pytest.raises(PcapError):
            reader.read_all()


class TestSwitchInterop:
    def test_replay_through_switch(self, tmp_path):
        from repro.compiler.rp4bc import compile_base
        from repro.ipsa.switch import IpsaSwitch
        from repro.programs import base_rp4_source
        from repro.programs.base_l2l3 import populate_base_tables

        path = str(tmp_path / "in.pcap")
        save_trace(path, mixed_l3_trace(40, seed=12))

        switch = IpsaSwitch()
        switch.load_config(compile_base(base_rp4_source()).config)
        populate_base_tables(switch.tables)

        out_path = str(tmp_path / "out.pcap")
        with open(out_path, "wb") as fh:
            writer = PcapWriter(fh)
            forwarded = 0
            for data, port in load_trace(path):
                out = switch.inject(data, port)
                if out is not None:
                    writer.write(out.data)
                    forwarded += 1
        assert forwarded == 40
        assert len(load_trace(out_path)) == 40

"""The two enforcement gates: rp4bc's pre-compile lint and the
controller's pre-apply update verification."""

import pytest

from tests.analysis_fixtures import MINI_CHAIN, MINI_CLEAN, UNSAFE_SCRIPT
from repro.compiler.rp4bc import (
    CompileError,
    LintError,
    MemoryFeasibilityError,
    TargetSpec,
    compile_base,
)
from repro.memory.pool import AllocationError
from repro.runtime.controller import Controller, UnsafeUpdateError


# -- rp4bc pre-compile gate --------------------------------------------------


def test_clean_program_compiles_with_default_lint():
    design = compile_base(MINI_CLEAN)
    assert design.lint_diagnostics == []


def test_warnings_pass_in_warn_mode_but_are_kept_on_the_design():
    source = MINI_CLEAN.replace(
        "table t_fwd {",
        "table t_dead {\n    key = { ethernet.dst_addr: exact; }\n"
        "    size = 16;\n}\ntable t_fwd {",
    )
    design = compile_base(source)
    assert [d.rule for d in design.lint_diagnostics] == ["RP4L202"]


def test_strict_mode_promotes_warnings_to_rejection():
    source = MINI_CLEAN.replace(
        "table t_fwd {",
        "table t_dead {\n    key = { ethernet.dst_addr: exact; }\n"
        "    size = 16;\n}\ntable t_fwd {",
    )
    with pytest.raises(LintError) as excinfo:
        compile_base(source, lint="strict")
    assert [d.rule for d in excinfo.value.diagnostics] == ["RP4L202"]
    assert isinstance(excinfo.value, CompileError)


def test_error_findings_reject_even_in_warn_mode():
    source = MINI_CLEAN.replace(
        "0x0800: ipv4;", "0x0800: ipv4;\n            0x0800: orphan;"
    ).replace(
        "    header ipv4 {\n        bit<8> ttl;\n        bit<32> dst_addr;\n    }",
        "    header ipv4 {\n        bit<8> ttl;\n"
        "        bit<32> dst_addr;\n    }\n"
        "    header orphan {\n        bit<8> pad;\n    }",
    )
    with pytest.raises(LintError) as excinfo:
        compile_base(source)
    assert any(d.rule == "RP4L102" for d in excinfo.value.diagnostics)


def test_lint_off_bypasses_the_gate():
    source = MINI_CLEAN.replace(
        "table t_fwd {",
        "table t_dead {\n    key = { ethernet.dst_addr: exact; }\n"
        "    size = 16;\n}\ntable t_fwd {",
    )
    design = compile_base(source, lint="off")
    assert design.lint_diagnostics == []


def test_unknown_lint_mode_is_rejected():
    with pytest.raises(CompileError):
        compile_base(MINI_CLEAN, lint="loose")


def test_wont_fit_raises_memory_feasibility_error():
    """Won't-fit programs still satisfy callers expecting the
    allocator's AllocationError -- the gate just fires earlier."""
    target = TargetSpec(sram_blocks=1, tcam_blocks=0)
    with pytest.raises(MemoryFeasibilityError) as excinfo:
        compile_base(MINI_CLEAN, target)
    assert isinstance(excinfo.value, AllocationError)
    assert isinstance(excinfo.value, LintError)
    assert {d.rule for d in excinfo.value.diagnostics} <= {"RP4L301", "RP4L302"}


# -- controller pre-apply gate -----------------------------------------------


def _loaded_controller(**kwargs):
    controller = Controller(**kwargs)
    controller.load_base(MINI_CHAIN)
    return controller


def test_unsafe_update_is_rejected_before_touching_the_switch():
    controller = _loaded_controller()
    stages_before = set(controller.design.program.all_stages())
    updates_before = controller.switch.n_updates if hasattr(
        controller.switch, "n_updates"
    ) else None
    with pytest.raises(UnsafeUpdateError) as excinfo:
        controller.run_script(UNSAFE_SCRIPT)
    assert any(d.rule == "RP4L402" for d in excinfo.value.diagnostics)
    # the running design is untouched and nothing crossed the channel
    assert set(controller.design.program.all_stages()) == stages_before
    assert not any(h.startswith("script:") for h in controller.history)
    if updates_before is not None:
        assert controller.switch.n_updates == updates_before


def test_gate_can_be_disabled_per_controller():
    controller = _loaded_controller(lint_updates=False)
    plan, stats, _timing = controller.run_script(UNSAFE_SCRIPT)
    assert "writer" in plan.removed_stages


def test_safe_update_records_lint_phase_and_findings():
    from repro.programs import base_rp4_source, ecmp_load_script, ecmp_rp4_source

    controller = Controller()
    controller.load_base(base_rp4_source())
    controller.run_script(
        ecmp_load_script(), {"ecmp.rp4": ecmp_rp4_source()}
    )
    assert [d for d in controller.last_lint if d.severity.label == "error"] == []
    timeline = controller.timelines.latest("run_script")
    assert "lint" in [p.name for p in timeline.phases]


def test_unsafe_update_error_is_a_controller_error():
    from repro.runtime.controller import ControllerError

    assert issubclass(UnsafeUpdateError, ControllerError)

"""The rp4lint CLI (also reachable as ``ipbm-ctl lint``), the rp4bc
lint flags, and the shipped-suite smoke check: every program we ship
passes its own linter with zero errors."""

import json

import pytest

from tests.analysis_fixtures import MINI_CLEAN
from repro.analysis.cli import main as rp4lint_main
from repro.compiler.cli import rp4bc_main
from repro.compiler.rp4bc import compile_base
from repro.runtime.cli import main as ipbm_ctl_main


@pytest.fixture
def mini_file(tmp_path):
    path = tmp_path / "mini.rp4"
    path.write_text(MINI_CLEAN)
    return str(path)


@pytest.fixture
def warn_file(tmp_path):
    source = MINI_CLEAN.replace(
        "table t_fwd {",
        "table t_dead {\n    key = { ethernet.dst_addr: exact; }\n"
        "    size = 16;\n}\ntable t_fwd {",
    )
    path = tmp_path / "warn.rp4"
    path.write_text(source)
    return str(path)


@pytest.fixture
def broken_file(tmp_path):
    source = MINI_CLEAN.replace(
        "0x0800: ipv4;", "0x0800: ipv4;\n            0x0800: orphan;"
    ).replace(
        "    header ipv4 {\n        bit<8> ttl;\n        bit<32> dst_addr;\n    }",
        "    header ipv4 {\n        bit<8> ttl;\n"
        "        bit<32> dst_addr;\n    }\n"
        "    header orphan {\n        bit<8> pad;\n    }",
    )
    path = tmp_path / "broken.rp4"
    path.write_text(source)
    return str(path)


# -- rp4lint -----------------------------------------------------------------


def test_clean_file_exits_zero(mini_file, capsys):
    assert rp4lint_main([mini_file]) == 0
    assert "no findings" in capsys.readouterr().out


def test_error_file_exits_one(broken_file, capsys):
    assert rp4lint_main([broken_file]) == 1
    out = capsys.readouterr().out
    assert "error[RP4L102]" in out and "broken.rp4" in out


def test_warning_exits_zero_until_strict(warn_file, capsys):
    assert rp4lint_main([warn_file]) == 0
    assert "warning[RP4L202]" in capsys.readouterr().out
    assert rp4lint_main(["--strict", warn_file]) == 1
    assert "error[RP4L202]" in capsys.readouterr().out


def test_json_format(warn_file, capsys):
    assert rp4lint_main(["--format", "json", warn_file]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["tool"] == "rp4lint"
    assert doc["counts"]["warning"] == 1
    assert doc["diagnostics"][0]["rule"] == "RP4L202"


def test_sarif_format(broken_file, capsys):
    assert rp4lint_main(["--format", "sarif", broken_file]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == "2.1.0"
    results = doc["runs"][0]["results"]
    assert any(r["ruleId"] == "RP4L102" for r in results)


def test_output_file(warn_file, tmp_path, capsys):
    out_path = tmp_path / "report.json"
    assert rp4lint_main(
        ["--format", "json", "-o", str(out_path), warn_file]
    ) == 0
    assert capsys.readouterr().out == ""
    doc = json.loads(out_path.read_text())
    assert doc["counts"]["warning"] == 1


def test_config_json_document(tmp_path, capsys):
    design = compile_base(MINI_CLEAN, lint="off")
    config = design.config
    table = next(iter(config["tables"]))
    config["tables"][table]["keys"][0][1] = "fuzzy"
    path = tmp_path / "config.json"
    path.write_text(json.dumps(config))
    assert rp4lint_main([str(path)]) == 1
    assert "error[RP4L001]" in capsys.readouterr().out


def test_unreadable_file_exits_two(tmp_path, capsys):
    assert rp4lint_main([str(tmp_path / "absent.rp4")]) == 2
    assert "cannot read" in capsys.readouterr().err


def test_invalid_json_exits_two(tmp_path, capsys):
    path = tmp_path / "bad.json"
    path.write_text("{nope")
    assert rp4lint_main([str(path)]) == 2
    assert "invalid JSON" in capsys.readouterr().err


def test_no_inputs_is_a_usage_error(capsys):
    with pytest.raises(SystemExit) as excinfo:
        rp4lint_main([])
    assert excinfo.value.code == 2


def test_snippet_and_full_are_exclusive(mini_file):
    with pytest.raises(SystemExit):
        rp4lint_main(["--snippet", "--full", mini_file])


def test_suppression_pragma_silences_finding(tmp_path, capsys):
    source = MINI_CLEAN.replace(
        "table t_fwd {",
        "table t_dead { // rp4lint: disable=RP4L202\n"
        "    key = { ethernet.dst_addr: exact; }\n    size = 16;\n}\n"
        "table t_fwd {",
    )
    path = tmp_path / "suppressed.rp4"
    path.write_text(source)
    assert rp4lint_main([str(path)]) == 0
    assert "no findings" in capsys.readouterr().out


def test_shipped_suite_has_zero_errors_and_warnings(capsys):
    """Every shipped program and composed update passes its own
    linter; the only findings are the documented SRv6 load-time
    binds (RP4L105, info)."""
    assert rp4lint_main(["--shipped"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s), 0 warning(s)" in out
    for line in out.splitlines()[:-1]:
        assert "info[RP4L105]" in line


def test_ipbm_ctl_lint_subcommand(mini_file, capsys):
    assert ipbm_ctl_main(["lint", mini_file]) == 0
    assert "no findings" in capsys.readouterr().out


# -- rp4bc lint flags --------------------------------------------------------


def test_rp4bc_compiles_clean_file(mini_file, tmp_path):
    out = tmp_path / "config.json"
    assert rp4bc_main([mini_file, "-o", str(out)]) == 0
    assert json.loads(out.read_text())["tables"]


def test_rp4bc_warns_but_compiles(warn_file, tmp_path, capsys):
    out = tmp_path / "config.json"
    assert rp4bc_main([warn_file, "-o", str(out)]) == 0
    assert "warning[RP4L202]" in capsys.readouterr().err
    assert out.exists()


def test_rp4bc_strict_rejects_warnings(warn_file, tmp_path, capsys):
    out = tmp_path / "config.json"
    assert rp4bc_main([warn_file, "-o", str(out), "--strict"]) == 1
    err = capsys.readouterr().err
    assert "error[RP4L202]" in err and "rejected by rp4lint" in err
    assert not out.exists()


def test_rp4bc_rejects_broken_program(broken_file, tmp_path, capsys):
    out = tmp_path / "config.json"
    assert rp4bc_main([broken_file, "-o", str(out)]) == 1
    assert "error[RP4L102]" in capsys.readouterr().err
    assert not out.exists()


def test_rp4bc_no_lint_skips_the_gate(warn_file, tmp_path, capsys):
    out = tmp_path / "config.json"
    assert rp4bc_main([warn_file, "-o", str(out), "--no-lint"]) == 0
    assert "RP4L202" not in capsys.readouterr().err


def test_rp4bc_strict_and_no_lint_are_exclusive(mini_file):
    with pytest.raises(SystemExit):
        rp4bc_main([mini_file, "--strict", "--no-lint"])

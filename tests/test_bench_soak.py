"""Tests for the soak harness and the fabric_scale bench section."""

import json

import pytest

from repro.bench.schema import (
    DEFAULT_FABRIC_SCALE_TOLERANCE,
    compare_documents,
    validate_bench,
)
from repro.bench.soak import build_parser, main, run_soak, rss_bytes


class TestRunSoak:
    def test_tiny_soak_passes_every_check(self):
        report = run_soak(
            n_nodes=6,
            n_packets=600,
            n_workers=2,
            wave_size=3,
            batch=100,
            rollout_every=3,
        )
        assert report["ok"], [
            check for check in report["checks"] if not check["ok"]
        ]
        assert report["packets"] == 600
        assert report["delivered"] == 600
        assert report["rollout_cycles"] >= 1
        names = {check["name"] for check in report["checks"]}
        assert names == {
            "zero_drops",
            "all_delivered",
            "metrics_consistent",
            "channel_logs_bounded",
            "rss_bounded",
            "rollouts_clean",
        }

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            run_soak(n_nodes=2, n_packets=0)
        with pytest.raises(ValueError):
            run_soak(n_nodes=2, n_packets=10, batch=0)

    def test_rss_probe_returns_positive(self):
        assert rss_bytes() > 0

    def test_cli_validate_and_out(self, tmp_path):
        out_path = tmp_path / "soak.json"
        code = main(
            [
                "--nodes", "4", "--packets", "200", "--batch", "100",
                "--rollout-every", "2", "--workers", "2",
                "--wave-size", "2", "--validate", "--quiet",
                "--out", str(out_path),
            ]
        )
        assert code == 0
        report = json.loads(out_path.read_text())
        assert report["ok"] and report["packets"] == 200

    def test_parser_defaults_match_full_mode(self):
        args = build_parser().parse_args([])
        assert args.nodes == 1000
        assert args.packets == 10_000_000
        assert args.workers == 2


def fabric_cell(**overrides):
    cell = {
        "nodes": 1000,
        "workers": 2,
        "wave_size": 25,
        "serial_seconds": 4.5,
        "sharded_seconds": 0.8,
        "speedup_x": 4.5 / 0.8,
        "plan_cache_hits": 999,
        "plan_cache_misses": 1,
    }
    cell.update(overrides)
    return cell


def bench_doc(fabric_scale=None):
    doc = {
        "schema_version": 1,
        "kind": "repro-bench",
        "created_unix": 1.0,
        "stamp": "20260809-000000",
        "mode": "smoke",
        "environment": {},
        "matrix": {"cases": ["C1"], "switches": ["ipsa"], "sizes": [60]},
        "results": [
            {
                "switch": "ipsa",
                "case": "C1",
                "packets": 60,
                "forwarded": 60,
                "dropped": 0,
                "seconds": 0.01,
                "pps": 6000.0,
                "ns_per_pkt": 166666.0,
                "profile": {
                    "profiled_seconds": 0.012,
                    "profiled_ns_per_pkt": 200000.0,
                    "overhead_pct": 20.0,
                    "phase_shares": {},
                    "phase_ns_per_pkt": {},
                    "work_per_pkt": {},
                    "engine_lookups": {},
                },
            }
        ],
    }
    if fabric_scale is not None:
        doc["fabric_scale"] = fabric_scale
    return doc


class TestFabricScaleSchema:
    def test_absence_is_valid(self):
        assert validate_bench(bench_doc()) == []

    def test_good_cell_validates(self):
        assert validate_bench(bench_doc([fabric_cell()])) == []

    def test_empty_section_rejected(self):
        assert validate_bench(bench_doc([]))

    def test_missing_key_rejected(self):
        cell = fabric_cell()
        del cell["speedup_x"]
        assert any(
            "speedup_x" in problem
            for problem in validate_bench(bench_doc([cell]))
        )

    def test_sharded_not_faster_rejected(self):
        cell = fabric_cell(
            sharded_seconds=5.0, speedup_x=4.5 / 5.0
        )
        assert any(
            "not strictly below" in problem
            for problem in validate_bench(bench_doc([cell]))
        )

    def test_inconsistent_speedup_rejected(self):
        cell = fabric_cell(speedup_x=99.0)
        assert any(
            "inconsistent" in problem
            for problem in validate_bench(bench_doc([cell]))
        )

    def test_zero_cache_hits_rejected(self):
        cell = fabric_cell(plan_cache_hits=0)
        assert any(
            "plan_cache_hits" in problem
            for problem in validate_bench(bench_doc([cell]))
        )


class TestFabricScaleCompare:
    def test_matching_cells_within_tolerance_ok(self):
        old = bench_doc([fabric_cell()])
        new = bench_doc([fabric_cell(sharded_seconds=0.9,
                                     speedup_x=4.5 / 0.9)])
        comparison = compare_documents(old, new)
        assert comparison.ok
        cells = {d.cell for d in comparison.deltas}
        assert "fabric:1000" in cells

    def test_wall_clock_blowup_regresses(self):
        old = bench_doc([fabric_cell()])
        blown = 0.8 * (1.0 + DEFAULT_FABRIC_SCALE_TOLERANCE) * 1.5
        new = bench_doc([fabric_cell(sharded_seconds=blown,
                                     serial_seconds=blown * 4.0,
                                     speedup_x=4.0)])
        comparison = compare_documents(old, new)
        assert not comparison.ok
        assert any(
            d.cell == "fabric:1000" and d.metric == "sharded_s"
            for d in comparison.regressions
        )

    def test_missing_and_new_cells_are_notes_not_failures(self):
        old = bench_doc([fabric_cell(nodes=1000)])
        new = bench_doc([fabric_cell(nodes=48)])
        comparison = compare_documents(old, new)
        assert comparison.ok
        assert "fabric:1000" in comparison.missing_cells
        assert "fabric:48" in comparison.new_cells

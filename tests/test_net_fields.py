"""Unit tests for bit-accurate field arithmetic."""

import pytest

from repro.net.fields import (
    concat_fields,
    deposit_bits,
    extract_bits,
    field_max,
    mask_to_width,
    to_signed,
)


class TestFieldMax:
    def test_small_widths(self):
        assert field_max(1) == 1
        assert field_max(8) == 255
        assert field_max(16) == 0xFFFF

    def test_wide_field(self):
        assert field_max(128) == (1 << 128) - 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            field_max(0)
        with pytest.raises(ValueError):
            field_max(-3)


class TestMaskToWidth:
    def test_passthrough_when_in_range(self):
        assert mask_to_width(0xAB, 8) == 0xAB

    def test_truncates_overflow(self):
        assert mask_to_width(0x1FF, 8) == 0xFF
        assert mask_to_width(256, 8) == 0

    def test_negative_wraps(self):
        assert mask_to_width(-1, 8) == 255


class TestToSigned:
    def test_positive(self):
        assert to_signed(5, 8) == 5

    def test_negative(self):
        assert to_signed(0xFF, 8) == -1
        assert to_signed(0x80, 8) == -128


class TestExtractBits:
    def test_byte_aligned(self):
        assert extract_bits(b"\xab\xcd", 0, 8) == 0xAB
        assert extract_bits(b"\xab\xcd", 8, 8) == 0xCD

    def test_unaligned_nibbles(self):
        # IPv4 version/ihl live in the same byte.
        assert extract_bits(b"\x45", 0, 4) == 4
        assert extract_bits(b"\x45", 4, 4) == 5

    def test_cross_byte(self):
        assert extract_bits(b"\x12\x34", 4, 8) == 0x23

    def test_wide_field(self):
        data = bytes(range(16))
        assert extract_bits(data, 0, 128) == int.from_bytes(data, "big")

    def test_overrun_raises(self):
        with pytest.raises(ValueError):
            extract_bits(b"\x00", 0, 16)

    def test_zero_width_raises(self):
        with pytest.raises(ValueError):
            extract_bits(b"\x00", 0, 0)


class TestDepositBits:
    def test_roundtrip_aligned(self):
        buf = bytearray(2)
        deposit_bits(buf, 8, 8, 0xCD)
        assert bytes(buf) == b"\x00\xcd"

    def test_unaligned_preserves_neighbours(self):
        buf = bytearray(b"\xff\xff")
        deposit_bits(buf, 4, 8, 0)
        assert bytes(buf) == b"\xf0\x0f"

    def test_truncates_to_width(self):
        buf = bytearray(1)
        deposit_bits(buf, 0, 4, 0xFF)
        assert bytes(buf) == b"\xf0"

    def test_overrun_raises(self):
        with pytest.raises(ValueError):
            deposit_bits(bytearray(1), 4, 8, 1)


class TestConcatFields:
    def test_concat(self):
        assert concat_fields([(0xA, 4), (0xB, 4)]) == 0xAB

    def test_concat_truncates_parts(self):
        assert concat_fields([(0x1F, 4), (0x1, 4)]) == 0xF1

    def test_empty(self):
        assert concat_fields([]) == 0

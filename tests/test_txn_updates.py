"""Transactional updates: protocol order, failure injection, aborts.

The acceptance bar for the transaction engine: any failure before
commit -- a bad template, an exhausted allocator, a dropped control
message, a validator fault -- leaves the live device byte-identical
to its pre-update state, on both architectures.
"""

import pytest

from repro.compiler.rp4bc import TargetSpec, compile_update
from repro.dp.plan import describe_plan
from repro.ipsa.pipeline import PipelineError
from repro.memory.pool import AllocationError
from repro.programs import (
    base_p4_source,
    base_rp4_source,
    ecmp_load_script,
    ecmp_rp4_source,
    populate_base_tables,
)
from repro.programs.p4_variants import ecmp_p4_source
from repro.runtime import (
    ChannelError,
    Controller,
    ControllerError,
    TxnPhase,
    TxnStateError,
    TxnValidationError,
)
from repro.tables.table import TableEntry
from repro.workloads import ipv4_packet

PROBE = (ipv4_packet("10.1.0.1", "10.2.0.5"), 0)


@pytest.fixture
def controller():
    ctl = Controller()
    ctl.load_base(base_rp4_source())
    populate_base_tables(ctl.switch.tables)
    return ctl


def ecmp_update(controller):
    """A freshly compiled C1 update message for the live design."""
    plan = compile_update(
        controller.design, ecmp_load_script(), {"ecmp.rp4": ecmp_rp4_source()}
    )
    return plan.update_message(controller.design.config)


def ipsa_state(switch):
    """Everything an update can touch, identity included."""
    return {
        "tables": {name: id(t) for name, t in switch.tables.items()},
        "entries": {
            name: [(e.key, e.action) for e in t.entries()]
            for name, t in switch.tables.items()
        },
        "actions": {name: id(a) for name, a in switch.actions.items()},
        "metadata": dict(switch.metadata_defaults),
        "header_types": set(switch.header_types),
        "links": dict(switch.linkage._edges),
        "plan": describe_plan(switch.dp.plan()),
        "epoch": switch.dp.epoch,
        "generation": switch.dp.generation,
        "paused": switch.paused,
        "selector_active": set(switch.pipeline.selector.active),
        "tsps": [
            (t.index, t.side, tuple(id(s) for s in t.stages), t.state)
            for t in switch.pipeline.tsps
        ],
    }


def pisa_state(switch):
    return {
        "tables": {name: id(t) for name, t in switch.tables.items()},
        "actions": {name: id(a) for name, a in switch.actions.items()},
        "metadata": dict(switch.metadata_defaults),
        "pipeline": id(switch.pipeline),
        "parser": id(switch.parser),
        "plan": describe_plan(switch.dp.plan()),
        "epoch": switch.dp.epoch,
    }


class TestTxnProtocol:
    def test_commit_runs_pending_phases(self, controller):
        txn = controller.switch.begin_update(ecmp_update(controller))
        assert txn.phase is TxnPhase.PENDING
        stats = txn.commit()  # auto prepare + validate
        assert txn.phase is TxnPhase.COMMITTED
        assert stats.templates_written == 1

    def test_phase_order_enforced(self, controller):
        txn = controller.switch.begin_update(ecmp_update(controller))
        with pytest.raises(TxnStateError):
            txn.validate()  # validate before prepare
        txn = controller.switch.begin_update(ecmp_update(controller))
        txn.prepare()
        with pytest.raises(TxnStateError):
            txn.prepare()  # prepare twice

    def test_abort_is_idempotent(self, controller):
        txn = controller.switch.begin_update(ecmp_update(controller))
        txn.prepare()
        txn.abort()
        txn.abort()
        assert txn.phase is TxnPhase.ABORTED
        with pytest.raises(TxnStateError):
            txn.commit()

    def test_committed_txn_cannot_abort(self, controller):
        txn = controller.switch.begin_update(ecmp_update(controller))
        txn.commit()
        with pytest.raises(TxnStateError):
            txn.abort()

    def test_txn_metrics_counted(self, controller):
        switch = controller.switch
        controller.switch.begin_update(ecmp_update(controller)).commit()
        assert switch.metrics.value("txn.prepared") == 1
        assert switch.metrics.value("txn.validated") == 1
        assert switch.metrics.value("txn.committed") == 1
        assert switch.metrics.value("txn.stall_seconds_count") == 1


class TestIpsaFailureInjection:
    """Every pre-commit failure leaves the device byte-identical."""

    def check_abort(self, controller, tamper, expected):
        switch = controller.switch
        before = ipsa_state(switch)
        update = ecmp_update(controller)
        txn = switch.begin_update(update)
        tamper(update, txn)
        with pytest.raises(expected):
            txn.prepare()
            txn.validate()
        assert txn.phase is TxnPhase.ABORTED
        assert ipsa_state(switch) == before
        assert switch.metrics.value("txn.aborted") == 1
        # The device still forwards and still accepts a clean update.
        assert switch.inject(*PROBE) is not None
        controller.run_script(
            ecmp_load_script(), {"ecmp.rp4": ecmp_rp4_source()}
        )
        assert "ecmp_ipv4" in switch.tables

    def test_bad_template_target(self, controller):
        def tamper(update, txn):
            update["templates"][0]["tsp"] = 99

        self.check_abort(controller, tamper, PipelineError)

    def test_unlink_of_missing_edge(self, controller):
        def tamper(update, txn):
            update["unlink_headers"] = [["ipv4", 99]]

        self.check_abort(controller, tamper, KeyError)

    def test_selector_out_of_range(self, controller):
        def tamper(update, txn):
            update["selector"]["active"] = list(
                update["selector"].get("active", [])
            ) + [99]

        self.check_abort(controller, tamper, TxnValidationError)

    def test_validator_fault(self, controller):
        def tamper(update, txn):
            def boom(t):
                raise RuntimeError("injected validator fault")

            txn.validators.append(boom)

        self.check_abort(controller, tamper, RuntimeError)

    def test_validation_findings_carried(self, controller):
        update = ecmp_update(controller)
        update["selector"]["active"] = [0, 99]
        txn = controller.switch.begin_update(update)
        txn.prepare()
        with pytest.raises(TxnValidationError) as excinfo:
            txn.validate()
        assert any("99" in f for f in excinfo.value.findings)


class TestChannelFailureInjection:
    def test_envelope_kinds_counted(self, controller):
        controller.run_script(
            ecmp_load_script(), {"ecmp.rp4": ecmp_rp4_source()}
        )
        by_kind = controller.channel.stats.by_kind
        assert by_kind["config.load"].messages == 1
        assert by_kind["update.prepare"].messages == 1
        assert by_kind["update.commit"].messages == 1
        assert controller.metrics.value(
            "channel.messages", kind="update.prepare"
        ) == 1
        assert controller.channel.seq == controller.channel.stats.messages

    def test_dropped_prepare_leaves_state_untouched(self, controller):
        switch = controller.switch
        before = ipsa_state(switch)
        controller.channel.drop_kinds.add("update.prepare")
        with pytest.raises(ChannelError):
            controller.stage_update(
                ecmp_load_script(), {"ecmp.rp4": ecmp_rp4_source()}
            )
        assert ipsa_state(switch) == before
        assert controller.history == ["load_base"]
        assert controller._undo == []
        # The loss is still accounted: the message hit the wire.
        assert controller.channel.stats.by_kind["update.prepare"].messages == 1

    def test_dropped_commit_is_retryable(self, controller):
        staged = controller.stage_update(
            ecmp_load_script(), {"ecmp.rp4": ecmp_rp4_source()}
        )
        controller.channel.drop_kinds.add("update.commit")
        with pytest.raises(ChannelError):
            staged.commit()
        assert not staged.committed
        assert "nexthop" in controller.switch.tables  # not flipped
        controller.channel.drop_kinds.clear()
        staged.commit()
        assert "ecmp_ipv4" in controller.switch.tables


class TestControllerStagedAbort:
    def test_abort_leaves_state_untouched(self, controller):
        before = ipsa_state(controller.switch)
        design = controller.design
        staged = controller.stage_update(
            ecmp_load_script(), {"ecmp.rp4": ecmp_rp4_source()}
        )
        staged.abort()
        staged.abort()  # idempotent
        assert ipsa_state(controller.switch) == before
        assert controller.design is design
        assert controller.history[-1] == "abort"
        with pytest.raises(ControllerError):
            staged.commit()
        # A fresh update still goes through.
        controller.run_script(
            ecmp_load_script(), {"ecmp.rp4": ecmp_rp4_source()}
        )
        assert "ecmp_ipv4" in controller.switch.tables


class TestAllocationExhaustion:
    def test_update_that_cannot_place_tables_aborts_cleanly(self):
        # 40 SRAM blocks: the base design fits exactly; the two ECMP
        # hash tables do not.
        ctl = Controller(target=TargetSpec(sram_blocks=40))
        ctl.load_base(base_rp4_source())
        populate_base_tables(ctl.switch.tables)
        before = ipsa_state(ctl.switch)
        design = ctl.design
        with pytest.raises(AllocationError):
            ctl.stage_update(
                ecmp_load_script(), {"ecmp.rp4": ecmp_rp4_source()}
            )
        assert ipsa_state(ctl.switch) == before
        assert ctl.design is design
        assert ctl.history == ["load_base"]
        assert ctl.switch.inject(*PROBE) is not None

    def test_corrupt_pool_fails_validate_not_commit(self, controller):
        # Free a block out from under a surviving table's mapping; the
        # staged transaction's pool validator must catch it.
        pool = controller.design.pool
        block_id = pool.mapping("ipv4_lpm").block_ids[0]
        next(b for b in pool.blocks if b.block_id == block_id).release()
        before = ipsa_state(controller.switch)
        with pytest.raises(TxnValidationError) as excinfo:
            controller.stage_update(
                ecmp_load_script(), {"ecmp.rp4": ecmp_rp4_source()}
            )
        assert any("memory pool" in f for f in excinfo.value.findings)
        assert ipsa_state(controller.switch) == before


class TestPisaFailureInjection:
    @pytest.fixture
    def device(self):
        from repro.pisa.switch import PisaSwitch

        switch = PisaSwitch(n_stages=8)
        switch.load(base_p4_source())
        populate_base_tables(switch.tables)
        return switch

    def test_bad_program_leaves_old_design_serving(self, device):
        before = pisa_state(device)
        out_before = device.inject(*PROBE)
        with pytest.raises(Exception):
            device.reload("control Broken {{{", entries={})
        assert pisa_state(device) == before
        out_after = device.inject(*PROBE)
        assert out_after is not None
        assert out_after.port == out_before.port
        assert device.metrics.value("txn.aborted") == 1

    def test_entries_with_unknown_action_fail_validate(self, device):
        before = pisa_state(device)
        entries = {
            "port_map": [
                TableEntry(key=(0,), action="ghost", action_data={}, tag=1)
            ]
        }
        txn = device.begin_reload(ecmp_p4_source(), entries)
        txn.prepare()
        with pytest.raises(TxnValidationError) as excinfo:
            txn.validate()
        assert any("ghost" in f for f in excinfo.value.findings)
        assert pisa_state(device) == before

    def test_reload_still_works_after_failure(self, device):
        with pytest.raises(Exception):
            device.reload("garbage {{{", entries={})
        stats = device.reload(ecmp_p4_source(), entries={})
        assert stats.stall_seconds > 0
        assert device.dp.plan_flips.get("reload", 0) == 1

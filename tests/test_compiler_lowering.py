"""Unit tests for lowering and the template JSON round-trip."""

import pytest

from repro.compiler.lowering import (
    LoweringError,
    action_from_json,
    action_to_json,
    builtin_actions,
    compile_predicate,
    eval_predicate,
    expr_from_json,
    expr_to_json,
    lower_action,
    lower_table,
)
from repro.lang.expr import EBin, EConst, ERef, EUnary, EValid
from repro.net.headers import IPV4, HeaderInstance
from repro.net.packet import Packet
from repro.rp4 import parse_rp4
from repro.tables.actions import CountAndMark, HashExpr, PyPrimitive, SetField
from repro.tables.table import MatchKind


def packet_with(valid_ipv4=False, **meta):
    p = Packet(b"\x00" * 64)
    if valid_ipv4:
        p.insert_header(HeaderInstance(IPV4))
    for k, v in meta.items():
        p.metadata[k] = v
    return p


class TestLowerAction:
    def _action(self, body, name="a", params="bit<16> x"):
        prog = parse_rp4(f"action {name}({params}) {{ {body} }}")
        return lower_action(prog.actions[name])

    def test_assignment(self):
        act = self._action("meta.bd = x;")
        assert isinstance(act.ops[0], SetField)
        p = packet_with()
        act.execute(p, {"x": 9})
        assert p.read("meta.bd") == 9

    def test_hash_call(self):
        prog = parse_rp4(
            "action a() { meta.h = hash(ipv4.src_addr, ipv4.dst_addr); }"
        )
        act = lower_action(prog.actions["a"])
        assert isinstance(act.ops[0].expr, HashExpr)

    def test_primitive_call(self):
        act = self._action("drop();", params="")
        assert isinstance(act.ops[0], PyPrimitive)
        p = packet_with()
        act.execute(p, {})
        assert p.metadata["drop"] == 1

    def test_count_and_mark_lowering(self):
        prog = parse_rp4(
            "action a(bit<32> threshold) "
            "{ count_and_mark(threshold, meta.flow_marked); }"
        )
        act = lower_action(prog.actions["a"])
        op = act.ops[0]
        assert isinstance(op, CountAndMark)
        assert op.threshold_param == "threshold"
        assert op.dest == "meta.flow_marked"

    def test_count_and_mark_requires_param(self):
        prog = parse_rp4("action a() { count_and_mark(5, meta.x); }")
        with pytest.raises(LoweringError):
            lower_action(prog.actions["a"])

    def test_unknown_primitive(self):
        prog = parse_rp4("action a() { beam_me_up(); }")
        with pytest.raises(LoweringError):
            lower_action(prog.actions["a"])

    def test_unresolved_bare_ref(self):
        prog = parse_rp4("action a() { meta.x = ghostparam; }")
        with pytest.raises(LoweringError):
            lower_action(prog.actions["a"])

    def test_builtins(self):
        builtins = builtin_actions()
        assert set(builtins) == {"NoAction", "drop", "mark_to_cpu"}
        p = packet_with()
        builtins["NoAction"].execute(p, {})
        assert p.metadata["drop"] == 0


class TestLowerTable:
    def test_kinds(self):
        t = lower_table(
            "fib",
            [("meta.vrf", "exact", 16), ("ipv4.dst_addr", "lpm", 32)],
            1024,
        )
        assert t.match_kind is MatchKind.LPM
        assert t.key_width() == 48

    def test_default_action(self):
        t = lower_table("t", [("meta.x", "exact", 8)], 16, default_action="drop")
        res = t.lookup(packet_with(x=5))
        assert res.action == "drop"


class TestPredicates:
    def test_valid(self):
        pred = compile_predicate(EValid("ipv4"))
        assert pred(packet_with(valid_ipv4=True))
        assert not pred(packet_with())

    def test_none_is_always_true(self):
        assert compile_predicate(None)(packet_with())

    def test_conjunction(self):
        expr = EBin("&&", EValid("ipv4"), EBin("==", ERef("meta.l3_fwd"), EConst(1)))
        pred = compile_predicate(expr)
        assert pred(packet_with(valid_ipv4=True, l3_fwd=1))
        assert not pred(packet_with(valid_ipv4=True, l3_fwd=0))

    def test_negation(self):
        pred = compile_predicate(EUnary("!", EValid("ipv4")))
        assert pred(packet_with())

    def test_comparisons(self):
        p = packet_with(x=5)
        assert eval_predicate(EBin("<", ERef("meta.x"), EConst(9)), p) == 1
        assert eval_predicate(EBin(">=", ERef("meta.x"), EConst(5)), p) == 1
        assert eval_predicate(EBin("!=", ERef("meta.x"), EConst(5)), p) == 0

    def test_arithmetic_in_predicate(self):
        p = packet_with(x=6)
        expr = EBin("==", EBin("&", ERef("meta.x"), EConst(2)), EConst(2))
        assert eval_predicate(expr, p) == 1

    def test_short_circuit(self):
        # Right side reads an unknown field; && must not evaluate it.
        expr = EBin("&&", EConst(0), ERef("meta.not_there"))
        assert eval_predicate(expr, packet_with()) == 0


class TestJsonRoundTrip:
    def test_expr_roundtrip(self):
        expr = EBin(
            "&&",
            EValid("ipv4"),
            EBin("==", ERef("meta.l3_fwd"), EConst(1)),
        )
        assert expr_from_json(expr_to_json(expr)) == expr

    def test_none_expr(self):
        assert expr_to_json(None) is None
        assert expr_from_json(None) is None

    def test_action_roundtrip_executes(self):
        prog = parse_rp4(
            "action a(bit<16> bd) { meta.bd = bd; decrement_ttl(); }"
        )
        act = lower_action(prog.actions["a"])
        clone = action_from_json(action_to_json(act))
        p = packet_with(valid_ipv4=True)
        p.header("ipv4").set("ttl", 9)
        clone.execute(p, {"bd": 3})
        assert p.read("meta.bd") == 3
        assert p.read("ipv4.ttl") == 8

    def test_count_and_mark_roundtrip(self):
        prog = parse_rp4(
            "action a(bit<32> threshold) "
            "{ count_and_mark(threshold, meta.flow_marked); }"
        )
        act = action_from_json(action_to_json(lower_action(prog.actions["a"])))
        assert isinstance(act.ops[0], CountAndMark)

"""Unit tests for the mini-P4 parser and HLIR builder."""

import pytest

from repro.lang.errors import LangError
from repro.lang.expr import SApply, SIf
from repro.p4 import build_hlir, parse_p4
from repro.p4.hlir import HlirError
from repro.programs import base_p4_source
from repro.programs.p4_variants import (
    ecmp_p4_source,
    flowprobe_p4_source,
    srv6_p4_source,
)


@pytest.fixture(scope="module")
def base_hlir():
    return build_hlir(parse_p4(base_p4_source()))


class TestParser:
    def test_header_types(self):
        prog = parse_p4(base_p4_source())
        assert "ethernet_t" in prog.header_types
        assert prog.header_types["ipv6_t"].fields[-1] == ("dst_addr", 128)

    def test_instances(self):
        prog = parse_p4(base_p4_source())
        assert prog.header_instances["ethernet"] == "ethernet_t"
        assert prog.instance_fields("ipv4")[0] == ("version", 4)

    def test_metadata(self):
        prog = parse_p4(base_p4_source())
        assert ("l3_fwd", 1) in prog.metadata

    def test_parser_states(self):
        prog = parse_p4(base_p4_source())
        eth = prog.parser_states["parse_ethernet"]
        assert eth.extracts == ["ethernet"]
        assert eth.select_field == "ethernet.ethertype"
        assert any(t.tag == 0x0800 for t in eth.transitions)

    def test_controls_detected(self):
        prog = parse_p4(base_p4_source())
        assert prog.ingress is not None and prog.egress is not None
        assert "port_map" in prog.ingress.tables
        assert "dmac" in prog.egress.tables

    def test_unknown_instance_type_rejected(self):
        with pytest.raises(LangError):
            parse_p4("struct headers { ghost_t g; }")

    def test_pragma_ignored(self):
        prog = parse_p4("@pragma stage 3\n" + base_p4_source())
        assert prog.ingress is not None

    def test_ref_normalization(self):
        prog = parse_p4(base_p4_source())
        lpm = prog.ingress.tables["ipv4_lpm"]
        assert lpm.keys == [("meta.vrf", "exact"), ("ipv4.dst_addr", "lpm")]

    def test_selector_becomes_hash(self):
        prog = parse_p4(ecmp_p4_source())
        ecmp = prog.ingress.tables["ecmp_ipv4"]
        assert all(kind == "hash" for _, kind in ecmp.keys)


class TestHlir:
    def test_headers_flattened(self, base_hlir):
        assert set(base_hlir.headers) == {
            "ethernet", "ipv4", "ipv6", "tcp", "udp"
        }

    def test_parse_edges(self, base_hlir):
        edges = {
            (e.instance, e.tag): e.next_instance for e in base_hlir.parse_edges
        }
        assert edges[("ethernet", 0x0800)] == "ipv4"
        assert edges[("ipv6", 17)] == "udp"

    def test_first_header(self, base_hlir):
        assert base_hlir.first_header == "ethernet"

    def test_table_widths(self, base_hlir):
        assert base_hlir.tables["ipv6_lpm"].key_width == 16 + 128
        assert base_hlir.tables["ipv4_lpm"].control == "ingress"
        assert base_hlir.tables["dmac"].control == "egress"

    def test_applied_tables_order(self, base_hlir):
        order = base_hlir.applied_tables("ingress")
        assert order[:3] == ["port_map", "bridge_vrf", "l2_l3"]
        assert order[-1] == "nexthop"

    def test_flow_structure(self, base_hlir):
        assert isinstance(base_hlir.ingress_flow[0], SApply)
        conditionals = [s for s in base_hlir.ingress_flow if isinstance(s, SIf)]
        assert conditionals, "FIB section must be conditional"

    def test_srv6_variant(self):
        hlir = build_hlir(parse_p4(srv6_p4_source()))
        assert "srh" in hlir.headers
        assert "inner_ipv6" in hlir.headers
        edges = {(e.instance, e.tag): e.next_instance for e in hlir.parse_edges}
        assert edges[("ipv6", 43)] == "srh"
        assert edges[("srh", 41)] == "inner_ipv6"
        assert "local_sid" in hlir.tables

    def test_flowprobe_variant(self):
        hlir = build_hlir(parse_p4(flowprobe_p4_source()))
        assert "flow_probe" in hlir.tables
        assert ("flow_marked", 1) in hlir.metadata

    def test_select_on_foreign_instance_rejected(self):
        src = """
        header a_t { bit<8> x; }
        header b_t { bit<8> y; }
        struct headers { a_t a; b_t b; }
        struct metadata { bit<1> m; }
        parser P(packet_in pkt, out headers hdr) {
            state start { pkt.extract(hdr.a); transition select(hdr.b.y) { 1: accept; } }
        }
        control MyIngress(inout headers hdr) { apply { } }
        control MyEgress(inout headers hdr) { apply { } }
        """
        with pytest.raises(HlirError):
            build_hlir(parse_p4(src))

    def test_ref_width_errors(self, base_hlir):
        with pytest.raises(KeyError):
            base_hlir.ref_width("ghost.field")
        with pytest.raises(KeyError):
            base_hlir.ref_width("ipv4.ghost")

"""Tests for the failback procedure (controller rollback)."""

import pytest

from repro.programs import (
    base_rp4_source,
    ecmp_load_script,
    ecmp_rp4_source,
    flowprobe_load_script,
    flowprobe_rp4_source,
    populate_base_tables,
    populate_ecmp_tables,
    srv6_load_script,
    srv6_rp4_source,
)
from repro.runtime import Controller
from repro.runtime.controller import ControllerError
from repro.workloads import ipv4_packet


@pytest.fixture
def controller():
    ctl = Controller()
    ctl.load_base(base_rp4_source())
    populate_base_tables(ctl.switch.tables)
    return ctl


class TestEcmpTrialFailback:
    def test_rollback_restores_behavior(self, controller):
        before = controller.switch.inject(
            ipv4_packet("10.1.0.1", "10.2.0.5"), 0
        )
        assert before is not None and before.port == 3

        # Live trial: ECMP replaces the nexthop stage.
        controller.run_script(ecmp_load_script(), {"ecmp.rp4": ecmp_rp4_source()})
        populate_ecmp_tables(controller.switch.tables)

        # Trial verdict: fail back.  The update snapshotted nexthop's
        # entries when it freed the table, so rollback restores the
        # rows too -- no manual repopulation.
        restored = controller.rollback()
        assert restored == ["nexthop"]
        assert "ecmp_ipv4" not in controller.switch.tables
        assert "nexthop" in controller.switch.tables

        after = controller.switch.inject(
            ipv4_packet("10.1.0.1", "10.2.0.5"), 0
        )
        assert after is not None
        assert after.port == before.port
        assert after.data == before.data

    def test_rollback_restores_freed_table_entries(self, controller):
        rows_before = {
            (e.key, e.action) for e in controller.switch.table("nexthop").entries()
        }
        assert rows_before
        controller.run_script(ecmp_load_script(), {"ecmp.rp4": ecmp_rp4_source()})
        assert "nexthop" not in controller.switch.tables
        controller.rollback()
        rows_after = {
            (e.key, e.action) for e in controller.switch.table("nexthop").entries()
        }
        assert rows_after == rows_before

    def test_design_state_restored(self, controller):
        base_design = controller.design
        controller.run_script(ecmp_load_script(), {"ecmp.rp4": ecmp_rp4_source()})
        controller.rollback()
        assert controller.design is base_design
        assert "ecmp" not in controller.design.program.all_stages()

    def test_base_tables_survive_rollback(self, controller):
        routes = len(controller.switch.table("ipv4_lpm"))
        controller.run_script(ecmp_load_script(), {"ecmp.rp4": ecmp_rp4_source()})
        controller.rollback()
        assert len(controller.switch.table("ipv4_lpm")) == routes


class TestSrv6TrialFailback:
    def test_header_links_undone(self, controller):
        controller.run_script(srv6_load_script(), {"srv6.rp4": srv6_rp4_source()})
        assert controller.switch.linkage.next_header("ipv6", 43) == "srh"
        controller.rollback()
        assert controller.switch.linkage.next_header("ipv6", 43) is None
        assert "local_sid" not in controller.switch.tables

    def test_plain_forwarding_after_failback(self, controller):
        controller.run_script(srv6_load_script(), {"srv6.rp4": srv6_rp4_source()})
        controller.rollback()
        out = controller.switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), 0)
        assert out is not None and out.port == 3


class TestRollbackStack:
    def test_two_updates_two_rollbacks(self, controller):
        controller.run_script(
            flowprobe_load_script(), {"flowprobe.rp4": flowprobe_rp4_source()}
        )
        controller.run_script(ecmp_load_script(), {"ecmp.rp4": ecmp_rp4_source()})
        controller.rollback()  # undo ecmp
        assert "flow_probe" in controller.switch.tables
        assert "ecmp_ipv4" not in controller.switch.tables
        controller.rollback()  # undo probe
        assert "flow_probe" not in controller.switch.tables

    def test_rollback_without_update(self, controller):
        with pytest.raises(ControllerError):
            controller.rollback()

    def test_history_records_rollback(self, controller):
        controller.run_script(
            flowprobe_load_script(), {"flowprobe.rp4": flowprobe_rp4_source()}
        )
        controller.rollback()
        assert controller.history[-1] == "rollback"

"""Tests for register/sketch externs and the C4 heavy-hitter use case."""

import pytest

from repro.programs import base_rp4_source, populate_base_tables
from repro.programs.hhsketch import (
    hhsketch_load_script,
    hhsketch_rp4_source,
    populate_hhsketch_tables,
)
from repro.runtime import Controller
from repro.tables.registers import CountMinSketch, ExternStore, RegisterArray
from repro.workloads import ipv4_packet


class TestRegisterArray:
    def test_read_write(self):
        reg = RegisterArray("r", 8, width=16)
        reg.write(3, 0x1FFFF)
        assert reg.read(3) == 0xFFFF  # truncated to width

    def test_add_saturates(self):
        reg = RegisterArray("r", 2, width=4)
        for _ in range(20):
            reg.add(0)
        assert reg.read(0) == 15

    def test_bounds(self):
        reg = RegisterArray("r", 4)
        with pytest.raises(IndexError):
            reg.read(4)
        with pytest.raises(IndexError):
            reg.write(-1, 0)

    def test_clear(self):
        reg = RegisterArray("r", 4)
        reg.add(1, 5)
        reg.clear()
        assert reg.read(1) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            RegisterArray("r", 0)
        with pytest.raises(ValueError):
            RegisterArray("r", 4, width=0)


class TestCountMinSketch:
    def test_counts_monotone(self):
        sketch = CountMinSketch("s", rows=4, columns=64)
        estimates = [sketch.update([1, 2]) for _ in range(10)]
        assert estimates == list(range(1, 11))

    def test_estimate_never_undercounts(self):
        sketch = CountMinSketch("s", rows=4, columns=32)
        truth = {}
        for key in range(50):
            for _ in range(key % 5 + 1):
                sketch.update([key])
                truth[key] = truth.get(key, 0) + 1
        for key, count in truth.items():
            assert sketch.estimate([key]) >= count

    def test_distinct_keys_mostly_independent(self):
        sketch = CountMinSketch("s", rows=4, columns=1024)
        for _ in range(100):
            sketch.update([42, 43])
        assert sketch.estimate([7, 8]) <= 5  # tiny collision noise at most

    def test_clear(self):
        sketch = CountMinSketch("s")
        sketch.update([1])
        sketch.clear()
        assert sketch.estimate([1]) == 0
        assert sketch.updates == 0


class TestExternStore:
    def test_lazy_creation_and_reuse(self):
        store = ExternStore()
        a = store.sketch("x")
        assert store.sketch("x") is a
        r = store.register_array("y", size=8)
        assert store.register_array("y") is r

    def test_drop(self):
        store = ExternStore()
        store.sketch("x")
        assert store.drop("x")
        assert not store.drop("x")


class TestHeavyHitterUseCase:
    @pytest.fixture
    def controller(self):
        ctl = Controller()
        ctl.load_base(base_rp4_source())
        populate_base_tables(ctl.switch.tables)
        ctl.run_script(
            hhsketch_load_script(), {"hhsketch.rp4": hhsketch_rp4_source()}
        )
        return ctl

    def test_loads_in_service(self, controller):
        assert "hh_filter" in controller.switch.tables
        assert controller.design.plan.tsp_count == 7

    def test_detects_heavy_flow(self, controller):
        populate_hhsketch_tables(controller.switch.tables, threshold=10)
        # A heavy flow: 15 packets; marked once past the threshold.
        for i in range(15):
            out = controller.switch.inject(
                ipv4_packet("10.1.0.1", "10.2.0.1", sport=7000), 0
            )
            assert out is not None
        sketch = controller.switch.externs.sketches["hh_update"]
        assert sketch.updates == 15
        from repro.net.addresses import parse_ipv4

        estimate = sketch.estimate(
            [parse_ipv4("10.1.0.1"), parse_ipv4("10.2.0.1")]
        )
        assert estimate == 15

    def test_light_flows_not_marked(self, controller):
        populate_hhsketch_tables(controller.switch.tables, threshold=10)
        for i in range(30):
            controller.switch.inject(
                ipv4_packet("10.1.0.1", f"10.2.3.{i + 1}"), 0
            )
        sketch = controller.switch.externs.sketches["hh_update"]
        from repro.net.addresses import parse_ipv4

        assert (
            sketch.estimate(
                [parse_ipv4("10.1.0.1"), parse_ipv4("10.2.3.1")]
            )
            <= 3
        )

    def test_offload_recycles_state(self, controller):
        populate_hhsketch_tables(controller.switch.tables)
        controller.switch.inject(ipv4_packet("10.1.0.1", "10.2.0.1"), 0)
        controller.run_script("unload --func_name hh_sketch")
        assert "hh_filter" not in controller.switch.tables
        # Extern cleanup is the controller's job on offload.
        controller.switch.externs.drop("hh_update")
        assert "hh_update" not in controller.switch.externs.sketches

    def test_json_roundtrip_of_sketch_action(self, controller):
        from repro.compiler.lowering import action_from_json, action_to_json

        action = controller.switch.actions["hh_update"]
        clone = action_from_json(action_to_json(action))
        assert len(clone.ops) == 2

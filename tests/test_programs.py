"""Unit tests for the program sources and reference populations."""

import pytest

from repro.compiler.lowering import lower_table
from repro.p4 import build_hlir, parse_p4
from repro.programs import (
    BASE_STAGE_LETTERS,
    base_p4_source,
    base_rp4_source,
    ecmp_rp4_source,
    flowprobe_rp4_source,
    populate_base_tables,
    populate_ecmp_tables,
    populate_flowprobe_tables,
    populate_srv6_tables,
    srv6_rp4_source,
)
from repro.programs.base_l2l3 import P4_SLOTS, render_p4_source
from repro.programs.p4_variants import (
    ecmp_p4_source,
    flowprobe_p4_source,
    srv6_p4_source,
)
from repro.rp4 import analyze, parse_rp4


def make_tables(rp4_sources):
    """Lower every table declared across the given rP4 sources."""
    tables = {}
    program = parse_rp4(base_rp4_source())
    for src in rp4_sources:
        program.merge(parse_rp4(src))
    info = analyze(program)
    for name, tinfo in info.tables.items():
        tables[name] = lower_table(name, tinfo.key_fields, tinfo.size)
    return tables


class TestBaseDesign:
    def test_letters_cover_all_stages(self):
        prog = parse_rp4(base_rp4_source())
        assert set(BASE_STAGE_LETTERS.values()) == set(prog.all_stages())

    def test_populate_base(self):
        tables = make_tables([])
        populate_base_tables(tables)
        assert len(tables["port_map"]) == 4
        assert len(tables["ipv4_lpm"]) == 3
        assert len(tables["nexthop"]) == 3
        assert len(tables["dmac"]) == 5

    def test_p4_and_rp4_declare_same_tables(self):
        rp4 = parse_rp4(base_rp4_source())
        hlir = build_hlir(parse_p4(base_p4_source()))
        assert set(rp4.tables) == set(hlir.tables)

    def test_p4_and_rp4_same_key_widths(self):
        rp4 = analyze(parse_rp4(base_rp4_source()))
        hlir = build_hlir(parse_p4(base_p4_source()))
        for name, info in rp4.tables.items():
            assert hlir.tables[name].key_width == info.key_width, name


class TestSlots:
    def test_defaults_render_clean(self):
        source = render_p4_source()
        assert "//@SLOT:" not in source
        assert "nexthop.apply();" in source

    def test_unknown_slot_rejected(self):
        with pytest.raises(KeyError):
            render_p4_source({"bogus_slot": "x"})

    def test_all_slots_exist_in_template(self):
        from repro.programs.base_l2l3 import _P4_SOURCE

        for slot in P4_SLOTS:
            assert f"//@SLOT:{slot}" in _P4_SOURCE, slot


class TestUseCaseSources:
    @pytest.mark.parametrize(
        "source_fn",
        [ecmp_rp4_source, srv6_rp4_source, flowprobe_rp4_source],
    )
    def test_rp4_snippets_parse(self, source_fn):
        prog = parse_rp4(source_fn())
        assert prog.all_stages()

    @pytest.mark.parametrize(
        "source_fn",
        [ecmp_p4_source, srv6_p4_source, flowprobe_p4_source],
    )
    def test_p4_variants_compile(self, source_fn):
        hlir = build_hlir(parse_p4(source_fn()))
        assert hlir.tables

    def test_ecmp_replaces_nexthop_in_p4(self):
        hlir = build_hlir(parse_p4(ecmp_p4_source()))
        assert "nexthop" not in hlir.applied_tables("ingress")
        assert "ecmp_ipv4" in hlir.applied_tables("ingress")

    def test_populate_ecmp(self):
        tables = make_tables([ecmp_rp4_source()])
        populate_base_tables(tables)
        populate_ecmp_tables(tables)
        assert len(tables["ecmp_ipv4"]) == 4
        assert len(tables["ecmp_ipv6"]) == 4
        # new member DMACs resolvable
        assert len(tables["dmac"]) == 7

    def test_populate_srv6(self):
        tables = make_tables([srv6_rp4_source()])
        populate_srv6_tables(tables)
        assert len(tables["local_sid"]) == 2
        assert len(tables["end_transit"]) == 1

    def test_populate_flowprobe(self):
        tables = make_tables([flowprobe_rp4_source()])
        populate_flowprobe_tables(tables)
        assert len(tables["flow_probe"]) == 2
        entry = tables["flow_probe"].entries()[0]
        assert "threshold" in entry.action_data

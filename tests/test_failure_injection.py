"""Failure-injection tests: malformed inputs and resource exhaustion
must fail loudly and leave running state intact."""

import pytest

from repro.compiler.rp4bc import TargetSpec, compile_base, compile_update
from repro.ipsa.switch import IpsaSwitch, SwitchError
from repro.memory.pool import AllocationError
from repro.net.packet import ParseError
from repro.programs import (
    base_rp4_source,
    ecmp_load_script,
    ecmp_rp4_source,
    populate_base_tables,
)
from repro.runtime import Controller
from repro.workloads import ipv4_packet


class TestMalformedConfigs:
    def test_table_without_keys(self):
        switch = IpsaSwitch()
        with pytest.raises(SwitchError):
            switch.load_config(
                {"tables": {"broken": {"size": 8}}, "templates": []}
            )

    def test_template_to_missing_tsp(self):
        design = compile_base(base_rp4_source())
        switch = IpsaSwitch(n_tsps=4)  # too small for the layout
        with pytest.raises(Exception):
            switch.load_config(design.config)

    def test_empty_config_is_inert(self):
        switch = IpsaSwitch()
        switch.load_config({})
        assert switch.inject(ipv4_packet("10.0.0.1", "10.0.0.2"), 0) is not None


class TestMalformedUpdates:
    def test_link_from_unknown_header(self):
        controller = Controller()
        controller.load_base(base_rp4_source())
        with pytest.raises(KeyError):
            controller.switch.apply_update(
                {"link_headers": [["ghost", 7, "ipv4"]]}
            )

    def test_unlink_missing_edge(self):
        controller = Controller()
        controller.load_base(base_rp4_source())
        with pytest.raises(KeyError):
            controller.switch.apply_update({"unlink_headers": [["ipv4", 99]]})

    def test_freeing_unknown_table_is_tolerated(self):
        controller = Controller()
        controller.load_base(base_rp4_source())
        stats = controller.switch.apply_update({"freed_tables": ["ghost"]})
        assert stats.tables_removed == ["ghost"]


class TestResourceExhaustion:
    def test_pool_too_small_fails_at_compile(self):
        target = TargetSpec(sram_blocks=4, tcam_blocks=0)
        with pytest.raises(AllocationError):
            compile_base(base_rp4_source(), target)

    def test_exhausted_update_leaves_design_usable(self):
        # A pool just big enough for the base design; the ECMP tables
        # cannot be placed.
        base = compile_base(base_rp4_source())
        needed = sum(
            m.total_blocks for m in base.pool.mappings().values()
        )
        target = TargetSpec(sram_blocks=needed, tcam_blocks=0)
        design = compile_base(base_rp4_source(), target)
        with pytest.raises(AllocationError):
            compile_update(
                design, ecmp_load_script(), {"ecmp.rp4": ecmp_rp4_source()}
            )
        # The running design's pool is untouched (clone semantics).
        assert set(design.pool.mappings()) == set(base.pool.mappings())

    def test_table_overflow_is_loud(self):
        controller = Controller()
        controller.load_base(base_rp4_source())
        api = controller.api("port_map")
        for i in range(64):
            api.install((100 + i,), "set_intf", {"intf": i})
        with pytest.raises(OverflowError):
            api.install((999,), "set_intf", {"intf": 0})


class TestMalformedPackets:
    @pytest.fixture
    def switch(self):
        controller = Controller()
        controller.load_base(base_rp4_source())
        populate_base_tables(controller.switch.tables)
        return controller.switch

    def test_truncated_ethernet(self, switch):
        with pytest.raises(ParseError):
            switch.inject(b"\x00" * 8, 0)

    def test_truncated_ipv4(self, switch):
        data = ipv4_packet("10.1.0.1", "10.2.0.5")[:20]
        with pytest.raises(ParseError):
            switch.inject(data, 0)

    def test_runt_but_parseable_forwards(self, switch):
        # Ethernet claims IPv4 but the packet ends exactly after the
        # IP header: legal parse, empty L4.
        full = ipv4_packet("10.1.0.1", "10.2.0.5")
        runt = full[: 14 + 20]
        out = switch.inject(runt, 0)
        assert out is not None

    def test_unknown_ethertype_bridges(self, switch):
        from repro.programs.base_l2l3 import HOST_MACS
        from repro.net.addresses import parse_mac

        data = (
            parse_mac(HOST_MACS[2]).to_bytes(6, "big")
            + b"\x02" + b"\x00" * 5
            + (0x88B5).to_bytes(2, "big")
            + b"payload-of-an-experimental-protocol"
        )
        out = switch.inject(data, 0)
        assert out is not None and out.port == 1  # L2 path still works


class TestScriptFailuresAtomicity:
    def test_failed_script_changes_nothing(self):
        controller = Controller()
        controller.load_base(base_rp4_source())
        populate_base_tables(controller.switch.tables)
        design_before = controller.design
        tables_before = set(controller.switch.tables)

        with pytest.raises(Exception):
            controller.run_script(
                "load ecmp.rp4 --func_name ecmp\nadd_link ghost ecmp",
                {"ecmp.rp4": ecmp_rp4_source()},
            )
        assert controller.design is design_before
        assert set(controller.switch.tables) == tables_before
        out = controller.switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), 0)
        assert out is not None and out.port == 3

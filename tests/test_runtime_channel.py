"""Tests for the byte-serialized control channel."""

import json

import pytest

from repro.runtime.channel import (
    DEFAULT_LOG_CAPACITY,
    ChannelError,
    ControlChannel,
    FrameError,
    LoopbackTransport,
    QueueTransport,
    decode_frame,
    encode_frame,
)


class TestFraming:
    def test_round_trip(self):
        envelope = {"seq": 7, "kind": "update.prepare", "payload": {"a": [1, 2]}}
        assert decode_frame(encode_frame(envelope)) == envelope

    def test_short_frame_rejected(self):
        with pytest.raises(FrameError):
            decode_frame(b"\x00")

    def test_length_mismatch_rejected(self):
        frame = encode_frame({"seq": 1, "payload": {}})
        with pytest.raises(FrameError):
            decode_frame(frame + b"extra")

    def test_non_envelope_body_rejected(self):
        body = json.dumps([1, 2, 3]).encode()
        frame = len(body).to_bytes(4, "big") + body
        with pytest.raises(FrameError):
            decode_frame(frame)

    def test_undecodable_body_rejected(self):
        body = b"\xff\xfe not json"
        frame = len(body).to_bytes(4, "big") + body
        with pytest.raises(FrameError):
            decode_frame(frame)

    def test_payload_json_splice_is_byte_identical(self):
        # The fleet fast path splices a pre-serialized payload into
        # the frame; the wire bytes must be indistinguishable from the
        # plain encoding or receive-side accounting would diverge.
        message = {"zeta": 1, "alpha": {"nested": [1, 2]}, "m": "text"}
        plain = ControlChannel()
        spliced = ControlChannel()
        plain.post(message, kind="update.prepare")
        spliced.post(
            message,
            kind="update.prepare",
            payload_json=json.dumps(message, sort_keys=True),
        )
        assert plain.transport.recv() == spliced.transport.recv()

    def test_spliced_frame_decodes_to_same_payload(self):
        message = {"config": {"k": [3, 2, 1]}}
        channel = ControlChannel()
        payload = channel.send(
            message,
            kind="update.prepare",
            payload_json=json.dumps(message, sort_keys=True),
        )
        assert payload == message


class TestTransports:
    def test_loopback_fifo(self):
        transport = LoopbackTransport()
        transport.send(b"one")
        transport.send(b"two")
        assert transport.pending() == 2
        assert transport.recv() == b"one"
        assert transport.recv() == b"two"

    def test_loopback_empty_raises(self):
        with pytest.raises(ChannelError):
            LoopbackTransport().recv()

    def test_queue_transport_round_trip(self):
        transport = QueueTransport()
        transport.send(b"frame")
        assert transport.recv(timeout=1.0) == b"frame"

    def test_queue_transport_timeout(self):
        with pytest.raises(ChannelError):
            QueueTransport().recv(timeout=0.01)


class TestAccounting:
    def test_send_and_receive_sides_both_counted(self):
        channel = ControlChannel()
        channel.send({"x": 1}, kind="config.load")
        channel.send({"y": 2}, kind="update.prepare")
        stats = channel.stats
        assert stats.messages == 2
        assert stats.messages_received == 2
        assert stats.bytes_sent == stats.bytes_received > 0
        prepare = stats.by_kind["update.prepare"]
        assert prepare.messages == prepare.messages_received == 1
        assert prepare.bytes_sent == prepare.bytes_received > 0

    def test_metrics_samples_cover_both_directions(self):
        channel = ControlChannel()
        channel.send({"x": 1}, kind="config.load")
        names = {sample.name for sample in channel.metrics_samples()}
        assert "channel.messages" in names
        assert "channel.messages_received" in names
        assert "channel.bytes_received" in names

    def test_latency_histogram_recorded_per_kind(self):
        channel = ControlChannel()
        channel.send({"x": 1}, kind="update.prepare")
        buckets = [
            sample
            for sample in channel.metrics_samples()
            if sample.name.startswith("channel.latency_seconds")
            and sample.labels.get("kind") == "update.prepare"
        ]
        counts = [
            sample
            for sample in buckets
            if sample.name == "channel.latency_seconds_count"
        ]
        assert counts and counts[0].value == 1

    def test_sequence_numbers_are_monotonic(self):
        channel = ControlChannel()
        first = channel.post({"a": 1})
        second = channel.post({"b": 2})
        assert second == first + 1

    def test_replay_rejected_but_accounted(self):
        channel = ControlChannel()
        channel.post({"a": 1})
        frame = channel.transport.recv()
        channel.transport.send(frame)
        channel.deliver()
        channel.transport.send(frame)  # replay the same seq
        with pytest.raises(ChannelError):
            channel.deliver()
        assert channel.stats.messages_received == 2  # bytes did arrive


class TestBoundedLog:
    def test_default_capacity(self):
        assert ControlChannel().log_capacity == DEFAULT_LOG_CAPACITY

    def test_log_stays_at_capacity_under_load(self):
        # Regression: the log is a debugging ring, not an audit trail;
        # a soak pushing far more envelopes than the cap must not grow
        # the process.
        channel = ControlChannel(log_capacity=16)
        for index in range(1000):
            channel.send({"i": index})
        assert len(channel.log) == 16
        # The ring holds the *most recent* frames.
        assert '"i": 999' in channel.log[-1]

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            ControlChannel(log_capacity=0)


class TestFaultInjection:
    def test_dropped_kind_raises_after_accounting(self):
        channel = ControlChannel()
        channel.drop_kinds.add("update.commit")
        with pytest.raises(ChannelError):
            channel.post({"x": 1}, kind="update.commit")
        assert channel.stats.by_kind["update.commit"].messages == 1
        assert channel.transport.pending() == 0

    def test_other_kinds_unaffected_by_drop(self):
        channel = ControlChannel()
        channel.drop_kinds.add("update.commit")
        assert channel.send({"x": 1}, kind="update.prepare") == {"x": 1}

    def test_reordered_kind_trips_sequence_check(self):
        channel = ControlChannel()
        channel.reorder_kinds.add("update.prepare")
        channel.post({"held": True}, kind="update.prepare")
        channel.post({"later": True}, kind="config.load")
        # The held frame was transmitted second: first delivery is the
        # later seq, so the held frame's arrival is flagged.
        kind, payload, _seq = channel.deliver()
        assert kind == "config.load"
        with pytest.raises(ChannelError):
            channel.deliver()

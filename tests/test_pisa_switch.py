"""Unit tests for the PISA baseline switch (bmv2-analog)."""

import pytest

from repro.pisa.pipeline import FitError
from repro.pisa.switch import PisaSwitch
from repro.programs import base_p4_source
from repro.programs.base_l2l3 import populate_base_tables
from repro.programs.p4_variants import ecmp_p4_source, srv6_p4_source
from repro.workloads import ipv4_packet, ipv6_packet, srv6_packet


@pytest.fixture
def switch():
    device = PisaSwitch(n_stages=8)
    device.load(base_p4_source())
    populate_base_tables(device.tables)
    return device


class TestLoad:
    def test_stage_placement(self, switch):
        assert switch.pipeline.stage_count() == 7
        assert switch.pipeline.stage_count("ingress") == 6
        assert switch.pipeline.stage_count("egress") == 1

    def test_front_parser_graph(self, switch):
        parser = switch.parser
        assert parser.linkage.next_header("ethernet", 0x0800) == "ipv4"
        assert parser.first_header == "ethernet"

    def test_does_not_fit(self):
        device = PisaSwitch(n_stages=3)
        with pytest.raises(FitError):
            device.load(base_p4_source())

    def test_inject_without_design(self):
        with pytest.raises(RuntimeError):
            PisaSwitch().inject(b"\x00" * 64)


class TestForwarding:
    def test_ipv4(self, switch):
        out = switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), port=0)
        assert out is not None and out.port == 3
        assert out.data[14 + 8] == 63

    def test_ipv6(self, switch):
        out = switch.inject(ipv6_packet("2001:db8:1::1", "2001:db8:2::9"), port=0)
        assert out is not None and out.port == 3

    def test_unknown_port_dropped(self, switch):
        assert switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), port=42) is None

    def test_full_parse_up_front(self, switch):
        switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), port=0)
        # The front parser extracts the whole stack (eth+ipv4+udp),
        # unlike IPSA's on-demand two.
        assert switch.parser.stats.headers_extracted == 3

    def test_deparser_runs(self, switch):
        switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), port=0)
        assert switch.deparser.stats.packets == 1


class TestReload:
    def test_reload_swaps_and_repopulates(self, switch):
        # Snapshot the desired state, reload the ECMP variant.
        entries = {n: t.entries() for n, t in switch.tables.items()}
        stats = switch.reload(ecmp_p4_source(), entries)
        assert stats.tables_repopulated > 0
        assert stats.entries_repopulated == sum(len(r) for r in entries.values())
        # nexthop table exists in the variant? It does (decls remain),
        # and traffic still flows after repopulation:
        out = switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), port=0)
        # ECMP tables are empty (new tables need populating), so the
        # packet misses ECMP but the rest of the pipeline still works.
        assert switch.packets_in == 1

    def test_reload_loses_unrepopulated_entries(self, switch):
        switch.reload(base_p4_source(), entries={})
        assert len(switch.table("ipv4_lpm")) == 0

    def test_srv6_variant_parses_srh(self):
        device = PisaSwitch()
        device.load(srv6_p4_source())
        populate_base_tables(device.tables)
        packet = srv6_packet(
            src="2001:db8:9::1",
            active_sid="2001:db8:100::1",
            segments=["2001:db8:2::1", "2001:db8:100::1"],
        )
        device.inject(packet, port=0)
        # eth + ipv6 + srh + inner ipv6 (inner parse states accept there)
        assert device.parser.stats.headers_extracted == 4


class TestEquivalence:
    """PISA and IPSA must forward identically on the base design."""

    def test_bit_identical_outputs(self, switch):
        from repro.compiler.rp4bc import compile_base
        from repro.ipsa.switch import IpsaSwitch
        from repro.programs import base_rp4_source

        ipsa = IpsaSwitch()
        ipsa.load_config(compile_base(base_rp4_source()).config)
        populate_base_tables(ipsa.tables)

        probes = [
            ipv4_packet("10.1.0.1", "10.2.0.5"),
            ipv4_packet("10.2.0.7", "10.1.0.1", sport=99),
            ipv6_packet("2001:db8:1::1", "2001:db8:2::9"),
            ipv4_packet("10.1.0.1", "192.0.2.1"),
        ]
        for data in probes:
            pisa_out = switch.inject(data, port=0)
            ipsa_out = ipsa.inject(data, port=0)
            assert (pisa_out is None) == (ipsa_out is None)
            if pisa_out is not None:
                assert pisa_out.port == ipsa_out.port
                assert pisa_out.data == ipsa_out.data

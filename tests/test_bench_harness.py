"""Unit tests for the bench-harness modules themselves."""

import pytest

from repro.bench.mapping import fig4_mapping, format_mapping
from repro.bench.report import format_table
from repro.bench.table1 import (
    Table1Row,
    hardware_flow_model,
    measure_bmv2_flow,
    measure_ipbm_flow,
)


class TestFormatTable:
    def test_alignment(self):
        text = format_table(
            ["name", "value"], [("a", 1), ("longer", 22)], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("name")
        assert all(len(l) >= len("longer  22") for l in lines[2:])

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text

    def test_wide_cells_expand(self):
        text = format_table(["x"], [("abcdefghij",)])
        assert "abcdefghij" in text


class TestFig4Harness:
    def test_mappings_complete(self):
        mappings = fig4_mapping()
        assert set(mappings) == {"base", "C1-ecmp", "C2-srv6", "C3-flowprobe"}
        for design in mappings.values():
            assert design.plan.tsp_count == 7

    def test_format_mapping_letters(self):
        mappings = fig4_mapping()
        text = format_mapping(mappings["base"], "base")
        assert "port_map(A)" in text
        assert "dmac(J)" in text
        text = format_mapping(mappings["C1-ecmp"], "C1")
        assert "ecmp" in text and "nexthop(H)" not in text


class TestTable1Harness:
    def test_row_total(self):
        row = Table1Row("ipbm", "C1", 10.0, 2.0)
        assert row.total_ms == 12.0

    def test_bmv2_flow_shape(self):
        row = measure_bmv2_flow("C1")
        assert row.flow == "bmv2"
        assert row.t_compile_ms > 0 and row.t_load_ms > 0
        assert row.entries_populated > 20  # everything repopulated

    def test_ipbm_flow_shape(self):
        row = measure_ipbm_flow("C1")
        assert row.flow == "ipbm"
        assert row.entries_populated == 10  # 2x4 ECMP members + 2 dmac rows

    def test_hardware_model_scales(self):
        software = Table1Row("bmv2", "C1", 10.0, 1.0)
        hw = hardware_flow_model(software)
        assert hw.flow == "PISA"
        assert hw.t_compile_ms > software.t_compile_ms
        software = Table1Row("ipbm", "C1", 5.0, 0.5)
        hw = hardware_flow_model(software)
        assert hw.flow == "IPSA"

    def test_unknown_case(self):
        with pytest.raises(KeyError):
            measure_ipbm_flow("C9")

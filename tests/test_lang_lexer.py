"""Unit tests for the shared lexer."""

import pytest

from repro.lang.errors import LangError
from repro.lang.lexer import Lexer, TokenKind, tokenize


class TestTokenize:
    def test_identifiers_and_ints(self):
        tokens = tokenize("table foo 42")
        assert [t.kind for t in tokens[:-1]] == [
            TokenKind.IDENT,
            TokenKind.IDENT,
            TokenKind.INT,
        ]
        assert tokens[2].value == 42

    def test_hex_and_binary(self):
        tokens = tokenize("0x86DD 0b101 1_000")
        assert [t.value for t in tokens[:-1]] == [0x86DD, 5, 1000]

    def test_punctuation_longest_match(self):
        tokens = tokenize("a == b = c && d")
        punct = [t.text for t in tokens if t.kind is TokenKind.PUNCT]
        assert punct == ["==", "=", "&&"]

    def test_line_comment(self):
        tokens = tokenize("a // comment with { } stuff\nb")
        assert [t.text for t in tokens[:-1]] == ["a", "b"]

    def test_block_comment(self):
        tokens = tokenize("a /* multi\nline */ b")
        assert [t.text for t in tokens[:-1]] == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LangError):
            tokenize("a /* never ends")

    def test_unexpected_character(self):
        with pytest.raises(LangError):
            tokenize("a $ b")

    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_eof_token(self):
        assert tokenize("")[-1].kind is TokenKind.EOF


class TestLexerCursor:
    def test_advance_and_peek(self):
        lex = Lexer("a b c")
        assert lex.current.text == "a"
        assert lex.peek().text == "b"
        lex.advance()
        assert lex.current.text == "b"

    def test_accept(self):
        lex = Lexer("{ foo }")
        assert lex.accept_punct("{")
        assert not lex.accept_punct("}")
        assert lex.accept_ident("foo")
        assert lex.accept_punct("}")
        assert lex.at_eof()

    def test_expect_errors(self):
        lex = Lexer("foo")
        with pytest.raises(LangError):
            lex.expect_punct(";")
        with pytest.raises(LangError):
            lex.expect_int()
        assert lex.expect_ident("foo").text == "foo"

    def test_advance_past_eof_is_safe(self):
        lex = Lexer("x")
        lex.advance()
        lex.advance()
        assert lex.at_eof()

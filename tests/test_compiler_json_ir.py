"""Unit tests for the JSON IR (templates, device config, allocation)."""

import json

import pytest

from repro.compiler import json_ir
from repro.compiler.rp4bc import compile_base
from repro.compiler.json_ir import stage_from_json, stage_to_json
from repro.programs import base_rp4_source
from repro.rp4 import parse_rp4


@pytest.fixture(scope="module")
def design():
    return compile_base(base_rp4_source())


class TestStageJson:
    def test_roundtrip(self):
        prog = parse_rp4(base_rp4_source())
        for stage in prog.all_stages().values():
            data = stage_to_json(stage)
            again = stage_from_json(json.loads(json.dumps(data)))
            assert again.name == stage.name
            assert again.parser == stage.parser
            assert again.executor == stage.executor
            assert [a.table for a in again.matcher] == [
                a.table for a in stage.matcher
            ]
            assert [a.cond for a in again.matcher] == [
                a.cond for a in stage.matcher
            ]

    def test_executor_tags_survive_stringification(self):
        prog = parse_rp4(base_rp4_source())
        stage = prog.ingress_stages["port_map"]
        again = stage_from_json(json.loads(json.dumps(stage_to_json(stage))))
        assert 1 in again.executor  # int key restored
        assert "default" in again.executor


class TestDeviceConfig:
    def test_serializable(self, design):
        text = json_ir.dumps(design.config)
        assert json_ir.loads(text) == json.loads(text)

    def test_structure(self, design):
        config = design.config
        assert set(config) == {
            "headers", "metadata", "actions", "tables", "templates",
            "selector", "allocations",
        }
        assert len(config["templates"]) == design.plan.tsp_count
        slots = [t["tsp"] for t in config["templates"]]
        assert slots == sorted(slots)

    def test_header_json_shape(self, design):
        eth = design.config["headers"]["ethernet"]
        assert eth["selector"] == "ethertype"
        assert [2048, "ipv4"] in eth["links"]

    def test_table_spec_shape(self, design):
        fib = design.config["tables"]["ipv4_lpm"]
        assert fib["size"] == 4096
        assert fib["keys"] == [["meta.vrf", "exact", 16], ["ipv4.dst_addr", "lpm", 32]]
        assert fib["kind"] == "sram"
        assert fib["entry_width"] > 48

    def test_allocations_match_pool(self, design):
        for name, alloc in design.config["allocations"].items():
            mapping = design.pool.mapping(name)
            assert alloc["block_ids"] == mapping.block_ids
            assert alloc["table_depth"] == mapping.table_depth

    def test_selector_consistent_with_layout(self, design):
        selector = design.config["selector"]
        assert selector["tm_input"] == design.layout.tm_input
        assert sorted(selector["active"] + selector["bypassed"]) == list(
            range(design.target.n_tsps)
        )

    def test_metadata_members(self, design):
        assert ["bd", 16] in design.config["metadata"]


class TestConfigDrivesDevice:
    """The JSON alone must fully configure a fresh device."""

    def test_json_text_roundtrip_boots_a_switch(self, design):
        from repro.ipsa.switch import IpsaSwitch
        from repro.programs.base_l2l3 import populate_base_tables
        from repro.workloads import ipv4_packet

        text = json_ir.dumps(design.config)
        switch = IpsaSwitch()
        switch.load_config(json_ir.loads(text))
        populate_base_tables(switch.tables)
        out = switch.inject(ipv4_packet("10.1.0.1", "10.2.0.5"), 0)
        assert out is not None and out.port == 3

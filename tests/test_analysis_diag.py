"""The rp4lint diagnostics engine, plus the golden meta-test: every
rule in the catalogue has a fixture that fires it."""

import json

import pytest

from tests.analysis_fixtures import FIXTURES
from repro.analysis.diag import (
    FAMILIES,
    HELP_URI_BASE,
    RULES,
    Diagnostic,
    Severity,
    Span,
    dedupe,
    dumps,
    errors,
    filter_suppressed,
    help_uri,
    make,
    max_severity,
    promote_warnings,
    source_suppressions,
    to_json,
    to_sarif,
)


# -- catalogue ---------------------------------------------------------------


def test_rule_ids_are_stable_and_well_formed():
    for rule_id, rule in RULES.items():
        assert rule_id == rule.rule_id
        assert rule_id.startswith("RP4L") and len(rule_id) == 7
        assert rule.family in FAMILIES
        assert rule.title
        assert rule.description


def test_every_family_has_an_error_severity_rule():
    for family in FAMILIES:
        severities = {
            r.severity for r in RULES.values() if r.family == family
        }
        assert Severity.ERROR in severities, family


def test_every_rule_has_a_firing_fixture():
    assert set(FIXTURES) == set(RULES)


@pytest.mark.parametrize("rule_id", sorted(RULES))
def test_golden_fixture_fires_rule(rule_id):
    diags = FIXTURES[rule_id]()
    hits = [d for d in diags if d.rule == rule_id]
    assert hits, f"fixture for {rule_id} produced {[d.rule for d in diags]}"
    for diag in hits:
        assert diag.severity is RULES[rule_id].severity
        assert diag.message
        assert diag.span is not None
        assert diag.span.file


# -- severities and formatting ----------------------------------------------


def test_severity_ordering_and_labels():
    assert Severity.ERROR > Severity.WARNING > Severity.INFO
    assert Severity.ERROR.label == "error"
    assert Severity.INFO.sarif_level == "note"
    assert Severity.WARNING.sarif_level == "warning"


def test_diagnostic_format_with_and_without_span():
    with_span = make("RP4L102", "boom", Span("x.rp4", 3, 7))
    assert with_span.format() == "x.rp4:3:7: error[RP4L102]: boom"
    spanless = Diagnostic("RP4L102", "boom", Severity.ERROR)
    assert spanless.format() == "error[RP4L102]: boom"


def test_span_zero_line_renders_file_only():
    assert str(Span("x.rp4")) == "x.rp4"
    assert str(Span("x.rp4", 9, 0)) == "x.rp4:9:1"


def test_make_uses_catalogue_severity():
    assert make("RP4L105", "m").severity is Severity.INFO
    assert make("RP4L105", "m", severity=Severity.ERROR).severity is Severity.ERROR


def test_max_severity_and_errors():
    diags = [make("RP4L105", "i"), make("RP4L202", "w"), make("RP4L102", "e")]
    assert max_severity(diags) is Severity.ERROR
    assert max_severity([]) is None
    assert [d.rule for d in errors(diags)] == ["RP4L102"]


def test_promote_warnings_leaves_info_alone():
    diags = [make("RP4L105", "i"), make("RP4L202", "w")]
    promoted = promote_warnings(diags)
    assert promoted[0].severity is Severity.INFO
    assert promoted[1].severity is Severity.ERROR
    # originals untouched
    assert diags[1].severity is Severity.WARNING


# -- suppression pragmas -----------------------------------------------------


def test_line_suppression_pragma():
    source = "line one\ntable t { } // rp4lint: disable=RP4L202, RP4L204\n"
    file_wide, by_line = source_suppressions(source)
    assert not file_wide
    assert by_line == {2: {"RP4L202", "RP4L204"}}
    diags = [
        make("RP4L202", "w", Span("f", 2, 1)),
        make("RP4L202", "w", Span("f", 5, 1)),
    ]
    kept, dropped = filter_suppressed(diags, source)
    assert dropped == 1
    assert [d.span.line for d in kept] == [5]


def test_file_wide_suppression_pragma():
    source = "// rp4lint: disable-file=RP4L105\nheaders { }\n"
    diags = [make("RP4L105", "i", Span("f", 40, 1)), make("RP4L202", "w", Span("f", 2, 1))]
    kept, dropped = filter_suppressed(diags, source)
    assert dropped == 1
    assert [d.rule for d in kept] == ["RP4L202"]


def test_no_pragmas_keeps_everything():
    diags = [make("RP4L202", "w", Span("f", 1, 1))]
    kept, dropped = filter_suppressed(diags, "plain source")
    assert dropped == 0 and len(kept) == 1


# -- emitters ----------------------------------------------------------------


def _sample():
    return [
        make("RP4L102", "conflict", Span("a.rp4", 2, 5)),
        make("RP4L202", "dead table", Span("a.rp4", 10, 1)),
        make("RP4L105", "late bind"),
    ]


def test_text_report_has_summary_line():
    report = dumps(_sample(), "text")
    assert report.splitlines()[-1] == "1 error(s), 1 warning(s), 1 info"
    assert "a.rp4:2:5: error[RP4L102]: conflict" in report
    assert dumps([], "text") == "no findings"


def test_json_report_schema():
    doc = to_json(_sample())
    assert doc["version"] == 1 and doc["tool"] == "rp4lint"
    assert doc["counts"] == {"error": 1, "warning": 1, "info": 1}
    first = doc["diagnostics"][0]
    assert first == {
        "rule": "RP4L102",
        "severity": "error",
        "message": "conflict",
        "file": "a.rp4",
        "line": 2,
        "column": 5,
    }
    # spanless diagnostics omit location keys
    assert "file" not in doc["diagnostics"][2]
    json.loads(dumps(_sample(), "json"))  # round-trips


def test_sarif_report_schema():
    doc = to_sarif(_sample())
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
    assert rule_ids == sorted({"RP4L102", "RP4L202", "RP4L105"})
    for result in run["results"]:
        assert rule_ids[result["ruleIndex"]] == result["ruleId"]
    first = run["results"][0]
    assert first["level"] == "error"
    region = first["locations"][0]["physicalLocation"]["region"]
    assert region == {"startLine": 2, "startColumn": 5}
    # the spanless finding carries no locations at all
    assert "locations" not in run["results"][2]
    json.loads(dumps(_sample(), "sarif"))


def test_dumps_rejects_unknown_format():
    with pytest.raises(ValueError):
        dumps([], "xml")


def test_end_column_in_json_and_sarif():
    """A span with an end column carries it through both structured
    emitters; without one, neither emitter invents the key."""
    with_end = make("RP4L102", "conflict", Span("a.rp4", 2, 5, end_column=9))
    assert with_end.to_dict()["end_column"] == 9
    doc = to_sarif([with_end])
    location = doc["runs"][0]["results"][0]["locations"][0]
    region = location["physicalLocation"]["region"]
    assert region == {"startLine": 2, "startColumn": 5, "endColumn": 9}
    without = make("RP4L102", "conflict", Span("a.rp4", 2, 5))
    assert "end_column" not in without.to_dict()


def test_sarif_rules_carry_stable_help_uris():
    doc = to_sarif(_sample())
    for rule in doc["runs"][0]["tool"]["driver"]["rules"]:
        assert rule["helpUri"] == help_uri(rule["id"])
        assert rule["helpUri"] == (
            f"{HELP_URI_BASE}#{rule['id'].lower()}"
        )
    # The anchor scheme holds for the whole catalogue, including the
    # rp4verify family.
    assert help_uri("RP4L501").endswith("docs/analysis.md#rp4l501")


def test_dedupe_drops_exact_duplicates_only():
    span = Span("a.rp4", 2, 5)
    twice = [
        make("RP4L102", "conflict", span),
        make("RP4L102", "conflict", span),
        make("RP4L102", "conflict", Span("a.rp4", 3, 1)),  # other span
        make("RP4L102", "different message", span),
    ]
    kept = dedupe(twice)
    assert len(kept) == 3
    assert kept[0] is twice[0]  # first occurrence wins


def test_sarif_results_are_deduped():
    doc = to_sarif(_sample() + _sample())
    assert len(doc["runs"][0]["results"]) == len(_sample())

"""Shim for legacy editable installs (offline environment lacks `wheel`)."""

from setuptools import setup

setup()

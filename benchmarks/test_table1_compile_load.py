"""Table 1: compiling time t_C and loading time t_L.

Paper shape: the incremental flow (IPSA/ipbm) is a small fraction of
the full flow (PISA/bmv2) in both compile and load time, for all
three use cases; t_C dominates t_L; only the rP4 flow avoids full
table repopulation.
"""

import pytest

from repro.bench.report import format_table
from repro.bench.table1 import (
    hardware_flow_model,
    measure_bmv2_flow,
    measure_ipbm_flow,
)


@pytest.mark.parametrize("case", ["C1", "C2", "C3"])
def test_table1_case(case, benchmark):
    # Benchmark the incremental (ipbm) flow; measure bmv2 once for the
    # comparison row.
    ipbm = benchmark(measure_ipbm_flow, case)
    bmv2 = measure_bmv2_flow(case)
    pisa = hardware_flow_model(bmv2)
    ipsa = hardware_flow_model(ipbm)

    rows = [
        (r.flow, r.case, f"{r.t_compile_ms:.1f}", f"{r.t_load_ms:.3f}",
         f"{r.t_populate_ms:.3f}", r.entries_populated)
        for r in (pisa, ipsa, bmv2, ipbm)
    ]
    print()
    print(
        format_table(
            ["flow", "case", "t_C (ms)", "t_L (ms)", "populate (ms)", "entries"],
            rows,
            title=f"Table 1 -- use case {case}",
        )
    )
    ratio_c = ipbm.t_compile_ms / bmv2.t_compile_ms
    ratio_l = ipbm.t_load_ms / bmv2.t_load_ms
    print(f"ipbm/bmv2: t_C {ratio_c:.1%}  t_L {ratio_l:.1%}")

    # Shape assertions.
    assert ipbm.t_compile_ms < bmv2.t_compile_ms
    assert ipbm.t_load_ms < bmv2.t_load_ms
    assert ipsa.total_ms / pisa.total_ms < 0.05
    # Only the new tables are populated in the rP4 flow.
    assert ipbm.entries_populated < bmv2.entries_populated

"""Software forwarding speed: ipbm vs the bmv2-analog.

Not a paper artifact per se, but the substrate of the bmv2/ipbm rows:
a performance-regression guard on the behavioral hot path.  ipbm's
lazy parsing does strictly less work per packet than the PISA model's
full-stack parse + deparse, and the bench asserts that relationship.
"""

from conftest import make_ipsa_for_case, make_pisa_for_case

from repro.bench.report import format_table
from repro.workloads import mixed_l3_trace

TRACE = mixed_l3_trace(300, seed=31)


def _run(switch):
    forwarded = 0
    for data, port in TRACE:
        if switch.inject(data, port) is not None:
            forwarded += 1
    return forwarded


def test_ipbm_forwarding_speed(benchmark):
    controller = make_ipsa_for_case("C1")

    forwarded = benchmark(_run, controller.switch)
    assert forwarded == len(TRACE)


def test_bmv2_forwarding_speed(benchmark):
    switch = make_pisa_for_case("C1")

    forwarded = benchmark(_run, switch)
    assert forwarded == len(TRACE)


def test_parse_work_comparison(benchmark):
    """ipbm parses on demand; the PISA model parses the full stack."""

    def measure():
        controller = make_ipsa_for_case("C1")
        pisa = make_pisa_for_case("C1")
        _run(controller.switch)
        _run(pisa)
        ipbm_parsed = sum(
            t.stats.headers_parsed for t in controller.switch.pipeline.tsps
        )
        pisa_parsed = pisa.parser.stats.headers_extracted
        return ipbm_parsed, pisa_parsed

    ipbm_parsed, pisa_parsed = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["switch", "headers parsed", "per packet"],
            [
                ("ipbm (on demand)", ipbm_parsed, f"{ipbm_parsed / len(TRACE):.2f}"),
                ("bmv2-analog (full stack)", pisa_parsed,
                 f"{pisa_parsed / len(TRACE):.2f}"),
            ],
        )
    )
    # The L3 traces carry eth+ip+l4; ipbm never touches the l4 header.
    assert ipbm_parsed < pisa_parsed

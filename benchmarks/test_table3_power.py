"""Table 3: power (watts) for the three use cases.

Paper: "The prototype of IPSA consumes about 10% more power than that
of PISA" at full pipeline occupancy (e.g. PISA C3 total 2.95 W).
"""

import pytest

from conftest import CASE_ARTIFACTS, make_ipsa_for_case

from repro.bench.report import format_table
from repro.hw import ipsa_power, pisa_power


def test_table3(benchmark):
    def compute():
        rows = {}
        for case in ("C1", "C2", "C3"):
            controller = make_ipsa_for_case(case)
            active = controller.switch.active_tsp_count()
            rows[case] = (
                pisa_power(n_stages=8).total,
                ipsa_power(active, n_tsps=8).total,
                active,
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)

    print()
    print(
        format_table(
            ["case", "PISA (W)", "IPSA (W)", "active TSPs", "ratio"],
            [
                (case, f"{p:.2f}", f"{i:.2f}", active, f"{i / p:.2f}x")
                for case, (p, i, active) in rows.items()
            ],
            title="Table 3 -- power per use case",
        )
    )

    for case, (pisa_w, ipsa_w, _active) in rows.items():
        assert pisa_w == pytest.approx(2.95, abs=0.05)
        ratio = ipsa_w / pisa_w
        assert 0.95 <= ratio <= 1.20, f"{case}: ratio {ratio:.2f}"

"""Ablation: stage merging on/off (paper Sec. 3.1).

"One TSP can host multiple independent stages after compiling."  We
compare the three merge modes on the base design: TSP count (resource
side) and the modeled throughput (merged TSPs do more work per packet,
so merging trades pipeline length for per-TSP cycles).
"""

from repro.bench.report import format_table
from repro.compiler.merge import MergeMode
from repro.compiler.rp4bc import TargetSpec, compile_base
from repro.hw import ipsa_power, ipsa_throughput
from repro.ipsa.switch import IpsaSwitch
from repro.programs import base_rp4_source
from repro.programs.base_l2l3 import populate_base_tables
from repro.workloads import mixed_l3_trace


def test_ablation_merge_modes(benchmark):
    def compile_all():
        designs = {}
        for mode in MergeMode:
            designs[mode.value] = compile_base(
                base_rp4_source(),
                TargetSpec(n_tsps=10, merge_mode=mode),
            )
        return designs

    designs = benchmark(compile_all)
    trace = mixed_l3_trace(200)

    rows = []
    for mode, design in designs.items():
        switch = IpsaSwitch(n_tsps=10)
        switch.load_config(design.config)
        populate_base_tables(switch.tables)
        report = ipsa_throughput(switch, design, trace)
        power = ipsa_power(design.plan.tsp_count, n_tsps=10).total
        rows.append(
            (
                mode,
                design.plan.tsp_count,
                f"{report.model_mpps:.1f}",
                f"{report.cycles_per_packet:.2f}",
                f"{power:.2f}",
            )
        )

    print()
    print(
        format_table(
            ["merge mode", "TSPs", "model Mpps", "cycles/pkt", "power (W)"],
            rows,
            title="Ablation: stage merging",
        )
    )

    by_mode = {row[0]: row for row in rows}
    assert by_mode["none"][1] == 10
    assert by_mode["exclusive"][1] == 8
    assert by_mode["full"][1] == 7
    # Fewer active TSPs -> less power (the merging payoff)...
    assert float(by_mode["full"][4]) < float(by_mode["none"][4])
    # ...but merged TSPs do more lookups per packet, costing cycles.
    assert float(by_mode["full"][3]) >= float(by_mode["exclusive"][3])


def test_ablation_cofire_throughput_tradeoff(benchmark):
    """The throughput-aware merge knob: bounding co-firing stages per
    TSP trades extra TSPs for fewer bottleneck cycles (this is what
    brings the C3 PISA/IPSA ratio back to the paper's ~3x)."""
    from repro.compiler.rp4bc import TargetSpec, compile_base, compile_update
    from repro.hw import ipsa_throughput
    from repro.ipsa.switch import IpsaSwitch
    from repro.programs import (
        base_rp4_source,
        flowprobe_load_script,
        flowprobe_rp4_source,
        populate_flowprobe_tables,
    )
    from repro.workloads import use_case_trace

    def measure():
        rows = []
        trace = use_case_trace("C3", 200)
        for cofire, tsps in ((None, 8), (1, 12)):
            target = TargetSpec(n_tsps=tsps, max_cofire_per_tsp=cofire)
            base = compile_base(base_rp4_source(), target)
            plan = compile_update(
                base, flowprobe_load_script(),
                {"flowprobe.rp4": flowprobe_rp4_source()},
            )
            switch = IpsaSwitch(n_tsps=tsps)
            switch.load_config(plan.design.config)
            populate_base_tables(switch.tables)
            populate_flowprobe_tables(switch.tables)
            report = ipsa_throughput(switch, plan.design, trace)
            rows.append(
                (str(cofire), plan.design.plan.tsp_count,
                 report.model_mpps, report.cycles_per_packet)
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["max cofire", "TSPs", "model Mpps", "cycles/pkt"],
            [(c, t, f"{m:.1f}", f"{cy:.2f}") for c, t, m, cy in rows],
            title="Ablation: throughput-aware merging (C3)",
        )
    )
    unlimited, bounded = rows
    assert bounded[2] > unlimited[2]  # fewer cycles at the bottleneck
    assert bounded[1] > unlimited[1]  # paid for with more TSPs

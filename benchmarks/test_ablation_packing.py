"""Ablation: exact (branch-and-bound) vs greedy table packing.

The paper embeds an ILP solver (YALMIP) for the NP-complete set
packing; the runtime flow wants a fast heuristic.  We compare solution
quality (total cluster spread, the migration-cost proxy) and search
effort on randomized workloads.
"""

import numpy as np
import pytest

from repro.bench.report import format_table
from repro.memory.blocks import MemoryKind
from repro.memory.packing import Demand, pack_branch_and_bound, pack_greedy


def random_workload(rng, n_tables, n_clusters=4, blocks_per_cluster=10):
    demands = []
    for i in range(n_tables):
        count = int(rng.integers(1, 7))
        n_allowed = int(rng.integers(1, n_clusters + 1))
        allowed = tuple(
            sorted(rng.choice(n_clusters, size=n_allowed, replace=False).tolist())
        )
        demands.append(Demand(f"t{i}", MemoryKind.SRAM, count, allowed))
    free = {
        (c, MemoryKind.SRAM): blocks_per_cluster for c in range(n_clusters)
    }
    return demands, free


def test_ablation_packing(benchmark):
    rng = np.random.default_rng(42)
    workloads = [random_workload(rng, n_tables=6) for _ in range(20)]

    def solve_all():
        rows = []
        for i, (demands, free) in enumerate(workloads):
            greedy = pack_greedy(demands, dict(free))
            exact = pack_branch_and_bound(demands, dict(free))
            rows.append(
                (
                    i,
                    greedy.spread if greedy.feasible else "-",
                    exact.spread if exact.feasible else "-",
                    exact.nodes_explored,
                )
            )
        return rows

    rows = benchmark(solve_all)
    print()
    print(
        format_table(
            ["workload", "greedy spread", "exact spread", "B&B nodes"],
            rows,
            title="Ablation: table packing",
        )
    )

    improvements = 0
    for _, greedy_spread, exact_spread, nodes in rows:
        if greedy_spread == "-":
            continue
        assert exact_spread != "-", "exact must solve whatever greedy solves"
        assert exact_spread <= greedy_spread
        if exact_spread < greedy_spread:
            improvements += 1
        assert nodes >= 1
    # The exact solver pays its search cost for something.
    total_nodes = sum(r[3] for r in rows)
    print(f"exact improved {improvements}/20 workloads, {total_nodes} nodes total")
    assert total_nodes > 20

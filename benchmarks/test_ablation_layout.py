"""Ablation: DP vs greedy incremental layout (paper Sec. 3.2).

"In the algorithm, there is a trade-off between dynamic programming
and greedy algorithm in terms of the function placement time and the
degree of optimization."  We measure both sides: the DP never rewrites
more templates than the greedy, and the greedy runs faster.
"""

import time

import pytest

from repro.bench.report import format_table
from repro.compiler.layout import layout_dp, layout_greedy
from repro.compiler.merge import MergePlan, group_key


def synthetic_plan(n_groups, inserted_at=None):
    """An ingress pipeline of single-stage groups, with an optional
    inserted function (the runtime-update workload)."""
    groups = [[f"stage_{i}"] for i in range(n_groups)]
    if inserted_at is not None:
        groups.insert(inserted_at, ["inserted_fn"])
    return MergePlan(ingress_groups=groups, egress_groups=[["egress_0"]])


N_TSPS = 24
N_GROUPS = 16


@pytest.fixture(scope="module")
def old_slots():
    return dict(layout_dp(synthetic_plan(N_GROUPS), N_TSPS).slots)


def test_ablation_layout_quality_insertions(benchmark, old_slots):
    """Across every insertion point, DP rewrites <= greedy rewrites."""

    def sweep():
        rows = []
        for insert_at in range(N_GROUPS + 1):
            plan = synthetic_plan(N_GROUPS, inserted_at=insert_at)
            dp = layout_dp(plan, N_TSPS, old_slots)
            greedy = layout_greedy(plan, N_TSPS, old_slots)
            rows.append((insert_at, len(dp.rewrites), len(greedy.rewrites)))
        return rows

    rows = benchmark(sweep)
    print()
    print(
        format_table(
            ["insert at", "DP rewrites", "greedy rewrites"],
            rows,
            title="Ablation: incremental layout quality (insertions)",
        )
    )
    assert all(dp <= greedy for _, dp, greedy in rows)
    assert all(dp >= 1 for _, dp, _ in rows)  # the new function itself


def test_ablation_layout_quality_scrambled(benchmark):
    """After chained updates the surviving groups' old positions can be
    non-monotone; greedy first-match then misses the optimal alignment
    (a longest-increasing-subsequence effect) while the DP finds it.
    """
    plan = MergePlan(
        ingress_groups=[["s0"], ["s1"], ["s2"]],
        egress_groups=[["eg"]],
    )
    # Old positions 3,1,2: matching s0 early (slot 3) forfeits the
    # better {s1@1, s2@2} alignment.
    old = {
        3: group_key(["s0"]),
        1: group_key(["s1"]),
        2: group_key(["s2"]),
        7: group_key(["eg"]),
    }

    def solve():
        return layout_dp(plan, 8, old), layout_greedy(plan, 8, old)

    dp, greedy = benchmark(solve)
    print(
        f"\nscrambled case: DP rewrites {len(dp.rewrites)}, "
        f"greedy rewrites {len(greedy.rewrites)}"
    )
    assert len(dp.rewrites) < len(greedy.rewrites)
    assert len(dp.rewrites) == 1


def test_ablation_layout_speed(benchmark, old_slots):
    """Greedy placement is faster than the DP (the other side of the
    trade-off)."""
    plan = synthetic_plan(N_GROUPS, inserted_at=7)

    def greedy_time():
        started = time.perf_counter()
        for _ in range(50):
            layout_greedy(plan, N_TSPS, old_slots)
        return time.perf_counter() - started

    def dp_time():
        started = time.perf_counter()
        for _ in range(50):
            layout_dp(plan, N_TSPS, old_slots)
        return time.perf_counter() - started

    greedy_s = greedy_time()
    dp_s = benchmark.pedantic(dp_time, rounds=3, iterations=1)
    print(f"\nplacement time x50: greedy {greedy_s * 1e3:.2f} ms, DP {dp_s * 1e3:.2f} ms")
    assert greedy_s < dp_s

"""Table 2: FPGA resource comparison of IPSA and PISA.

Paper (8-stage prototypes, % of an Alveo U280):

    PISA:  front parser 0.88/0.10, processors 5.32/0.47, total 6.20/0.57
    IPSA:  processors 5.83/0.85, crossbar 1.29/0.07,     total 7.12/0.92

Shape: IPSA pays ~15% more LUT and ~60% more FF for in-situ
programmability; PISA's extra component is the front parser, IPSA's
are the crossbar and the (FF-heavy) per-TSP template stores.
"""

from conftest import CASE_ARTIFACTS

from repro.bench.report import format_table
from repro.hw import ipsa_resources, pisa_resources
from repro.p4 import build_hlir, parse_p4
from repro.programs import base_p4_source


def test_table2(benchmark, base_design):
    hlir = build_hlir(parse_p4(base_p4_source()))

    def compute():
        return pisa_resources(hlir, n_stages=8), ipsa_resources(base_design)

    pisa, ipsa = benchmark(compute)

    print()
    rows = []
    for report in (pisa, ipsa):
        for component, lut, ff in report.rows():
            rows.append((report.architecture, component, f"{lut:.2f}%", f"{ff:.2f}%"))
    print(format_table(["arch", "component", "LUT", "FF"], rows, title="Table 2"))

    lut_overhead = ipsa.lut_total / pisa.lut_total - 1
    ff_overhead = ipsa.ff_total / pisa.ff_total - 1
    print(f"IPSA overhead: +{lut_overhead:.1%} LUT, +{ff_overhead:.1%} FF")

    # Shape: totals and per-component structure.
    assert ipsa.lut_total > pisa.lut_total
    assert ipsa.ff_total > pisa.ff_total
    assert 0.05 <= lut_overhead <= 0.30  # paper: 14.84%
    assert 0.30 <= ff_overhead <= 0.90  # paper: 61.40%
    assert "Front parser" in pisa.lut and "Front parser" not in ipsa.lut
    assert "Crossbar" in ipsa.lut and "Crossbar" not in pisa.lut

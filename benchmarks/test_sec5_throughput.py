"""Sec. 5 "Throughput": modeled Mpps for PISA vs IPSA per use case.

Paper (at 200 MHz): PISA 187.33 / 153.71 / 191.93 Mpps and IPSA
65.81 / 51.36 / 86.62 Mpps for C1 / C2 / C3.  Shape to reproduce:
PISA beats IPSA by roughly 2-3x everywhere, C2 (SRv6) is the slowest
case for both (deep header stack), and IPSA's losses come from memory
accesses + per-packet template loads.
"""

import pytest

from conftest import make_ipsa_for_case, make_pisa_for_case

from repro.bench.report import format_table
from repro.hw import ipsa_throughput, pisa_throughput
from repro.workloads import use_case_trace

N_PACKETS = 400


@pytest.mark.parametrize("case", ["C1", "C2", "C3"])
def test_throughput_case(case, benchmark):
    trace = use_case_trace(case, N_PACKETS)
    controller = make_ipsa_for_case(case)
    pisa = make_pisa_for_case(case)

    def run_ipsa():
        return ipsa_throughput(controller.switch, controller.design, trace)

    ipsa_report = benchmark(run_ipsa)
    pisa_report = pisa_throughput(pisa, trace)

    print()
    print(
        format_table(
            ["arch", "model Mpps", "cycles/pkt", "software pps", "fwd/total"],
            [
                (
                    r.architecture,
                    f"{r.model_mpps:.2f}",
                    f"{r.cycles_per_packet:.2f}",
                    f"{r.software_pps:,.0f}",
                    f"{r.forwarded}/{r.packets}",
                )
                for r in (pisa_report, ipsa_report)
            ],
            title=f"Sec. 5 throughput -- use case {case}",
        )
    )

    assert pisa_report.model_mpps > ipsa_report.model_mpps
    ratio = pisa_report.model_mpps / ipsa_report.model_mpps
    assert 1.5 <= ratio <= 5.0, f"ratio {ratio:.2f} out of the paper's ballpark"
    assert pisa_report.forwarded == pisa_report.packets
    assert ipsa_report.forwarded == ipsa_report.packets


def test_throughput_c2_is_slowest(benchmark):
    """The SRv6 case has the deepest header stack -> lowest Mpps."""

    def collect():
        results = {}
        for case in ("C1", "C2", "C3"):
            trace = use_case_trace(case, 150)
            pisa = make_pisa_for_case(case)
            controller = make_ipsa_for_case(case)
            results[case] = (
                pisa_throughput(pisa, trace).model_mpps,
                ipsa_throughput(controller.switch, controller.design, trace).model_mpps,
            )
        return results

    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    assert results["C2"][0] == min(r[0] for r in results.values())
    assert results["C2"][1] == min(r[1] for r in results.values())

"""Fig. 6: power consumption vs. number of effective physical stages.

Paper shape: PISA's power is flat (all physical stages are powered
whether the application uses them or not); IPSA's grows with the
number of active TSPs because bypassed TSPs idle in low power, so
IPSA wins below a crossover near full occupancy.
"""

from repro.bench.report import format_table
from repro.hw import power_vs_stages
from repro.hw.power import crossover_stage


def test_fig6(benchmark):
    rows = benchmark(power_vs_stages, 8)

    print()
    print(
        format_table(
            ["effective stages", "PISA (W)", "IPSA (W)"],
            [(k, f"{p:.2f}", f"{i:.2f}") for k, p, i in rows],
            title="Fig. 6 -- power vs effective stages",
        )
    )
    cross = crossover_stage(8)
    print(f"crossover at {cross} effective stages")

    pisa_series = [p for _, p, _ in rows]
    ipsa_series = [i for _, _, i in rows]
    assert len(set(pisa_series)) == 1, "PISA must be flat"
    assert ipsa_series == sorted(ipsa_series), "IPSA must be monotone"
    assert ipsa_series[0] < pisa_series[0], "IPSA wins at low occupancy"
    assert ipsa_series[-1] > pisa_series[-1], "IPSA pays at full occupancy"
    assert cross is not None and 4 <= cross <= 8

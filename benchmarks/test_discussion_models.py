"""Sec. 5 Discussion: the three structural offsets to IPSA's resource
penalty, quantified.

The paper argues qualitatively; these benches print the series and
assert the claimed shapes:

1. multi-pipeline chips: PISA's effective table capacity divides by
   the pipeline count (replication); IPSA's shared pool does not;
2. table expansion: PISA burns pipeline stages to host a big table;
   IPSA always hosts a logical stage in one TSP;
3. latency: IPSA's path only contains the *used* TSPs.
"""

from repro.bench.report import format_table
from repro.hw.discussion import (
    capacity_vs_pipelines,
    latency_vs_stages,
    stages_vs_table_size,
)


def test_discussion_multi_pipeline_capacity(benchmark):
    rows = benchmark(capacity_vs_pipelines, 112, 4)
    print()
    print(
        format_table(
            ["pipelines", "PISA effective blocks", "IPSA effective blocks"],
            rows,
            title="Discussion (1): effective table capacity",
        )
    )
    for n, pisa, ipsa in rows:
        assert ipsa >= pisa
    assert rows[-1][2] > 2 * rows[-1][1]  # the gap is large at 4 pipelines


def test_discussion_stage_expansion(benchmark):
    rows = benchmark(stages_vs_table_size)
    print()
    print(
        format_table(
            ["table blocks", "PISA effective stages", "IPSA effective stages"],
            rows,
            title="Discussion (2): stage cost of table expansion",
        )
    )
    assert rows[-1][1] < rows[0][1]  # PISA loses stages as tables grow
    assert all(ipsa == rows[0][2] for _, _, ipsa in rows)


def test_discussion_latency(benchmark):
    rows = benchmark(latency_vs_stages, 8)
    print()
    print(
        format_table(
            ["effective stages", "PISA cycles", "IPSA cycles"],
            rows,
            title="Discussion (3): pipeline latency",
        )
    )
    pisa_values = {p for _, p, _ in rows}
    assert len(pisa_values) == 1  # full physical pipeline, always
    assert rows[0][2] < rows[0][1]  # short designs: IPSA's path shorter
    assert rows[-1][2] > rows[-1][1]  # full occupancy: crossbar tax shows

"""Shared fixtures for the evaluation benchmarks."""

import pytest

from repro.compiler.rp4bc import compile_base, compile_update
from repro.ipsa.switch import IpsaSwitch
from repro.pisa.switch import PisaSwitch
from repro.programs import (
    base_p4_source,
    base_rp4_source,
    ecmp_load_script,
    ecmp_rp4_source,
    flowprobe_load_script,
    flowprobe_rp4_source,
    populate_base_tables,
    populate_ecmp_tables,
    populate_flowprobe_tables,
    populate_srv6_tables,
    srv6_load_script,
    srv6_rp4_source,
)
from repro.programs.p4_variants import (
    ecmp_p4_source,
    flowprobe_p4_source,
    srv6_p4_source,
)
from repro.runtime.controller import Controller

CASE_ARTIFACTS = {
    "C1": (
        ecmp_load_script,
        ecmp_rp4_source,
        "ecmp.rp4",
        populate_ecmp_tables,
        ecmp_p4_source,
    ),
    "C2": (
        srv6_load_script,
        srv6_rp4_source,
        "srv6.rp4",
        populate_srv6_tables,
        srv6_p4_source,
    ),
    "C3": (
        flowprobe_load_script,
        flowprobe_rp4_source,
        "flowprobe.rp4",
        populate_flowprobe_tables,
        flowprobe_p4_source,
    ),
}


@pytest.fixture(scope="session")
def base_design():
    return compile_base(base_rp4_source())


def make_ipsa_for_case(case):
    """An IPSA controller with the base design plus one use case live."""
    script, snippet, name, populate, _ = CASE_ARTIFACTS[case]
    controller = Controller()
    controller.load_base(base_rp4_source())
    populate_base_tables(controller.switch.tables)
    controller.run_script(script(), {name: snippet()})
    populate(controller.switch.tables)
    return controller


def make_pisa_for_case(case):
    """A PISA switch running the full updated P4 variant."""
    _, _, _, populate, p4_variant = CASE_ARTIFACTS[case]
    switch = PisaSwitch(n_stages=8)
    switch.load(p4_variant())
    populate_base_tables(switch.tables)
    populate(switch.tables)
    return switch

"""Shared fixtures for the evaluation benchmarks.

Scenario construction lives in :mod:`repro.bench.scenarios` (shared
with the continuous harness and ``ipbm-ctl profile``); this module
keeps the benchmark-suite-facing names and adds a graceful degrade:
when the pytest-benchmark plugin is missing (not installed, or
disabled with ``-p no:benchmark``), the suite skips instead of
erroring on the unknown ``benchmark`` fixture.
"""

import pytest

from repro.bench.scenarios import (
    CASE_ARTIFACTS,
    make_ipsa_controller,
    make_pisa,
)
from repro.compiler.rp4bc import compile_base
from repro.programs import base_rp4_source


class _BenchmarkFallback:
    """Stand-in registered only when pytest-benchmark is absent."""

    @pytest.fixture
    def benchmark(self):
        pytest.skip("pytest-benchmark is not available")


def pytest_configure(config):
    if not config.pluginmanager.hasplugin("benchmark"):
        config.pluginmanager.register(_BenchmarkFallback(), "benchmark-fallback")


@pytest.fixture(scope="session")
def base_design():
    return compile_base(base_rp4_source())


def make_ipsa_for_case(case):
    """An IPSA controller with the base design plus one use case live."""
    return make_ipsa_controller(case)


def make_pisa_for_case(case):
    """A PISA switch running the full updated P4 variant."""
    return make_pisa(case)

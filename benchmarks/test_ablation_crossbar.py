"""Ablation: full vs clustered crossbar (paper Sec. 2.4).

"Different crossbar types can be used as a tradeoff between
flexibility and resource consumption."  The clustered crossbar is
cheaper in crosspoints but constrains placement: moving a logical
stage across clusters forces its tables to migrate.
"""

from repro.bench.report import format_table
from repro.compiler.rp4bc import TargetSpec, compile_base
from repro.hw import ipsa_resources
from repro.memory.blocks import MemoryKind
from repro.memory.crossbar import ClusteredCrossbar, FullCrossbar
from repro.memory.pool import MemoryPool
from repro.programs import base_rp4_source


def test_ablation_crossbar_resources(benchmark):
    def compile_both():
        full = compile_base(base_rp4_source())
        clustered = compile_base(
            base_rp4_source(),
            TargetSpec(
                memory_clusters=4,
                crossbar=ClusteredCrossbar(
                    tsp_cluster_size=2,
                    memory_clusters=4,
                    # Each TSP cluster reaches its own + the next memory
                    # cluster, so the base design still places.
                    mapping={
                        0: {0, 1},
                        1: {1, 2},
                        2: {2, 3},
                        3: {3, 0},
                    },
                ),
            ),
        )
        return full, clustered

    full, clustered = benchmark(compile_both)

    full_res = ipsa_resources(full)
    clustered_res = ipsa_resources(clustered)
    full_ports = full.pool.crossbar.port_count(8, len(full.pool.blocks))
    clustered_ports = clustered.pool.crossbar.port_count(
        8, len(clustered.pool.blocks)
    )

    print()
    print(
        format_table(
            ["crossbar", "crosspoints", "crossbar LUT", "total LUT", "TSPs"],
            [
                ("full", full_ports, f"{full_res.lut['Crossbar']:.2f}%",
                 f"{full_res.lut_total:.2f}%", full.plan.tsp_count),
                ("clustered", clustered_ports,
                 f"{clustered_res.lut['Crossbar']:.2f}%",
                 f"{clustered_res.lut_total:.2f}%", clustered.plan.tsp_count),
            ],
            title="Ablation: crossbar flexibility vs cost",
        )
    )

    assert clustered_ports < full_ports
    assert clustered_res.lut["Crossbar"] < full_res.lut["Crossbar"]
    # Both still fit the design.
    assert clustered.plan.tsp_count == full.plan.tsp_count
    assert set(clustered.pool.mappings()) == set(full.pool.mappings())


def test_ablation_crossbar_migration_cost(benchmark):
    """Moving a table across clusters copies all its blocks."""

    def migrate():
        pool = MemoryPool(
            sram_blocks=16, tcam_blocks=0, clusters=4,
            crossbar=ClusteredCrossbar(tsp_cluster_size=2, memory_clusters=4),
        )
        pool.allocate_tables([("fib", MemoryKind.SRAM, 128, 3 * 1024, [0])])
        return pool.migrate_table("fib", [2])

    moved = benchmark(migrate)
    print(f"\nmigrated {moved} blocks cluster 0 -> 2")
    assert moved == 3

"""Fig. 4: the packet processing pipeline and its TSP mapping.

Regenerates the base design's A..J -> TSP mapping and the per-use-case
mappings after each in-situ update, and benchmarks the base compile.
"""

from repro.bench.mapping import fig4_mapping, format_mapping
from repro.compiler.rp4bc import compile_base
from repro.programs import BASE_STAGE_LETTERS, base_rp4_source


def test_fig4_base_compile(benchmark):
    design = benchmark(compile_base, base_rp4_source())

    mappings = fig4_mapping()
    print()
    for name, d in mappings.items():
        print(format_mapping(d, name))

    # Paper: "The base design ... requires seven TSPs to map all the
    # function stages".
    assert design.plan.tsp_count == 7
    letters = design.stage_letters(BASE_STAGE_LETTERS)
    assert len(set(letters.values())) == 7  # ten letters on seven TSPs
    assert letters["D"] == letters["E"]
    assert letters["F"] == letters["G"]
    assert letters["I"] == letters["J"]

    # "Since they are independent, only one stage is needed for the
    # [ECMP] function. The ECMP function also covers and therefore
    # replaces H."
    ecmp = mappings["C1-ecmp"]
    assert ecmp.plan.tsp_count == 7
    assert ecmp.plan.group_of("ecmp") == ["ecmp"]
    assert "nexthop" not in ecmp.program.all_stages()

    # The SRv6 and flow-probe functions also fit without extra TSPs.
    assert mappings["C2-srv6"].plan.tsp_count == 7
    assert mappings["C3-flowprobe"].plan.tsp_count == 7

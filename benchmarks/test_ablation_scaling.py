"""Ablation: compile time vs. base-design size.

The structural mechanism behind Table 1: the full flow recompiles the
*whole* program (cost grows with base size), the incremental flow
compiles only the snippet + commands (cost roughly flat).  The paper's
2-6% ratios are a consequence of this asymmetry at p4c scale.
"""

import time

from repro.bench.report import format_table
from repro.compiler.merge import MergeMode
from repro.compiler.rp4bc import TargetSpec, compile_base, compile_update
from repro.programs.synth import synthetic_base, synthetic_script, synthetic_snippet

SIZES = (8, 16, 32, 64)


def _target(n_stages):
    return TargetSpec(
        n_tsps=n_stages + 4,
        sram_blocks=4 * n_stages + 32,
        merge_mode=MergeMode.FULL,
    )


def test_ablation_compile_scaling(benchmark):
    def sweep():
        rows = []
        for n in SIZES:
            source = synthetic_base(n)
            target = _target(n)

            started = time.perf_counter()
            design = compile_base(source, target)
            full_ms = (time.perf_counter() - started) * 1e3

            started = time.perf_counter()
            compile_update(
                design,
                synthetic_script(n),
                {"probe.rp4": synthetic_snippet()},
            )
            inc_ms = (time.perf_counter() - started) * 1e3
            rows.append((n, full_ms, inc_ms, inc_ms / full_ms))
        return rows

    rows = benchmark.pedantic(sweep, rounds=3, iterations=1)
    print()
    print(
        format_table(
            ["base stages", "full compile (ms)", "incremental (ms)", "ratio"],
            [(n, f"{f:.1f}", f"{i:.2f}", f"{r:.1%}") for n, f, i, r in rows],
            title="Ablation: compile time vs base size",
        )
    )

    # Full compile must grow substantially with base size...
    assert rows[-1][1] > rows[0][1] * 3
    # ...while the snippet compile grows far slower, so the ratio drops.
    assert rows[-1][3] < rows[0][3]
    assert rows[-1][3] < 0.25, "incremental must be a small fraction at scale"
